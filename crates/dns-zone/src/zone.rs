//! The zone model.

use dns_wire::rdata::{Rdata, Soa};
use dns_wire::{Name, Record, RrType};
use std::collections::BTreeMap;

/// A DNS zone: an origin plus its records.
///
/// Records are kept in insertion order internally; canonical ordering is
/// computed on demand (and cached ordering is the job of the caller — the
/// digest and signer sort once per pass).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    origin: Name,
    records: Vec<Record>,
}

/// Errors manipulating zones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneError {
    /// The zone has no SOA record at its apex.
    MissingSoa,
    /// More than one SOA at the apex.
    DuplicateSoa,
    /// A record's owner is outside the zone.
    OutOfZone(String),
}

impl std::fmt::Display for ZoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoneError::MissingSoa => write!(f, "zone has no SOA record"),
            ZoneError::DuplicateSoa => write!(f, "zone has multiple SOA records"),
            ZoneError::OutOfZone(name) => write!(f, "record {name} is outside the zone"),
        }
    }
}

impl std::error::Error for ZoneError {}

impl Zone {
    /// Create an empty zone rooted at `origin`.
    pub fn new(origin: Name) -> Self {
        Zone {
            origin,
            records: Vec::new(),
        }
    }

    /// The zone origin (apex name).
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// All records, insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Mutable access for fault injection.
    pub fn records_mut(&mut self) -> &mut Vec<Record> {
        &mut self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Add a record. Rejects records whose owner is outside the zone.
    pub fn push(&mut self, rec: Record) -> Result<(), ZoneError> {
        if !rec.name.is_subdomain_of(&self.origin) {
            return Err(ZoneError::OutOfZone(rec.name.to_string()));
        }
        self.records.push(rec);
        Ok(())
    }

    /// The apex SOA, if present and unique.
    pub fn soa(&self) -> Result<&Soa, ZoneError> {
        let mut found = None;
        for rec in &self.records {
            if rec.rr_type == RrType::Soa && rec.name == self.origin {
                if found.is_some() {
                    return Err(ZoneError::DuplicateSoa);
                }
                if let Rdata::Soa(soa) = &rec.rdata {
                    found = Some(soa);
                }
            }
        }
        found.ok_or(ZoneError::MissingSoa)
    }

    /// The zone serial (from the SOA).
    pub fn serial(&self) -> Result<u32, ZoneError> {
        Ok(self.soa()?.serial)
    }

    /// Records at `name` of `rr_type`.
    pub fn rrset(&self, name: &Name, rr_type: RrType) -> Vec<&Record> {
        self.records
            .iter()
            .filter(|r| r.rr_type == rr_type && &r.name == name)
            .collect()
    }

    /// Remove all records at `name` of `rr_type`; returns how many were
    /// removed.
    pub fn remove_rrset(&mut self, name: &Name, rr_type: RrType) -> usize {
        let before = self.records.len();
        self.records
            .retain(|r| !(r.rr_type == rr_type && &r.name == name));
        before - self.records.len()
    }

    /// Group records into RRsets keyed by `(owner, type)` in canonical
    /// order. RRSIGs are grouped by the type they *cover* alongside their
    /// RRset? No — RRSIGs are their own RRsets here; signing code associates
    /// them by inspecting `type_covered`.
    pub fn rrsets(&self) -> BTreeMap<(Name, u16), Vec<&Record>> {
        let mut map: BTreeMap<(Name, u16), Vec<&Record>> = BTreeMap::new();
        for rec in &self.records {
            map.entry((rec.name.clone(), rec.rr_type.to_u16()))
                .or_default()
                .push(rec);
        }
        map
    }

    /// All distinct owner names, canonical order.
    pub fn owner_names(&self) -> Vec<Name> {
        let mut names: Vec<Name> = Vec::new();
        for rec in &self.records {
            if !names.contains(&rec.name) {
                names.push(rec.name.clone());
            }
        }
        names.sort_by(|a, b| a.canonical_cmp(b));
        names
    }

    /// Records sorted into RFC 4034 §6.3 canonical order, duplicates
    /// (identical owner/class/type/RDATA) removed — the exact form both
    /// signing and ZONEMD digesting require.
    pub fn canonical_records(&self) -> Vec<&Record> {
        let mut recs: Vec<&Record> = self.records.iter().collect();
        recs.sort_by(|a, b| a.canonical_cmp(b));
        recs.dedup_by(|a, b| a.canonical_cmp(b) == std::cmp::Ordering::Equal);
        recs
    }

    /// Structural sanity check: exactly one apex SOA, everything in-zone.
    pub fn check(&self) -> Result<(), ZoneError> {
        self.soa()?;
        for rec in &self.records {
            if !rec.name.is_subdomain_of(&self.origin) {
                return Err(ZoneError::OutOfZone(rec.name.to_string()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::rdata::Rdata;

    fn soa_record(serial: u32) -> Record {
        Record::new(
            Name::root(),
            86400,
            Rdata::Soa(Soa {
                mname: Name::parse("a.root-servers.net.").unwrap(),
                rname: Name::parse("nstld.verisign-grs.com.").unwrap(),
                serial,
                refresh: 1800,
                retry: 900,
                expire: 604800,
                minimum: 86400,
            }),
        )
    }

    fn root_zone_fixture() -> Zone {
        let mut z = Zone::new(Name::root());
        z.push(soa_record(2023120600)).unwrap();
        z.push(Record::new(
            Name::root(),
            518400,
            Rdata::Ns(Name::parse("a.root-servers.net.").unwrap()),
        ))
        .unwrap();
        z.push(Record::new(
            Name::parse("com.").unwrap(),
            172800,
            Rdata::Ns(Name::parse("a.gtld-servers.net.").unwrap()),
        ))
        .unwrap();
        z
    }

    #[test]
    fn soa_and_serial() {
        let z = root_zone_fixture();
        assert_eq!(z.serial().unwrap(), 2023120600);
    }

    #[test]
    fn missing_soa_detected() {
        let z = Zone::new(Name::root());
        assert_eq!(z.soa().err(), Some(ZoneError::MissingSoa));
    }

    #[test]
    fn duplicate_soa_detected() {
        let mut z = root_zone_fixture();
        z.push(soa_record(1)).unwrap();
        assert_eq!(z.soa().err(), Some(ZoneError::DuplicateSoa));
    }

    #[test]
    fn out_of_zone_rejected() {
        let mut z = Zone::new(Name::parse("com.").unwrap());
        let rec = Record::new(
            Name::parse("example.org.").unwrap(),
            60,
            Rdata::A("1.2.3.4".parse().unwrap()),
        );
        assert!(matches!(z.push(rec), Err(ZoneError::OutOfZone(_))));
    }

    #[test]
    fn rrset_lookup() {
        let z = root_zone_fixture();
        assert_eq!(z.rrset(&Name::root(), RrType::Ns).len(), 1);
        assert_eq!(z.rrset(&Name::root(), RrType::Soa).len(), 1);
        assert_eq!(z.rrset(&Name::parse("net.").unwrap(), RrType::Ns).len(), 0);
    }

    #[test]
    fn remove_rrset_removes() {
        let mut z = root_zone_fixture();
        assert_eq!(z.remove_rrset(&Name::root(), RrType::Ns), 1);
        assert_eq!(z.rrset(&Name::root(), RrType::Ns).len(), 0);
    }

    #[test]
    fn canonical_records_sorted_and_deduped() {
        let mut z = root_zone_fixture();
        // Insert a duplicate of the apex NS.
        z.push(Record::new(
            Name::root(),
            518400,
            Rdata::Ns(Name::parse("a.root-servers.net.").unwrap()),
        ))
        .unwrap();
        let recs = z.canonical_records();
        assert_eq!(recs.len(), 3); // SOA + NS + com NS (dup removed)
                                   // Root apex sorts before com.
        assert!(recs[0].name.is_root());
    }

    #[test]
    fn owner_names_canonical_order() {
        let z = root_zone_fixture();
        let names = z.owner_names();
        assert_eq!(names[0], Name::root());
        assert_eq!(names[1], Name::parse("com.").unwrap());
    }

    #[test]
    fn check_passes_on_fixture() {
        assert!(root_zone_fixture().check().is_ok());
    }
}
