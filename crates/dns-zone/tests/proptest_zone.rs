//! Property-based tests for zone digesting, signing and transfer.

use dns_crypto::DigestAlg;
use dns_wire::rdata::{Rdata, Soa};
use dns_wire::{Name, Record};
use dns_zone::axfr::transfer;
use dns_zone::corrupt::flip_rrsig_bit;
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use dns_zone::validate::validate_zone;
use dns_zone::zonemd::{compute_zonemd, make_zonemd_record, verify_zonemd};
use dns_zone::Zone;
use proptest::prelude::*;

/// Strategy: a random small zone with unique TLD delegations.
fn small_zone() -> impl Strategy<Value = Zone> {
    (
        any::<u32>(),
        proptest::collection::btree_set("[a-z]{2,8}", 1..12),
    )
        .prop_map(|(serial, tlds)| {
            let mut z = Zone::new(Name::root());
            z.push(Record::new(
                Name::root(),
                86400,
                Rdata::Soa(Soa {
                    mname: Name::parse("a.root-servers.net.").unwrap(),
                    rname: Name::parse("nstld.example.").unwrap(),
                    serial,
                    refresh: 1800,
                    retry: 900,
                    expire: 604800,
                    minimum: 86400,
                }),
            ))
            .unwrap();
            for tld in tlds {
                z.push(Record::new(
                    Name::parse(&format!("{tld}.")).unwrap(),
                    172800,
                    Rdata::Ns(Name::parse(&format!("ns.{tld}.")).unwrap()),
                ))
                .unwrap();
            }
            z
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zonemd_invariant_under_insertion_order(zone in small_zone(), seed in any::<u64>()) {
        // Shuffle the records; the digest must not change (canonical order).
        let digest = compute_zonemd(&zone, DigestAlg::Sha384).unwrap();
        let mut shuffled = Zone::new(zone.origin().clone());
        let mut records: Vec<Record> = zone.records().to_vec();
        let mut rng = netsim_free_shuffle(seed);
        for i in (1..records.len()).rev() {
            let j = (rng() as usize) % (i + 1);
            records.swap(i, j);
        }
        for r in records {
            shuffled.push(r).unwrap();
        }
        prop_assert_eq!(compute_zonemd(&shuffled, DigestAlg::Sha384).unwrap(), digest);
    }

    #[test]
    fn zonemd_changes_on_any_record_addition(zone in small_zone(), extra in "[a-z]{9,12}") {
        let before = compute_zonemd(&zone, DigestAlg::Sha384).unwrap();
        let mut bigger = zone.clone();
        bigger
            .push(Record::new(
                Name::parse(&format!("{extra}.")).unwrap(),
                60,
                Rdata::A("192.0.2.1".parse().unwrap()),
            ))
            .unwrap();
        prop_assert_ne!(compute_zonemd(&bigger, DigestAlg::Sha384).unwrap(), before);
    }

    #[test]
    fn published_zonemd_always_verifies(zone in small_zone()) {
        let mut z = zone;
        let rec = make_zonemd_record(&z, DigestAlg::Sha384, 86400).unwrap();
        z.push(rec).unwrap();
        prop_assert_eq!(verify_zonemd(&z), Ok(()));
    }

    #[test]
    fn transfer_preserves_digest(tlds in 1usize..20, seed in any::<u64>()) {
        let keys = ZoneKeys::from_seed(seed);
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: tlds,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &keys,
        );
        let received = transfer(&zone, 1).unwrap();
        prop_assert_eq!(
            compute_zonemd(&received, DigestAlg::Sha384).unwrap(),
            compute_zonemd(&zone, DigestAlg::Sha384).unwrap()
        );
    }

    #[test]
    fn any_rrsig_bitflip_caught(seed in any::<u64>(), flip_seed in any::<u64>()) {
        let keys = ZoneKeys::from_seed(seed);
        let cfg = RootZoneConfig {
            tld_count: 5,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        };
        let mut zone = build_root_zone(&cfg, &keys);
        flip_rrsig_bit(&mut zone, flip_seed).unwrap();
        // Either the RRSIG check or the ZONEMD check (or both) must fire.
        let report = validate_zone(&zone, cfg.inception + 60);
        prop_assert!(!report.is_valid());
    }

    #[test]
    fn validation_time_monotonicity(seed in any::<u64>(), offset in 0u32..(13 * 86400)) {
        // Inside the signature window the zone is always valid.
        let keys = ZoneKeys::from_seed(seed);
        let cfg = RootZoneConfig {
            tld_count: 4,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        };
        let zone = build_root_zone(&cfg, &keys);
        prop_assert!(validate_zone(&zone, cfg.inception + offset).is_valid());
    }
}

/// A tiny standalone xorshift so the shuffle doesn't depend on other crates.
fn netsim_free_shuffle(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}
