//! Determinism suite for the discrete-event scheduler: the same seed
//! must produce the identical event order across runs *and* across the
//! number of worker threads that produced the events, and equal
//! deadlines must break ties stably.

use proptest::prelude::*;
use simclock::Scheduler;
use std::sync::mpsc;
use std::thread;

/// The event set one "workload" generates: (time, key, label) triples
/// derived from the seed, the same regardless of who computes them.
fn workload(seed: u64, events: u64) -> Vec<(u64, u64, String)> {
    (0..events)
        .map(|i| {
            let mut rng = Scheduler::new(seed).rng(&[0xe7e7, i]);
            // Coarse times force plenty of equal-deadline collisions.
            let t = rng.next_range(16) as u64 * 100;
            (t, i, format!("ev{i}"))
        })
        .collect()
}

/// Register `events` from `workers` threads (arrival order is whatever
/// the OS scheduler makes of it), run, and return the trace.
fn run_with_workers(seed: u64, events: u64, workers: usize) -> Vec<(u64, String)> {
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                for (t, key, label) in workload(seed, events).into_iter().skip(w).step_by(workers) {
                    tx.send((t, key, label)).unwrap();
                }
            });
        }
        drop(tx);
        let mut s = Scheduler::new(seed);
        // Registration order is racy across workers; the explicit key
        // makes the firing order a pure function of the workload.
        for (t, key, label) in rx {
            s.schedule_keyed(t, key, &label, |_| {});
        }
        s.run_until_idle();
        s.trace().to_vec()
    })
}

#[test]
fn same_seed_same_event_order_across_runs() {
    let a = run_with_workers(42, 200, 1);
    let b = run_with_workers(42, 200, 1);
    assert_eq!(a, b);
    assert_ne!(a, run_with_workers(43, 200, 1), "seed must matter");
}

#[test]
fn event_order_is_independent_of_worker_count() {
    let one = run_with_workers(7, 300, 1);
    for workers in [2, 4, 8] {
        assert_eq!(
            one,
            run_with_workers(7, 300, workers),
            "trace diverged at {workers} workers"
        );
    }
}

#[test]
fn keyed_ties_fire_in_key_order_not_registration_order() {
    let mut s = Scheduler::new(1);
    for key in [3u64, 1, 2, 0] {
        s.schedule_keyed(500, key, &format!("k{key}"), |_| {});
    }
    s.run_until_idle();
    let labels: Vec<&str> = s.trace().iter().map(|(_, l)| l.as_str()).collect();
    assert_eq!(labels, ["k0", "k1", "k2", "k3"]);
}

proptest! {
    /// Concurrent timers with equal deadlines fire in stable registered
    /// order: however many timers collide on however few deadlines, the
    /// trace sorts by (time, registration index) — and replays
    /// identically.
    #[test]
    fn equal_deadlines_fire_in_registered_order(
        times in proptest::collection::vec(0u64..8, 1..64),
    ) {
        let run = || {
            let mut s = Scheduler::new(9);
            for (i, &t) in times.iter().enumerate() {
                s.schedule_at(t * 50, &format!("t{i}"), |_| {});
            }
            s.run_until_idle();
            s.trace().to_vec()
        };
        let trace = run();
        prop_assert_eq!(&trace, &run());
        // Within one deadline, registration indices appear in order.
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t * 50, i)).collect();
        expected.sort();
        let got: Vec<(u64, usize)> = trace
            .iter()
            .map(|(t, l)| (*t, l[1..].parse().unwrap()))
            .collect();
        prop_assert_eq!(got, expected);
    }
}
