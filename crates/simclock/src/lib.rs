//! A seeded discrete-event virtual clock for the whole workspace.
//!
//! Before this crate, four subsystems each kept a private notion of time:
//! `rootd::FaultyTransport` ticked its own `clock_ms` once per exchange,
//! `localroot` refresh backoff only *counted* milliseconds it never slept,
//! scenario epochs lived on wall-clock seconds, and the load generator
//! used host `Instant`s. None of them could see each other's time passing
//! — a refresh client could not wait out a blackhole window because its
//! waits advanced nothing the fault plan could read.
//!
//! This crate provides the one timeline they now share:
//!
//! * [`ClockHandle`] — a cheaply cloneable handle onto a single monotonic
//!   virtual-millisecond counter. Blocking-style clients (the refresh
//!   loop) advance it by [`sleep`](ClockHandle::sleep)ing through
//!   backoffs and timeouts; fault decisions read it to evaluate time
//!   windows.
//! * [`Scheduler`] — a seeded discrete-event queue over a `ClockHandle`:
//!   events fire in `(time, key, registration order)` order, so equal
//!   deadlines break ties stably, and the same seed replays the same
//!   event order bit for bit. [`run_until_idle`](Scheduler::run_until_idle)
//!   and [`run_until`](Scheduler::run_until) drive it.
//! * [`TimeAxis`] — the mapping between scenario wall-clock seconds and
//!   virtual milliseconds, so `ScenarioEngine` epochs, `fault_plan_at`
//!   windows and refresh timestamps all land on the same axis.
//! * [`Deadline`] — a timeout primitive against the shared clock.
//!
//! Ownership rule (DESIGN §12): exactly one component *advances* the
//! clock at a time — either a `Scheduler` run loop or one blocking client
//! executing inside it; everyone else holds a read-mostly handle.
//! Parallel workers never advance a shared clock — they stamp each unit
//! of work with a precomputed event time instead (see the load
//! generator's arrival schedule), which is what keeps replay bit-identical
//! across thread counts.

use netsim::rng::SimRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// A shared handle onto one monotonic virtual clock (milliseconds).
///
/// Clones observe the same timeline. All operations are monotone: the
/// clock never moves backwards.
#[derive(Debug, Clone, Default)]
pub struct ClockHandle {
    now_ms: Arc<AtomicU64>,
}

impl ClockHandle {
    /// A fresh clock at t = 0 ms.
    pub fn new() -> ClockHandle {
        ClockHandle::default()
    }

    /// A clock already advanced to `ms`.
    pub fn at(ms: u64) -> ClockHandle {
        let c = ClockHandle::new();
        c.advance_to(ms);
        c
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(AtomicOrdering::Acquire)
    }

    /// Advance the clock by `ms` and return the new time.
    pub fn advance(&self, ms: u64) -> u64 {
        self.now_ms.fetch_add(ms, AtomicOrdering::AcqRel) + ms
    }

    /// Advance the clock to at least `t` (no-op if already past) and
    /// return the resulting time.
    pub fn advance_to(&self, t: u64) -> u64 {
        self.now_ms.fetch_max(t, AtomicOrdering::AcqRel).max(t)
    }

    /// A blocking client's wait: virtual time passes, nothing sleeps.
    /// Returns the time after the wait.
    pub fn sleep(&self, ms: u64) -> u64 {
        self.advance(ms)
    }

    /// Whether two handles observe the same underlying clock.
    pub fn same_clock(&self, other: &ClockHandle) -> bool {
        Arc::ptr_eq(&self.now_ms, &other.now_ms)
    }
}

/// The mapping between wall-clock seconds (scenario events, refresh
/// timestamps, SOA ages) and virtual milliseconds (fault windows, delays,
/// backoffs): `wall = base_s + virtual_ms / 1000`.
///
/// Anchor it at a scenario's schedule start so event windows and clock
/// reads agree on what "now" means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeAxis {
    /// The wall-clock second that virtual t = 0 ms corresponds to.
    pub base_s: u32,
}

impl TimeAxis {
    /// An axis whose virtual origin is wall-clock second `base_s`.
    pub fn anchored_at(base_s: u32) -> TimeAxis {
        TimeAxis { base_s }
    }

    /// Project a wall-clock second onto the axis. Seconds before the
    /// anchor saturate to 0 (the axis does not extend into the past).
    pub fn wall_to_ms(&self, s: u32) -> u64 {
        u64::from(s.saturating_sub(self.base_s)) * 1_000
    }

    /// The wall-clock second a virtual time falls in.
    pub fn ms_to_wall(&self, ms: u64) -> u32 {
        self.base_s
            .saturating_add(u32::try_from(ms / 1_000).unwrap_or(u32::MAX))
    }

    /// The wall second the clock currently points at.
    pub fn now_wall(&self, clock: &ClockHandle) -> u32 {
        self.ms_to_wall(clock.now_ms())
    }
}

/// A timeout primitive against the shared clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// Absolute virtual time the deadline expires at.
    pub at_ms: u64,
}

impl Deadline {
    /// A deadline `ms` from the clock's current time.
    pub fn after(clock: &ClockHandle, ms: u64) -> Deadline {
        Deadline {
            at_ms: clock.now_ms().saturating_add(ms),
        }
    }

    /// Whether the clock has reached the deadline.
    pub fn expired(&self, clock: &ClockHandle) -> bool {
        clock.now_ms() >= self.at_ms
    }

    /// Milliseconds left before expiry (0 once expired).
    pub fn remaining_ms(&self, clock: &ClockHandle) -> u64 {
        self.at_ms.saturating_sub(clock.now_ms())
    }
}

/// An event closure; it may schedule further events.
pub type EventFn = Box<dyn FnOnce(&mut Scheduler)>;

struct Entry {
    time: u64,
    key: u64,
    seq: u64,
    label: String,
    f: EventFn,
}

impl Entry {
    fn order_key(&self) -> (u64, u64, u64) {
        (self.time, self.key, self.seq)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.order_key() == other.order_key()
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap pops the maximum; reverse so the earliest (time, key,
    // seq) triple pops first — the stable tie-break the determinism
    // suite pins.
    fn cmp(&self, other: &Self) -> Ordering {
        other.order_key().cmp(&self.order_key())
    }
}

/// A seeded discrete-event scheduler over one [`ClockHandle`].
///
/// Events fire in `(time, key, registration order)` order. Unkeyed
/// events use their registration sequence number as key, so equal
/// deadlines fire in the order they were registered; explicitly keyed
/// events ([`schedule_keyed`](Scheduler::schedule_keyed)) fire in key
/// order regardless of which thread produced or registered them — the
/// property that makes event order independent of worker count.
pub struct Scheduler {
    seed: u64,
    clock: ClockHandle,
    queue: BinaryHeap<Entry>,
    next_seq: u64,
    trace: Vec<(u64, String)>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("seed", &self.seed)
            .field("now_ms", &self.clock.now_ms())
            .field("pending", &self.queue.len())
            .field("fired", &self.trace.len())
            .finish()
    }
}

impl Scheduler {
    /// A fresh scheduler with its own clock at t = 0.
    pub fn new(seed: u64) -> Scheduler {
        Scheduler::on_clock(seed, ClockHandle::new())
    }

    /// A scheduler driving an existing clock (shared with transports,
    /// refresh clients, fault plans).
    pub fn on_clock(seed: u64, clock: ClockHandle) -> Scheduler {
        Scheduler {
            seed,
            clock,
            queue: BinaryHeap::new(),
            next_seq: 0,
            trace: Vec::new(),
        }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A handle onto the scheduler's clock.
    pub fn clock(&self) -> ClockHandle {
        self.clock.clone()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Number of events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// A deterministic RNG stream derived from the scheduler seed and
    /// `ids` (same discipline as every other seeded component).
    pub fn rng(&self, ids: &[u64]) -> SimRng {
        SimRng::new(self.seed).derive_ids(ids)
    }

    /// Schedule `f` at absolute virtual time `t` ms. Events sharing a
    /// deadline fire in registration order.
    pub fn schedule_at(&mut self, t: u64, label: &str, f: impl FnOnce(&mut Scheduler) + 'static) {
        let seq = self.next_seq;
        self.push(t, seq, label, Box::new(f));
    }

    /// Schedule `f` at `t` with an explicit tie-break `key`: same-time
    /// events fire in key order no matter the registration order. Use
    /// this when events are produced concurrently — the key (not thread
    /// scheduling) decides the firing order.
    pub fn schedule_keyed(
        &mut self,
        t: u64,
        key: u64,
        label: &str,
        f: impl FnOnce(&mut Scheduler) + 'static,
    ) {
        self.push(t, key, label, Box::new(f));
    }

    /// Schedule `f` `dt` ms from the clock's current time.
    pub fn schedule_in(&mut self, dt: u64, label: &str, f: impl FnOnce(&mut Scheduler) + 'static) {
        self.schedule_at(self.clock.now_ms().saturating_add(dt), label, f);
    }

    fn push(&mut self, time: u64, key: u64, label: &str, f: EventFn) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry {
            time,
            key,
            seq,
            label: label.to_string(),
            f,
        });
    }

    fn fire(&mut self, e: Entry) {
        // An event may fire "late": a blocking client inside an earlier
        // event can have slept the clock past this deadline. Time still
        // only moves forward.
        self.clock.advance_to(e.time);
        self.trace.push((self.clock.now_ms(), e.label));
        (e.f)(self);
    }

    /// Run until the queue is empty. Returns the number of events fired.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut fired = 0;
        while let Some(e) = self.queue.pop() {
            self.fire(e);
            fired += 1;
        }
        fired
    }

    /// Run every event due at or before `t`, then advance the clock to
    /// (at least) `t`. Returns the number of events fired.
    pub fn run_until(&mut self, t: u64) -> u64 {
        let mut fired = 0;
        while self.queue.peek().is_some_and(|e| e.time <= t) {
            let e = self.queue.pop().expect("peeked entry exists");
            self.fire(e);
            fired += 1;
        }
        self.clock.advance_to(t);
        fired
    }

    /// The fired-event log: `(fire time ms, label)` in execution order —
    /// what the determinism suite compares across runs and worker counts.
    pub fn trace(&self) -> &[(u64, String)] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_is_monotone_and_shared() {
        let a = ClockHandle::new();
        let b = a.clone();
        assert!(a.same_clock(&b));
        assert_eq!(a.advance(100), 100);
        assert_eq!(b.now_ms(), 100);
        assert_eq!(b.advance_to(50), 100, "advance_to never rewinds");
        assert_eq!(b.advance_to(250), 250);
        assert_eq!(a.now_ms(), 250);
        assert!(!a.same_clock(&ClockHandle::new()));
    }

    #[test]
    fn axis_round_trips_and_saturates() {
        let axis = TimeAxis::anchored_at(1_000);
        assert_eq!(axis.wall_to_ms(1_000), 0);
        assert_eq!(axis.wall_to_ms(1_007), 7_000);
        assert_eq!(axis.wall_to_ms(500), 0, "pre-anchor saturates");
        assert_eq!(axis.ms_to_wall(7_999), 1_007);
        let clock = ClockHandle::at(12_345);
        assert_eq!(axis.now_wall(&clock), 1_012);
    }

    #[test]
    fn deadline_expires_with_the_clock() {
        let clock = ClockHandle::new();
        let d = Deadline::after(&clock, 500);
        assert!(!d.expired(&clock));
        assert_eq!(d.remaining_ms(&clock), 500);
        clock.sleep(499);
        assert!(!d.expired(&clock));
        clock.sleep(1);
        assert!(d.expired(&clock));
        assert_eq!(d.remaining_ms(&clock), 0);
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut s = Scheduler::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, name) in [(300u64, "c"), (100, "a"), (200, "b")] {
            let log = Rc::clone(&log);
            s.schedule_at(t, name, move |s| log.borrow_mut().push((s.now_ms(), name)));
        }
        assert_eq!(s.run_until_idle(), 3);
        assert_eq!(*log.borrow(), vec![(100, "a"), (200, "b"), (300, "c")]);
        assert_eq!(s.now_ms(), 300);
    }

    #[test]
    fn events_can_reschedule_and_run_until_respects_the_bound() {
        let mut s = Scheduler::new(2);
        let count = Rc::new(RefCell::new(0u32));
        fn tick(s: &mut Scheduler, count: Rc<RefCell<u32>>) {
            *count.borrow_mut() += 1;
            let next = Rc::clone(&count);
            s.schedule_in(100, "tick", move |s| tick(s, next));
        }
        let c0 = Rc::clone(&count);
        s.schedule_at(0, "tick", move |s| tick(s, c0));
        // Events at 0, 100, ..., 500 fire; the one rescheduled for 600
        // stays queued.
        assert_eq!(s.run_until(500), 6);
        assert_eq!(*count.borrow(), 6);
        assert_eq!(s.now_ms(), 500);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn run_until_advances_clock_even_with_no_events() {
        let mut s = Scheduler::new(3);
        assert_eq!(s.run_until(1_234), 0);
        assert_eq!(s.now_ms(), 1_234);
    }

    #[test]
    fn a_blocking_client_inside_an_event_drags_time_forward() {
        // An event whose handler sleeps (a refresh cycle backing off)
        // moves the shared clock; a later event scheduled "earlier" than
        // the sleep's end still fires, at the dragged time.
        let mut s = Scheduler::new(4);
        let clock = s.clock();
        s.schedule_at(100, "sleeper", move |_| {
            clock.sleep(5_000);
        });
        s.schedule_at(200, "after", |_| {});
        s.run_until_idle();
        assert_eq!(
            s.trace(),
            &[(100, "sleeper".into()), (5_100, "after".into())]
        );
    }

    #[test]
    fn rng_streams_derive_from_the_seed() {
        let s = Scheduler::new(0xfeed);
        let a: Vec<u64> = (0..4).map(|i| s.rng(&[7, i]).next_u64()).collect();
        let b: Vec<u64> = (0..4)
            .map(|i| Scheduler::new(0xfeed).rng(&[7, i]).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], s.rng(&[8, 0]).next_u64());
    }
}
