//! Resource record types relevant to the root zone and this study.

/// An RR TYPE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrType {
    A,
    Ns,
    Cname,
    Soa,
    Mx,
    Txt,
    Aaaa,
    Opt,
    Ds,
    Rrsig,
    Nsec,
    Dnskey,
    Zonemd,
    Axfr,
    Any,
    /// Any other type, by number.
    Other(u16),
}

impl RrType {
    /// Wire value (IANA registry).
    pub fn to_u16(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Ds => 43,
            RrType::Rrsig => 46,
            RrType::Nsec => 47,
            RrType::Dnskey => 48,
            RrType::Zonemd => 63,
            RrType::Axfr => 252,
            RrType::Any => 255,
            RrType::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            43 => RrType::Ds,
            46 => RrType::Rrsig,
            47 => RrType::Nsec,
            48 => RrType::Dnskey,
            63 => RrType::Zonemd,
            252 => RrType::Axfr,
            255 => RrType::Any,
            other => RrType::Other(other),
        }
    }

    /// Presentation-format mnemonic.
    pub fn mnemonic(self) -> String {
        match self {
            RrType::A => "A".into(),
            RrType::Ns => "NS".into(),
            RrType::Cname => "CNAME".into(),
            RrType::Soa => "SOA".into(),
            RrType::Mx => "MX".into(),
            RrType::Txt => "TXT".into(),
            RrType::Aaaa => "AAAA".into(),
            RrType::Opt => "OPT".into(),
            RrType::Ds => "DS".into(),
            RrType::Rrsig => "RRSIG".into(),
            RrType::Nsec => "NSEC".into(),
            RrType::Dnskey => "DNSKEY".into(),
            RrType::Zonemd => "ZONEMD".into(),
            RrType::Axfr => "AXFR".into(),
            RrType::Any => "ANY".into(),
            RrType::Other(v) => format!("TYPE{v}"),
        }
    }

    /// Parse a presentation-format mnemonic (including `TYPEnnn`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "A" => Some(RrType::A),
            "NS" => Some(RrType::Ns),
            "CNAME" => Some(RrType::Cname),
            "SOA" => Some(RrType::Soa),
            "MX" => Some(RrType::Mx),
            "TXT" => Some(RrType::Txt),
            "AAAA" => Some(RrType::Aaaa),
            "OPT" => Some(RrType::Opt),
            "DS" => Some(RrType::Ds),
            "RRSIG" => Some(RrType::Rrsig),
            "NSEC" => Some(RrType::Nsec),
            "DNSKEY" => Some(RrType::Dnskey),
            "ZONEMD" => Some(RrType::Zonemd),
            "AXFR" => Some(RrType::Axfr),
            "ANY" => Some(RrType::Any),
            other => other
                .strip_prefix("TYPE")
                .and_then(|n| n.parse().ok())
                .map(RrType::from_u16),
        }
    }

    /// Whether RDATA of this type embeds domain names that must be
    /// lowercased for RFC 4034 §6.2 canonical form.
    pub fn rdata_has_canonical_names(self) -> bool {
        matches!(
            self,
            RrType::Ns | RrType::Cname | RrType::Soa | RrType::Mx | RrType::Rrsig | RrType::Nsec
        )
    }
}

impl std::fmt::Display for RrType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [RrType; 15] = [
        RrType::A,
        RrType::Ns,
        RrType::Cname,
        RrType::Soa,
        RrType::Mx,
        RrType::Txt,
        RrType::Aaaa,
        RrType::Opt,
        RrType::Ds,
        RrType::Rrsig,
        RrType::Nsec,
        RrType::Dnskey,
        RrType::Zonemd,
        RrType::Axfr,
        RrType::Any,
    ];

    #[test]
    fn wire_round_trip() {
        for t in ALL {
            assert_eq!(RrType::from_u16(t.to_u16()), t);
        }
        assert_eq!(RrType::from_u16(999), RrType::Other(999));
    }

    #[test]
    fn mnemonic_round_trip() {
        for t in ALL {
            assert_eq!(RrType::parse(&t.mnemonic()), Some(t));
        }
        assert_eq!(RrType::parse("TYPE999"), Some(RrType::Other(999)));
        assert_eq!(RrType::parse("zonemd"), Some(RrType::Zonemd));
        assert_eq!(RrType::parse("FOO"), None);
    }

    #[test]
    fn zonemd_is_type_63() {
        // RFC 8976 assignment.
        assert_eq!(RrType::Zonemd.to_u16(), 63);
    }
}
