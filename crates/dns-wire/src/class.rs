//! DNS classes. `IN` carries all normal traffic; `CH` (CHAOS) carries the
//! server-identity queries (`hostname.bind`, `id.server`, `version.bind`,
//! `version.server`) the measurement script issues every round.

/// A DNS class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    /// Internet.
    In,
    /// CHAOS — used for server identity queries.
    Ch,
    /// Hesiod (never used here, kept for completeness).
    Hs,
    /// QCLASS `*`.
    Any,
    /// Anything else.
    Other(u16),
}

impl Class {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            Class::In => 1,
            Class::Ch => 3,
            Class::Hs => 4,
            Class::Any => 255,
            Class::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => Class::In,
            3 => Class::Ch,
            4 => Class::Hs,
            255 => Class::Any,
            other => Class::Other(other),
        }
    }

    /// Presentation-format mnemonic.
    pub fn mnemonic(self) -> String {
        match self {
            Class::In => "IN".into(),
            Class::Ch => "CH".into(),
            Class::Hs => "HS".into(),
            Class::Any => "ANY".into(),
            Class::Other(v) => format!("CLASS{v}"),
        }
    }

    /// Parse a presentation-format mnemonic.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "IN" => Some(Class::In),
            "CH" => Some(Class::Ch),
            "HS" => Some(Class::Hs),
            "ANY" => Some(Class::Any),
            other => other
                .strip_prefix("CLASS")
                .and_then(|n| n.parse().ok())
                .map(Class::Other),
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for v in [1u16, 3, 4, 255, 42] {
            assert_eq!(Class::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn mnemonic_round_trip() {
        for c in [
            Class::In,
            Class::Ch,
            Class::Hs,
            Class::Any,
            Class::Other(17),
        ] {
            assert_eq!(Class::parse(&c.mnemonic()), Some(c));
        }
        assert_eq!(Class::parse("in"), Some(Class::In));
        assert_eq!(Class::parse("bogus"), None);
    }
}
