//! EDNS(0) — the OPT pseudo-record (RFC 6891) and the NSID option
//! (RFC 5001).
//!
//! The measurement script identifies instances via CHAOS-class queries;
//! NSID is the third identity mechanism root operators expose (an EDNS
//! option echoed in responses). Modelling it keeps the server surface
//! faithful and gives the coverage analysis a second identifier source.

use crate::rdata::Rdata;
use crate::record::Record;
use crate::rrtype::RrType;
use crate::{Class, Message, Name};

/// EDNS option codes (IANA registry subset).
pub const OPTION_NSID: u16 = 3;

/// A parsed OPT pseudo-record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edns {
    /// Requestor's/responder's UDP payload size.
    pub udp_payload_size: u16,
    /// Extended RCODE high bits (zero in this study).
    pub extended_rcode: u8,
    /// EDNS version (0).
    pub version: u8,
    /// DO bit: DNSSEC OK.
    pub dnssec_ok: bool,
    /// Raw options as (code, value) pairs.
    pub options: Vec<(u16, Vec<u8>)>,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: 4096,
            extended_rcode: 0,
            version: 0,
            dnssec_ok: false,
            options: Vec::new(),
        }
    }
}

impl Edns {
    /// A DNSSEC-requesting OPT (`dig +dnssec` behaviour).
    pub fn dnssec() -> Self {
        Edns {
            dnssec_ok: true,
            ..Default::default()
        }
    }

    /// Request NSID (empty option in the query, RFC 5001 §2.1).
    pub fn with_nsid_request(mut self) -> Self {
        self.options.push((OPTION_NSID, Vec::new()));
        self
    }

    /// Attach an NSID payload (the server side).
    pub fn with_nsid(mut self, nsid: &[u8]) -> Self {
        self.options.retain(|(code, _)| *code != OPTION_NSID);
        self.options.push((OPTION_NSID, nsid.to_vec()));
        self
    }

    /// The NSID option value, if present and non-empty.
    pub fn nsid(&self) -> Option<&[u8]> {
        self.options
            .iter()
            .find(|(code, v)| *code == OPTION_NSID && !v.is_empty())
            .map(|(_, v)| v.as_slice())
    }

    /// Whether NSID was requested (option present, empty value).
    pub fn nsid_requested(&self) -> bool {
        self.options
            .iter()
            .any(|(code, v)| *code == OPTION_NSID && v.is_empty())
    }

    /// Encode as the OPT record that goes in the additional section.
    ///
    /// OPT abuses the RR fields: CLASS carries the UDP size, TTL packs
    /// extended-rcode/version/flags.
    pub fn to_record(&self) -> Record {
        let mut rdata = Vec::new();
        for (code, value) in &self.options {
            rdata.extend_from_slice(&code.to_be_bytes());
            rdata.extend_from_slice(&(value.len() as u16).to_be_bytes());
            rdata.extend_from_slice(value);
        }
        let ttl = ((self.extended_rcode as u32) << 24)
            | ((self.version as u32) << 16)
            | if self.dnssec_ok { 0x8000 } else { 0 };
        Record {
            name: Name::root(),
            class: Class::Other(self.udp_payload_size),
            ttl,
            rr_type: RrType::Opt,
            rdata: Rdata::Opt(rdata),
        }
    }

    /// Parse from an OPT record.
    pub fn from_record(rec: &Record) -> Option<Edns> {
        if rec.rr_type != RrType::Opt {
            return None;
        }
        let raw = match &rec.rdata {
            Rdata::Opt(raw) => raw,
            _ => return None,
        };
        let mut options = Vec::new();
        let mut rest = raw.as_slice();
        while !rest.is_empty() {
            if rest.len() < 4 {
                return None;
            }
            let code = u16::from_be_bytes([rest[0], rest[1]]);
            let len = u16::from_be_bytes([rest[2], rest[3]]) as usize;
            if rest.len() < 4 + len {
                return None;
            }
            options.push((code, rest[4..4 + len].to_vec()));
            rest = &rest[4 + len..];
        }
        Some(Edns {
            udp_payload_size: rec.class.to_u16(),
            extended_rcode: (rec.ttl >> 24) as u8,
            version: (rec.ttl >> 16) as u8,
            dnssec_ok: rec.ttl & 0x8000 != 0,
            options,
        })
    }
}

/// Find and parse the OPT record of a message.
pub fn edns_of(msg: &Message) -> Option<Edns> {
    msg.additionals
        .iter()
        .find(|r| r.rr_type == RrType::Opt)
        .and_then(Edns::from_record)
}

/// Attach (or replace) the OPT record of a message.
pub fn set_edns(msg: &mut Message, edns: &Edns) {
    msg.additionals.retain(|r| r.rr_type != RrType::Opt);
    msg.additionals.push(edns.to_record());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Question, RrType};

    #[test]
    fn round_trip_through_record() {
        let edns = Edns::dnssec().with_nsid(b"fra1.k.root");
        let rec = edns.to_record();
        let back = Edns::from_record(&rec).unwrap();
        assert_eq!(back, edns);
        assert!(back.dnssec_ok);
        assert_eq!(back.nsid(), Some(b"fra1.k.root".as_slice()));
    }

    #[test]
    fn round_trip_through_wire_message() {
        let mut msg = Message::query(7, Question::new(Name::root(), RrType::Soa));
        set_edns(&mut msg, &Edns::dnssec().with_nsid_request());
        let decoded = Message::from_wire(&msg.to_wire()).unwrap();
        let edns = edns_of(&decoded).unwrap();
        assert!(edns.nsid_requested());
        assert_eq!(edns.nsid(), None);
        assert_eq!(edns.udp_payload_size, 4096);
    }

    #[test]
    fn nsid_request_vs_response_semantics() {
        let req = Edns::default().with_nsid_request();
        assert!(req.nsid_requested());
        assert!(req.nsid().is_none());
        let resp = Edns::default().with_nsid(b"site01");
        assert!(!resp.nsid_requested());
        assert_eq!(resp.nsid(), Some(b"site01".as_slice()));
    }

    #[test]
    fn with_nsid_replaces_request() {
        let e = Edns::default().with_nsid_request().with_nsid(b"x");
        let count = e.options.iter().filter(|(c, _)| *c == OPTION_NSID).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn set_edns_replaces_existing() {
        let mut msg = Message::query(7, Question::new(Name::root(), RrType::Soa));
        set_edns(&mut msg, &Edns::default());
        set_edns(&mut msg, &Edns::dnssec());
        assert_eq!(msg.additionals.len(), 1);
        assert!(edns_of(&msg).unwrap().dnssec_ok);
    }

    #[test]
    fn malformed_options_rejected() {
        let rec = Record {
            name: Name::root(),
            class: Class::Other(512),
            ttl: 0,
            rr_type: RrType::Opt,
            rdata: Rdata::Opt(vec![0, 3, 0, 10, 1]), // promises 10, has 1
        };
        assert_eq!(Edns::from_record(&rec), None);
    }

    #[test]
    fn non_opt_record_is_none() {
        let rec = Record::new(Name::root(), 0, Rdata::A("1.2.3.4".parse().unwrap()));
        assert_eq!(Edns::from_record(&rec), None);
    }
}
