//! Low-level wire reader/writer.
//!
//! The writer maintains a name-compression table (suffix → offset) so
//! messages use RFC 1035 §4.1.4 compression pointers; the reader follows
//! pointers with loop and bounds protection.

use std::collections::HashMap;

/// Maximum offset addressable by a 14-bit compression pointer.
const MAX_POINTER_TARGET: usize = 0x3fff;

/// Hard cap on compression-pointer jumps followed while decoding one name.
///
/// A 255-byte name has at most 127 labels, so any legitimate chain — even
/// one pointer per label — stays far below this. The monotonic-target rule
/// in [`WireReader::read_name_labels`] already makes loops structurally
/// impossible; the cap is defence in depth against degenerate (but acyclic)
/// chains in hostile messages.
pub const MAX_POINTER_JUMPS: u32 = 64;

/// Errors while decoding wire data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Read past the end of the buffer.
    Truncated,
    /// A compression pointer points at or past its own position.
    ForwardPointer,
    /// A pointer chain loops: a jump landed at or after an earlier jump
    /// target, or more than [`MAX_POINTER_JUMPS`] jumps were followed.
    PointerLoop,
    /// A label length byte uses the reserved 0b10/0b01 prefixes.
    BadLabelType,
    /// Decoded name exceeds 255 bytes.
    NameTooLong,
    /// RDATA length did not match its contents.
    BadRdataLength,
    /// A count field promised more entries than the message holds.
    BadCount,
    /// Malformed record content (type-specific).
    BadRdata,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::ForwardPointer => write!(f, "compression pointer points forward"),
            WireError::PointerLoop => write!(f, "compression pointer chain loops"),
            WireError::BadLabelType => write!(f, "reserved label type"),
            WireError::NameTooLong => write!(f, "decoded name too long"),
            WireError::BadRdataLength => write!(f, "rdata length mismatch"),
            WireError::BadCount => write!(f, "section count exceeds message"),
            WireError::BadRdata => write!(f, "malformed rdata"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked reader over a message buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wrap `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the buffer is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one byte.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn read_u16(&mut self) -> Result<u16, WireError> {
        let hi = self.read_u8()? as u16;
        let lo = self.read_u8()? as u16;
        Ok((hi << 8) | lo)
    }

    /// Read a big-endian u32.
    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        let hi = self.read_u16()? as u32;
        let lo = self.read_u16()? as u32;
        Ok((hi << 16) | lo)
    }

    /// Read `len` raw bytes.
    pub fn read_bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < len {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Read a possibly-compressed name as raw labels.
    ///
    /// Pointer chasing is bounded two ways. Every jump must land strictly
    /// before its own position ([`WireError::ForwardPointer`] otherwise)
    /// *and* strictly before every earlier jump target, so targets decrease
    /// monotonically and loops are structurally impossible
    /// ([`WireError::PointerLoop`]). Compliant encoders always point at the
    /// first occurrence of a suffix, which was written before the name now
    /// referencing it, so real messages satisfy the monotonic rule; only
    /// crafted chains trip it. A hard cap of [`MAX_POINTER_JUMPS`] jumps
    /// backstops degenerate acyclic chains.
    pub fn read_name_labels(&mut self) -> Result<Vec<Vec<u8>>, WireError> {
        let mut labels = Vec::new();
        let mut wire_len = 1usize; // trailing root byte
        let mut pos = self.pos;
        let mut followed: u32 = 0;
        let mut lowest_target: Option<usize> = None;
        let mut end_after_first_pointer: Option<usize> = None;
        loop {
            let len = *self.buf.get(pos).ok_or(WireError::Truncated)? as usize;
            match len & 0xc0 {
                0x00 => {
                    pos += 1;
                    if len == 0 {
                        break;
                    }
                    if pos + len > self.buf.len() {
                        return Err(WireError::Truncated);
                    }
                    wire_len += len + 1;
                    if wire_len > super::name::MAX_NAME_LEN {
                        return Err(WireError::NameTooLong);
                    }
                    labels.push(self.buf[pos..pos + len].to_vec());
                    pos += len;
                }
                0xc0 => {
                    let lo = *self.buf.get(pos + 1).ok_or(WireError::Truncated)? as usize;
                    let target = ((len & 0x3f) << 8) | lo;
                    if end_after_first_pointer.is_none() {
                        end_after_first_pointer = Some(pos + 2);
                    }
                    if target >= pos {
                        return Err(WireError::ForwardPointer);
                    }
                    if lowest_target.is_some_and(|lowest| target >= lowest) {
                        return Err(WireError::PointerLoop);
                    }
                    lowest_target = Some(target);
                    followed += 1;
                    if followed > MAX_POINTER_JUMPS {
                        return Err(WireError::PointerLoop);
                    }
                    pos = target;
                }
                _ => return Err(WireError::BadLabelType),
            }
        }
        self.pos = end_after_first_pointer.unwrap_or(pos);
        Ok(labels)
    }
}

/// Growable writer with a name-compression table.
pub struct WireWriter {
    buf: Vec<u8>,
    /// Map from a name suffix (canonical lowercase wire bytes) to the offset
    /// where that suffix was first written.
    compress: HashMap<Vec<u8>, usize>,
    /// Whether `put_name_compressed` emits pointers (ablation toggle).
    compression_enabled: bool,
    /// Every compression pointer emitted, as `(position, target)` — the
    /// offset of the 2-byte pointer itself and the offset it refers to.
    /// Response-template builders use this to relocate pointers when the
    /// question region they were encoded against changes length.
    pointers: Vec<(usize, usize)>,
}

impl Default for WireWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl WireWriter {
    /// New empty writer with compression enabled.
    pub fn new() -> Self {
        Self::with_buffer(Vec::with_capacity(512))
    }

    /// New writer with compression disabled (for the codec ablation bench).
    pub fn without_compression() -> Self {
        WireWriter {
            compression_enabled: false,
            ..Self::new()
        }
    }

    /// A writer that reuses `buf`'s allocation (cleared first). Pair with
    /// [`Self::into_bytes`] to encode repeatedly without reallocating.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        WireWriter {
            buf,
            compress: HashMap::new(),
            compression_enabled: true,
            pointers: Vec::new(),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrite a previously written big-endian u16 (for patching RDLENGTH
    /// and section counts).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        self.buf[offset] = (v >> 8) as u8;
        self.buf[offset + 1] = v as u8;
    }

    /// Write a name using compression pointers where a suffix was already
    /// emitted. `labels` are raw label bytes, leftmost first.
    pub fn put_name_compressed(&mut self, labels: &[Vec<u8>]) {
        for i in 0..labels.len() {
            let suffix_key = suffix_key(&labels[i..]);
            if self.compression_enabled {
                if let Some(&off) = self.compress.get(&suffix_key) {
                    debug_assert!(off <= MAX_POINTER_TARGET);
                    self.pointers.push((self.buf.len(), off));
                    self.put_u16(0xc000 | off as u16);
                    return;
                }
            }
            let here = self.buf.len();
            if self.compression_enabled && here <= MAX_POINTER_TARGET {
                self.compress.insert(suffix_key, here);
            }
            self.put_u8(labels[i].len() as u8);
            self.put_bytes(&labels[i]);
        }
        self.put_u8(0);
    }

    /// Finish, returning the buffer (no copy: the writer's own allocation).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// The compression pointers emitted so far, as `(position, target)`
    /// pairs in write order.
    pub fn pointers(&self) -> &[(usize, usize)] {
        &self.pointers
    }

    /// The name suffixes registered for compression so far, as canonical
    /// lowercase wire bytes (label length + lowercased label, repeated; no
    /// trailing root byte). Response-template builders use this to detect
    /// question names whose labels would compress against record names —
    /// those encodings depend on the question and cannot be templated.
    pub fn compressed_suffixes(&self) -> impl Iterator<Item = &[u8]> {
        self.compress.keys().map(Vec::as_slice)
    }
}

/// Case-insensitive key for a label suffix.
fn suffix_key(labels: &[Vec<u8>]) -> Vec<u8> {
    let mut key = Vec::new();
    for l in labels {
        key.push(l.len() as u8);
        key.extend(l.iter().map(|b| b.to_ascii_lowercase()));
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdeadbeef);
        w.put_bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xab);
        assert_eq!(r.read_u16().unwrap(), 0x1234);
        assert_eq!(r.read_u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.read_bytes(3).unwrap(), b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_fail() {
        let mut r = WireReader::new(&[0x01]);
        assert_eq!(r.read_u16(), Err(WireError::Truncated));
        let mut r = WireReader::new(&[]);
        assert_eq!(r.read_u8(), Err(WireError::Truncated));
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(r.read_bytes(3), Err(WireError::Truncated));
    }

    #[test]
    fn compression_reuses_suffix() {
        let labels_b = vec![b"b".to_vec(), b"root-servers".to_vec(), b"net".to_vec()];
        let labels_c = vec![b"c".to_vec(), b"root-servers".to_vec(), b"net".to_vec()];
        let mut w = WireWriter::new();
        w.put_name_compressed(&labels_b);
        let first_len = w.len();
        w.put_name_compressed(&labels_c);
        let bytes = w.into_bytes();
        // Second name: 1+1 ("c") + 2 (pointer) = 4 bytes.
        assert_eq!(bytes.len(), first_len + 4);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name_labels().unwrap(), labels_b);
        assert_eq!(r.read_name_labels().unwrap(), labels_c);
        assert!(r.is_empty());
    }

    #[test]
    fn compression_case_insensitive() {
        let upper = vec![b"NET".to_vec()];
        let lower = vec![b"net".to_vec()];
        let mut w = WireWriter::new();
        w.put_name_compressed(&upper);
        w.put_name_compressed(&lower);
        let bytes = w.into_bytes();
        // Second occurrence must be a 2-byte pointer.
        assert_eq!(bytes.len(), 5 + 2);
    }

    #[test]
    fn without_compression_writes_full_names() {
        let labels = vec![b"a".to_vec(), b"net".to_vec()];
        let mut w = WireWriter::without_compression();
        w.put_name_compressed(&labels);
        w.put_name_compressed(&labels);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2 * (2 + 4 + 1));
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer at offset 0 pointing to itself.
        let bytes = [0xc0, 0x00];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name_labels(), Err(WireError::ForwardPointer));
        // Pointer at offset 0 pointing past itself.
        let bytes = [0xc0, 0x05, 1, b'a', 0];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name_labels(), Err(WireError::ForwardPointer));
    }

    #[test]
    fn pointer_loop_rejected() {
        // Two pointers pointing at each other: after jumping to offset 0,
        // that pointer targets offset 2 — at/past its own position.
        let bytes = [0xc0, 0x02, 0xc0, 0x00];
        let mut r = WireReader::new(&bytes);
        r.pos = 2;
        assert_eq!(r.read_name_labels(), Err(WireError::ForwardPointer));
    }

    #[test]
    fn label_pointer_cycle_rejected() {
        // A cycle through a label: pointer at 3 → 0, labels at 0..3, then
        // the pointer at 3 again. The second visit jumps to 0 which is not
        // strictly below the previous target 0.
        let bytes = [1, b'a', 0xc0, 0x00];
        let mut r = WireReader::new(&bytes);
        r.pos = 2;
        assert_eq!(r.read_name_labels(), Err(WireError::PointerLoop));
    }

    #[test]
    fn monotonic_chain_within_jump_budget_accepted() {
        // A strictly-backwards chain of pointers ending in a real label:
        // "x." at 0, then MAX_POINTER_JUMPS pointers each targeting the
        // previous one. Reading from the last pointer follows every jump.
        let mut bytes = vec![1, b'x', 0];
        for _ in 0..MAX_POINTER_JUMPS {
            let target = if bytes.len() == 3 { 0 } else { bytes.len() - 2 };
            bytes.extend_from_slice(&[0xc0 | (target >> 8) as u8, target as u8]);
        }
        let start = bytes.len() - 2;
        let mut r = WireReader::new(&bytes);
        r.pos = start;
        assert_eq!(r.read_name_labels().unwrap(), vec![b"x".to_vec()]);
        // One more pointer exceeds the jump budget.
        let target = bytes.len() - 2;
        bytes.extend_from_slice(&[0xc0 | (target >> 8) as u8, target as u8]);
        let mut r = WireReader::new(&bytes);
        r.pos = bytes.len() - 2;
        assert_eq!(r.read_name_labels(), Err(WireError::PointerLoop));
    }

    #[test]
    fn reserved_label_type_rejected() {
        let bytes = [0x80, 0x00];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name_labels(), Err(WireError::BadLabelType));
    }

    #[test]
    fn truncated_name_rejected() {
        let bytes = [0x03, b'a', b'b']; // promises 3 bytes, has 2
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name_labels(), Err(WireError::Truncated));
        let bytes = [0x01, b'a']; // missing terminator
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name_labels(), Err(WireError::Truncated));
    }

    #[test]
    fn reader_position_after_pointer() {
        // name "x." at 0, then at 3: "y" + pointer to 0.
        let bytes = [1, b'x', 0, 1, b'y', 0xc0, 0x00, 0xff];
        let mut r = WireReader::new(&bytes);
        r.pos = 3;
        let labels = r.read_name_labels().unwrap();
        assert_eq!(labels, vec![b"y".to_vec(), b"x".to_vec()]);
        // Reader continues right after the pointer.
        assert_eq!(r.position(), 7);
        assert_eq!(r.read_u8().unwrap(), 0xff);
    }

    #[test]
    fn patch_u16_overwrites() {
        let mut w = WireWriter::new();
        w.put_u16(0);
        w.put_u8(9);
        w.patch_u16(0, 0xbeef);
        assert_eq!(w.into_bytes(), vec![0xbe, 0xef, 9]);
    }

    #[test]
    fn overlong_decoded_name_rejected() {
        // Build 5 labels of 63 bytes: 5*64+1 = 321 > 255.
        let mut bytes = Vec::new();
        for _ in 0..5 {
            bytes.push(63);
            bytes.extend(std::iter::repeat_n(b'a', 63));
        }
        bytes.push(0);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.read_name_labels(), Err(WireError::NameTooLong));
    }
}
