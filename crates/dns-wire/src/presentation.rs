//! Presentation (zone-file) formatting and parsing for records.
//!
//! Renders records the way `dig` and the IANA root zone file do, e.g.:
//!
//! ```text
//! .  86400  IN  SOA  a.root-servers.net. nstld.verisign-grs.com. 2023122400 1800 900 604800 86400
//! .  86400  IN  ZONEMD  2023122400 1 1 5AB1...
//! ```
//!
//! Full master-file parsing (with `$ORIGIN`, parentheses continuation, etc.)
//! lives in `dns-zone`; this module handles single-line records, which is
//! what the AXFR dumps and validation pipeline traffic in.

use crate::class::Class;
use crate::name::Name;
use crate::rdata::{Dnskey, Ds, Nsec, Rdata, Rrsig, Soa, Zonemd};
use crate::record::Record;
use crate::rrtype::RrType;
use dns_crypto::{base64, hex, validity};

/// Render a record as a single presentation line.
pub fn record_to_line(rec: &Record) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}",
        rec.name,
        rec.ttl,
        rec.class.mnemonic(),
        rec.rr_type.mnemonic(),
        rdata_to_text(&rec.rdata, rec.rr_type)
    )
}

/// Render RDATA in presentation form.
pub fn rdata_to_text(rdata: &Rdata, rr_type: RrType) -> String {
    match rdata {
        Rdata::A(a) => a.to_string(),
        Rdata::Aaaa(a) => a.to_string(),
        Rdata::Ns(n) | Rdata::Cname(n) => n.to_string(),
        Rdata::Soa(s) => format!(
            "{} {} {} {} {} {} {}",
            s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
        ),
        Rdata::Mx {
            preference,
            exchange,
        } => format!("{preference} {exchange}"),
        Rdata::Txt(strings) => strings
            .iter()
            .map(|s| format!("\"{}\"", escape_txt(s)))
            .collect::<Vec<_>>()
            .join(" "),
        Rdata::Ds(d) => format!(
            "{} {} {} {}",
            d.key_tag,
            d.algorithm,
            d.digest_type,
            hex::to_hex_upper(&d.digest)
        ),
        Rdata::Dnskey(k) => format!(
            "{} {} {} {}",
            k.flags,
            k.protocol,
            k.algorithm,
            base64::encode(&k.public_key)
        ),
        Rdata::Rrsig(s) => format!(
            "{} {} {} {} {} {} {} {} {}",
            s.type_covered.mnemonic(),
            s.algorithm,
            s.labels,
            s.original_ttl,
            validity::timestamp_to_ymd(s.expiration),
            validity::timestamp_to_ymd(s.inception),
            s.key_tag,
            s.signer_name,
            base64::encode(&s.signature)
        ),
        Rdata::Nsec(n) => {
            let mut out = n.next_domain.to_string();
            for t in &n.types {
                out.push(' ');
                out.push_str(&t.mnemonic());
            }
            out
        }
        Rdata::Zonemd(z) => format!(
            "{} {} {} {}",
            z.serial,
            z.scheme,
            z.hash_algorithm,
            hex::to_hex_upper(&z.digest)
        ),
        Rdata::Opt(raw) | Rdata::Unknown(raw) => {
            format!("\\# {} {}", raw.len(), hex::to_hex_upper(raw))
        }
        #[allow(unreachable_patterns)]
        _ => format!("; unsupported presentation for {rr_type}"),
    }
}

fn escape_txt(s: &[u8]) -> String {
    let mut out = String::new();
    for &b in s {
        match b {
            b'"' | b'\\' => {
                out.push('\\');
                out.push(b as char);
            }
            0x20..=0x7e => out.push(b as char),
            other => out.push_str(&format!("\\{:03}", other)),
        }
    }
    out
}

/// Errors while parsing a presentation line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line has too few fields.
    TooShort,
    /// A specific field is malformed.
    BadField(&'static str),
    /// The TYPE mnemonic is unknown.
    UnknownType(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::TooShort => write!(f, "record line has too few fields"),
            ParseError::BadField(field) => write!(f, "malformed field: {field}"),
            ParseError::UnknownType(t) => write!(f, "unknown RR type: {t}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse one presentation line: `owner ttl class type rdata...`.
///
/// Class may be omitted (defaults to IN), matching common zone-file style.
pub fn record_from_line(line: &str) -> Result<Record, ParseError> {
    let tokens = tokenize(line);
    if tokens.len() < 4 {
        return Err(ParseError::TooShort);
    }
    let name = Name::parse(&tokens[0]).map_err(|_| ParseError::BadField("owner"))?;
    let ttl: u32 = tokens[1].parse().map_err(|_| ParseError::BadField("ttl"))?;
    let mut idx = 2;
    let class = match Class::parse(&tokens[idx]) {
        Some(c) => {
            idx += 1;
            c
        }
        None => Class::In,
    };
    let type_tok = tokens.get(idx).ok_or(ParseError::TooShort)?;
    let rr_type =
        RrType::parse(type_tok).ok_or_else(|| ParseError::UnknownType(type_tok.clone()))?;
    idx += 1;
    let rest = &tokens[idx..];
    let rdata = parse_rdata(rr_type, rest)?;
    Ok(Record {
        name,
        class,
        ttl,
        rr_type,
        rdata,
    })
}

/// Split a line into tokens, honouring quoted strings. Comments (`;`) outside
/// quotes terminate the line.
fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                // A closing quote always ends a token (quoted tokens may
                // be empty); an opening quote only flushes a pending
                // unquoted token.
                if !in_quotes || !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            '\\' if in_quotes => {
                // Pass the escape through verbatim; `unescape_txt` resolves
                // it exactly once when the RDATA is parsed.
                current.push('\\');
                if let Some(next) = chars.next() {
                    current.push(next);
                }
            }
            ';' if !in_quotes => break,
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

fn parse_rdata(rr_type: RrType, tokens: &[String]) -> Result<Rdata, ParseError> {
    let need = |n: usize| -> Result<(), ParseError> {
        if tokens.len() < n {
            Err(ParseError::TooShort)
        } else {
            Ok(())
        }
    };
    match rr_type {
        RrType::A => {
            need(1)?;
            Ok(Rdata::A(
                tokens[0]
                    .parse()
                    .map_err(|_| ParseError::BadField("A address"))?,
            ))
        }
        RrType::Aaaa => {
            need(1)?;
            Ok(Rdata::Aaaa(
                tokens[0]
                    .parse()
                    .map_err(|_| ParseError::BadField("AAAA address"))?,
            ))
        }
        RrType::Ns => {
            need(1)?;
            Ok(Rdata::Ns(
                Name::parse(&tokens[0]).map_err(|_| ParseError::BadField("NS target"))?,
            ))
        }
        RrType::Cname => {
            need(1)?;
            Ok(Rdata::Cname(
                Name::parse(&tokens[0]).map_err(|_| ParseError::BadField("CNAME target"))?,
            ))
        }
        RrType::Mx => {
            need(2)?;
            Ok(Rdata::Mx {
                preference: tokens[0]
                    .parse()
                    .map_err(|_| ParseError::BadField("MX preference"))?,
                exchange: Name::parse(&tokens[1])
                    .map_err(|_| ParseError::BadField("MX exchange"))?,
            })
        }
        RrType::Soa => {
            need(7)?;
            let num = |i: usize, f: &'static str| -> Result<u32, ParseError> {
                tokens[i].parse().map_err(|_| ParseError::BadField(f))
            };
            Ok(Rdata::Soa(Soa {
                mname: Name::parse(&tokens[0]).map_err(|_| ParseError::BadField("SOA mname"))?,
                rname: Name::parse(&tokens[1]).map_err(|_| ParseError::BadField("SOA rname"))?,
                serial: num(2, "SOA serial")?,
                refresh: num(3, "SOA refresh")?,
                retry: num(4, "SOA retry")?,
                expire: num(5, "SOA expire")?,
                minimum: num(6, "SOA minimum")?,
            }))
        }
        RrType::Txt => {
            need(1)?;
            Ok(Rdata::Txt(tokens.iter().map(|t| unescape_txt(t)).collect()))
        }
        RrType::Ds => {
            need(4)?;
            Ok(Rdata::Ds(Ds {
                key_tag: tokens[0]
                    .parse()
                    .map_err(|_| ParseError::BadField("DS key tag"))?,
                algorithm: tokens[1]
                    .parse()
                    .map_err(|_| ParseError::BadField("DS algorithm"))?,
                digest_type: tokens[2]
                    .parse()
                    .map_err(|_| ParseError::BadField("DS digest type"))?,
                digest: hex::from_hex(&tokens[3..].join(""))
                    .map_err(|_| ParseError::BadField("DS digest"))?,
            }))
        }
        RrType::Dnskey => {
            need(4)?;
            Ok(Rdata::Dnskey(Dnskey {
                flags: tokens[0]
                    .parse()
                    .map_err(|_| ParseError::BadField("DNSKEY flags"))?,
                protocol: tokens[1]
                    .parse()
                    .map_err(|_| ParseError::BadField("DNSKEY protocol"))?,
                algorithm: tokens[2]
                    .parse()
                    .map_err(|_| ParseError::BadField("DNSKEY algorithm"))?,
                public_key: base64::decode(&tokens[3..].join(""))
                    .map_err(|_| ParseError::BadField("DNSKEY key"))?,
            }))
        }
        RrType::Rrsig => {
            need(9)?;
            Ok(Rdata::Rrsig(Rrsig {
                type_covered: RrType::parse(&tokens[0])
                    .ok_or(ParseError::BadField("RRSIG type covered"))?,
                algorithm: tokens[1]
                    .parse()
                    .map_err(|_| ParseError::BadField("RRSIG algorithm"))?,
                labels: tokens[2]
                    .parse()
                    .map_err(|_| ParseError::BadField("RRSIG labels"))?,
                original_ttl: tokens[3]
                    .parse()
                    .map_err(|_| ParseError::BadField("RRSIG original ttl"))?,
                expiration: parse_time(&tokens[4])
                    .ok_or(ParseError::BadField("RRSIG expiration"))?,
                inception: parse_time(&tokens[5]).ok_or(ParseError::BadField("RRSIG inception"))?,
                key_tag: tokens[6]
                    .parse()
                    .map_err(|_| ParseError::BadField("RRSIG key tag"))?,
                signer_name: Name::parse(&tokens[7])
                    .map_err(|_| ParseError::BadField("RRSIG signer"))?,
                signature: base64::decode(&tokens[8..].join(""))
                    .map_err(|_| ParseError::BadField("RRSIG signature"))?,
            }))
        }
        RrType::Nsec => {
            need(1)?;
            let next_domain =
                Name::parse(&tokens[0]).map_err(|_| ParseError::BadField("NSEC next"))?;
            let mut types = Vec::new();
            for t in &tokens[1..] {
                types.push(RrType::parse(t).ok_or(ParseError::BadField("NSEC type"))?);
            }
            Ok(Rdata::Nsec(Nsec { next_domain, types }))
        }
        RrType::Zonemd => {
            need(4)?;
            Ok(Rdata::Zonemd(Zonemd {
                serial: tokens[0]
                    .parse()
                    .map_err(|_| ParseError::BadField("ZONEMD serial"))?,
                scheme: tokens[1]
                    .parse()
                    .map_err(|_| ParseError::BadField("ZONEMD scheme"))?,
                hash_algorithm: tokens[2]
                    .parse()
                    .map_err(|_| ParseError::BadField("ZONEMD hash alg"))?,
                digest: hex::from_hex(&tokens[3..].join(""))
                    .map_err(|_| ParseError::BadField("ZONEMD digest"))?,
            }))
        }
        other => Err(ParseError::UnknownType(other.mnemonic())),
    }
}

/// RRSIG times may be either `YYYYMMDDHHmmSS` or raw seconds.
fn parse_time(s: &str) -> Option<u32> {
    validity::timestamp_from_ymd(s).or_else(|| s.parse().ok())
}

fn unescape_txt(s: &str) -> Vec<u8> {
    let mut out = Vec::new();
    let mut bytes = s.bytes().peekable();
    while let Some(b) = bytes.next() {
        if b == b'\\' {
            match bytes.peek() {
                Some(d) if d.is_ascii_digit() => {
                    let d1 = bytes.next().unwrap() - b'0';
                    let d2 = bytes.next().map(|c| c - b'0').unwrap_or(0);
                    let d3 = bytes.next().map(|c| c - b'0').unwrap_or(0);
                    out.push(d1.wrapping_mul(100).wrapping_add(d2 * 10).wrapping_add(d3));
                }
                Some(_) => out.push(bytes.next().unwrap()),
                None => out.push(b'\\'),
            }
        } else {
            out.push(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(line: &str) -> Record {
        let rec = record_from_line(line).unwrap();
        let rendered = record_to_line(&rec);
        let again = record_from_line(&rendered).unwrap();
        assert_eq!(rec, again, "line: {line}");
        rec
    }

    #[test]
    fn basic_types_round_trip() {
        round_trip("b.root-servers.net.\t518400\tIN\tA\t199.9.14.201");
        round_trip("b.root-servers.net. 518400 IN AAAA 2801:1b8:10::b");
        round_trip(". 518400 IN NS a.root-servers.net.");
        round_trip("example. 3600 IN MX 10 mail.example.");
        round_trip("www.example. 300 IN CNAME example.");
    }

    #[test]
    fn soa_round_trip() {
        let rec = round_trip(
            ". 86400 IN SOA a.root-servers.net. nstld.verisign-grs.com. 2023122400 1800 900 604800 86400",
        );
        match &rec.rdata {
            Rdata::Soa(s) => assert_eq!(s.serial, 2023122400),
            _ => panic!("not SOA"),
        }
    }

    #[test]
    fn class_defaults_to_in() {
        let rec = record_from_line("example. 3600 A 1.2.3.4").unwrap();
        assert_eq!(rec.class, Class::In);
    }

    #[test]
    fn chaos_txt_round_trip() {
        let rec = round_trip("hostname.bind. 0 CH TXT \"ber1.b.root\"");
        assert_eq!(rec.class, Class::Ch);
        match &rec.rdata {
            Rdata::Txt(s) => assert_eq!(s[0], b"ber1.b.root"),
            _ => panic!("not TXT"),
        }
    }

    #[test]
    fn txt_with_escapes() {
        let rec = round_trip(r#"x. 0 IN TXT "say \"hi\" \\ there""#);
        match &rec.rdata {
            Rdata::Txt(s) => assert_eq!(s[0], br#"say "hi" \ there"#),
            _ => panic!("not TXT"),
        }
    }

    #[test]
    fn zonemd_round_trip() {
        let digest = "AB".repeat(48);
        let rec = round_trip(&format!(". 86400 IN ZONEMD 2023120600 1 1 {digest}"));
        match &rec.rdata {
            Rdata::Zonemd(z) => {
                assert_eq!(z.serial, 2023120600);
                assert_eq!(z.scheme, 1);
                assert_eq!(z.hash_algorithm, 1);
                assert_eq!(z.digest.len(), 48);
            }
            _ => panic!("not ZONEMD"),
        }
    }

    #[test]
    fn rrsig_round_trip_with_timestamps() {
        // Mirrors the Figure 10 RRSIG shape.
        let sig = dns_crypto::base64::encode(&[0x5a; 48]);
        let line = format!(
            "world. 86400 IN RRSIG NSEC 8 1 86400 20231201050000 20231118040000 46780 . {sig}"
        );
        let rec = round_trip(&line);
        match &rec.rdata {
            Rdata::Rrsig(s) => {
                assert_eq!(s.type_covered, RrType::Nsec);
                assert_eq!(s.key_tag, 46780);
                assert_eq!(
                    dns_crypto::validity::timestamp_to_ymd(s.expiration),
                    "20231201050000"
                );
            }
            _ => panic!("not RRSIG"),
        }
    }

    #[test]
    fn nsec_round_trip() {
        let rec = round_trip(". 86400 IN NSEC aaa. NS SOA RRSIG NSEC DNSKEY ZONEMD");
        match &rec.rdata {
            Rdata::Nsec(n) => assert_eq!(n.types.len(), 6),
            _ => panic!("not NSEC"),
        }
    }

    #[test]
    fn dnskey_and_ds_round_trip() {
        round_trip(". 86400 IN DNSKEY 257 3 253 AAECAwQFBgc=");
        round_trip(". 86400 IN DS 20326 8 2 E06D44B80B8F1D39A95C0B0D7C65D08458E880409BBC683457104237C7F8EC8D");
    }

    #[test]
    fn comments_stripped() {
        let rec = record_from_line("x. 60 IN A 1.2.3.4 ; a comment").unwrap();
        assert_eq!(rec.rdata, Rdata::A("1.2.3.4".parse().unwrap()));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(record_from_line("").is_err());
        assert!(record_from_line("x. 60 IN").is_err());
        assert!(record_from_line("x. sixty IN A 1.2.3.4").is_err());
        assert!(record_from_line("x. 60 IN A not-an-ip").is_err());
        assert!(record_from_line("x. 60 IN FROB data").is_err());
    }
}
