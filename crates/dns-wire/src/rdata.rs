//! RDATA for the record types this study touches.

use crate::name::Name;
use crate::rrtype::RrType;
use crate::wire::{WireError, WireReader, WireWriter};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rdata {
    /// IPv4 address (RFC 1035).
    A(Ipv4Addr),
    /// IPv6 address (RFC 3596).
    Aaaa(Ipv6Addr),
    /// Authoritative name server.
    Ns(Name),
    /// Canonical name.
    Cname(Name),
    /// Start of authority.
    Soa(Soa),
    /// Mail exchange.
    Mx { preference: u16, exchange: Name },
    /// Text — one or more character strings (each ≤255 bytes).
    Txt(Vec<Vec<u8>>),
    /// Delegation signer (RFC 4034).
    Ds(Ds),
    /// DNSSEC public key (RFC 4034).
    Dnskey(Dnskey),
    /// DNSSEC signature (RFC 4034).
    Rrsig(Rrsig),
    /// Authenticated denial (RFC 4034).
    Nsec(Nsec),
    /// Zone message digest (RFC 8976).
    Zonemd(Zonemd),
    /// EDNS0 pseudo-record payload: raw options.
    Opt(Vec<u8>),
    /// Unknown type, kept opaque.
    Unknown(Vec<u8>),
}

/// SOA RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soa {
    pub mname: Name,
    pub rname: Name,
    pub serial: u32,
    pub refresh: u32,
    pub retry: u32,
    pub expire: u32,
    pub minimum: u32,
}

/// DS RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ds {
    pub key_tag: u16,
    pub algorithm: u8,
    pub digest_type: u8,
    pub digest: Vec<u8>,
}

/// DNSKEY RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dnskey {
    pub flags: u16,
    pub protocol: u8,
    pub algorithm: u8,
    pub public_key: Vec<u8>,
}

impl Dnskey {
    /// The ZONE flag bit (RFC 4034 §2.1.1).
    pub fn is_zone_key(&self) -> bool {
        self.flags & 0x0100 != 0
    }

    /// The SEP flag bit — set on key-signing keys.
    pub fn is_sep(&self) -> bool {
        self.flags & 0x0001 != 0
    }

    /// RDATA in wire form, e.g. for key-tag computation.
    pub fn rdata_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u16(self.flags);
        w.put_u8(self.protocol);
        w.put_u8(self.algorithm);
        w.put_bytes(&self.public_key);
        w.into_bytes()
    }

    /// Key tag (RFC 4034 Appendix B).
    pub fn key_tag(&self) -> u16 {
        dns_crypto::key_tag(&self.rdata_wire())
    }
}

/// RRSIG RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rrsig {
    pub type_covered: RrType,
    pub algorithm: u8,
    pub labels: u8,
    pub original_ttl: u32,
    pub expiration: u32,
    pub inception: u32,
    pub key_tag: u16,
    pub signer_name: Name,
    pub signature: Vec<u8>,
}

impl Rrsig {
    /// The RDATA prefix that is included in the signed data (everything up to
    /// but excluding the signature field), with the signer name in canonical
    /// form (RFC 4034 §3.1.8.1).
    pub fn signed_prefix_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u16(self.type_covered.to_u16());
        w.put_u8(self.algorithm);
        w.put_u8(self.labels);
        w.put_u32(self.original_ttl);
        w.put_u32(self.expiration);
        w.put_u32(self.inception);
        w.put_u16(self.key_tag);
        self.signer_name.write_wire(&mut w, true);
        w.into_bytes()
    }
}

/// NSEC RDATA fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nsec {
    pub next_domain: Name,
    /// Types present at the owner, ascending.
    pub types: Vec<RrType>,
}

impl Nsec {
    /// Encode the type bitmap (RFC 4034 §4.1.2).
    pub fn type_bitmap_wire(&self) -> Vec<u8> {
        let mut by_window: std::collections::BTreeMap<u8, [u8; 32]> =
            std::collections::BTreeMap::new();
        for t in &self.types {
            let v = t.to_u16();
            let window = (v >> 8) as u8;
            let bit = (v & 0xff) as usize;
            let map = by_window.entry(window).or_insert([0u8; 32]);
            map[bit / 8] |= 0x80 >> (bit % 8);
        }
        let mut out = Vec::new();
        for (window, map) in by_window {
            let len = map
                .iter()
                .rposition(|&b| b != 0)
                .map(|p| p + 1)
                .unwrap_or(0);
            if len == 0 {
                continue;
            }
            out.push(window);
            out.push(len as u8);
            out.extend_from_slice(&map[..len]);
        }
        out
    }

    /// Decode a type bitmap.
    pub fn parse_type_bitmap(mut data: &[u8]) -> Result<Vec<RrType>, WireError> {
        let mut types = Vec::new();
        while !data.is_empty() {
            if data.len() < 2 {
                return Err(WireError::BadRdata);
            }
            let window = data[0] as u16;
            let len = data[1] as usize;
            if len == 0 || len > 32 || data.len() < 2 + len {
                return Err(WireError::BadRdata);
            }
            for (i, &byte) in data[2..2 + len].iter().enumerate() {
                for bit in 0..8 {
                    if byte & (0x80 >> bit) != 0 {
                        types.push(RrType::from_u16((window << 8) | (i as u16 * 8 + bit)));
                    }
                }
            }
            data = &data[2 + len..];
        }
        Ok(types)
    }
}

/// ZONEMD RDATA fields (RFC 8976 §2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zonemd {
    /// Serial of the zone the digest covers.
    pub serial: u32,
    /// Scheme (1 = SIMPLE).
    pub scheme: u8,
    /// Hash algorithm (1 = SHA-384, 2 = SHA-512; ≥240 private).
    pub hash_algorithm: u8,
    /// The digest.
    pub digest: Vec<u8>,
}

impl Rdata {
    /// The RR type this RDATA belongs to. `Unknown` reports `Other(0)` — the
    /// owning [`crate::record::Record`] carries the authoritative type.
    pub fn rr_type(&self) -> RrType {
        match self {
            Rdata::A(_) => RrType::A,
            Rdata::Aaaa(_) => RrType::Aaaa,
            Rdata::Ns(_) => RrType::Ns,
            Rdata::Cname(_) => RrType::Cname,
            Rdata::Soa(_) => RrType::Soa,
            Rdata::Mx { .. } => RrType::Mx,
            Rdata::Txt(_) => RrType::Txt,
            Rdata::Ds(_) => RrType::Ds,
            Rdata::Dnskey(_) => RrType::Dnskey,
            Rdata::Rrsig(_) => RrType::Rrsig,
            Rdata::Nsec(_) => RrType::Nsec,
            Rdata::Zonemd(_) => RrType::Zonemd,
            Rdata::Opt(_) => RrType::Opt,
            Rdata::Unknown(_) => RrType::Other(0),
        }
    }

    /// Write RDATA in wire format. `canonical` lowercases embedded names and
    /// disables compression (RFC 4034 §6.2); message encoding passes `false`.
    pub fn write_wire(&self, w: &mut WireWriter, canonical: bool) {
        match self {
            Rdata::A(a) => w.put_bytes(&a.octets()),
            Rdata::Aaaa(a) => w.put_bytes(&a.octets()),
            Rdata::Ns(n) | Rdata::Cname(n) => n.write_wire(w, canonical),
            Rdata::Soa(soa) => {
                soa.mname.write_wire(w, canonical);
                soa.rname.write_wire(w, canonical);
                w.put_u32(soa.serial);
                w.put_u32(soa.refresh);
                w.put_u32(soa.retry);
                w.put_u32(soa.expire);
                w.put_u32(soa.minimum);
            }
            Rdata::Mx {
                preference,
                exchange,
            } => {
                w.put_u16(*preference);
                exchange.write_wire(w, canonical);
            }
            Rdata::Txt(strings) => {
                for s in strings {
                    w.put_u8(s.len() as u8);
                    w.put_bytes(s);
                }
            }
            Rdata::Ds(ds) => {
                w.put_u16(ds.key_tag);
                w.put_u8(ds.algorithm);
                w.put_u8(ds.digest_type);
                w.put_bytes(&ds.digest);
            }
            Rdata::Dnskey(k) => {
                w.put_u16(k.flags);
                w.put_u8(k.protocol);
                w.put_u8(k.algorithm);
                w.put_bytes(&k.public_key);
            }
            Rdata::Rrsig(sig) => {
                w.put_u16(sig.type_covered.to_u16());
                w.put_u8(sig.algorithm);
                w.put_u8(sig.labels);
                w.put_u32(sig.original_ttl);
                w.put_u32(sig.expiration);
                w.put_u32(sig.inception);
                w.put_u16(sig.key_tag);
                // Signer name is never compressed and is lowercased in
                // canonical form.
                sig.signer_name.write_wire(w, canonical);
                w.put_bytes(&sig.signature);
            }
            Rdata::Nsec(nsec) => {
                nsec.next_domain.write_wire(w, canonical);
                w.put_bytes(&nsec.type_bitmap_wire());
            }
            Rdata::Zonemd(z) => {
                w.put_u32(z.serial);
                w.put_u8(z.scheme);
                w.put_u8(z.hash_algorithm);
                w.put_bytes(&z.digest);
            }
            Rdata::Opt(raw) | Rdata::Unknown(raw) => w.put_bytes(raw),
        }
    }

    /// RDATA wire bytes (non-canonical).
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.write_wire(&mut w, false);
        w.into_bytes()
    }

    /// Read RDATA of `rr_type` from exactly `rdlength` bytes.
    pub fn read_wire(
        r: &mut WireReader,
        rr_type: RrType,
        rdlength: usize,
    ) -> Result<Self, WireError> {
        let end = r.position() + rdlength;
        if r.remaining() < rdlength {
            return Err(WireError::Truncated);
        }
        let rdata = match rr_type {
            RrType::A => {
                if rdlength != 4 {
                    return Err(WireError::BadRdataLength);
                }
                let b = r.read_bytes(4)?;
                Rdata::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RrType::Aaaa => {
                if rdlength != 16 {
                    return Err(WireError::BadRdataLength);
                }
                let b = r.read_bytes(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                Rdata::Aaaa(Ipv6Addr::from(o))
            }
            RrType::Ns => Rdata::Ns(Name::read_wire(r)?),
            RrType::Cname => Rdata::Cname(Name::read_wire(r)?),
            RrType::Soa => {
                let mname = Name::read_wire(r)?;
                let rname = Name::read_wire(r)?;
                Rdata::Soa(Soa {
                    mname,
                    rname,
                    serial: r.read_u32()?,
                    refresh: r.read_u32()?,
                    retry: r.read_u32()?,
                    expire: r.read_u32()?,
                    minimum: r.read_u32()?,
                })
            }
            RrType::Mx => Rdata::Mx {
                preference: r.read_u16()?,
                exchange: Name::read_wire(r)?,
            },
            RrType::Txt => {
                let mut strings = Vec::new();
                while r.position() < end {
                    let len = r.read_u8()? as usize;
                    if r.position() + len > end {
                        return Err(WireError::BadRdataLength);
                    }
                    strings.push(r.read_bytes(len)?.to_vec());
                }
                Rdata::Txt(strings)
            }
            RrType::Ds => {
                if rdlength < 4 {
                    return Err(WireError::BadRdataLength);
                }
                Rdata::Ds(Ds {
                    key_tag: r.read_u16()?,
                    algorithm: r.read_u8()?,
                    digest_type: r.read_u8()?,
                    digest: r.read_bytes(end - r.position())?.to_vec(),
                })
            }
            RrType::Dnskey => {
                if rdlength < 4 {
                    return Err(WireError::BadRdataLength);
                }
                Rdata::Dnskey(Dnskey {
                    flags: r.read_u16()?,
                    protocol: r.read_u8()?,
                    algorithm: r.read_u8()?,
                    public_key: r.read_bytes(end - r.position())?.to_vec(),
                })
            }
            RrType::Rrsig => {
                if rdlength < 18 {
                    return Err(WireError::BadRdataLength);
                }
                let type_covered = RrType::from_u16(r.read_u16()?);
                let algorithm = r.read_u8()?;
                let labels = r.read_u8()?;
                let original_ttl = r.read_u32()?;
                let expiration = r.read_u32()?;
                let inception = r.read_u32()?;
                let key_tag = r.read_u16()?;
                let signer_name = Name::read_wire(r)?;
                if r.position() > end {
                    return Err(WireError::BadRdataLength);
                }
                Rdata::Rrsig(Rrsig {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer_name,
                    signature: r.read_bytes(end - r.position())?.to_vec(),
                })
            }
            RrType::Nsec => {
                let next_domain = Name::read_wire(r)?;
                if r.position() > end {
                    return Err(WireError::BadRdataLength);
                }
                let bitmap = r.read_bytes(end - r.position())?;
                Rdata::Nsec(Nsec {
                    next_domain,
                    types: Nsec::parse_type_bitmap(bitmap)?,
                })
            }
            RrType::Zonemd => {
                if rdlength < 6 {
                    return Err(WireError::BadRdataLength);
                }
                Rdata::Zonemd(Zonemd {
                    serial: r.read_u32()?,
                    scheme: r.read_u8()?,
                    hash_algorithm: r.read_u8()?,
                    digest: r.read_bytes(end - r.position())?.to_vec(),
                })
            }
            RrType::Opt => Rdata::Opt(r.read_bytes(rdlength)?.to_vec()),
            _ => Rdata::Unknown(r.read_bytes(rdlength)?.to_vec()),
        };
        if r.position() != end {
            return Err(WireError::BadRdataLength);
        }
        Ok(rdata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rdata: Rdata) {
        let t = rdata.rr_type();
        let wire = rdata.to_wire();
        let mut r = WireReader::new(&wire);
        let back = Rdata::read_wire(&mut r, t, wire.len()).unwrap();
        assert_eq!(back, rdata);
    }

    #[test]
    fn address_records_round_trip() {
        round_trip(Rdata::A("199.9.14.201".parse().unwrap()));
        round_trip(Rdata::Aaaa("2801:1b8:10::b".parse().unwrap()));
    }

    #[test]
    fn a_with_wrong_length_rejected() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert_eq!(
            Rdata::read_wire(&mut r, RrType::A, 3),
            Err(WireError::BadRdataLength)
        );
    }

    #[test]
    fn soa_round_trip() {
        round_trip(Rdata::Soa(Soa {
            mname: Name::parse("a.root-servers.net.").unwrap(),
            rname: Name::parse("nstld.verisign-grs.com.").unwrap(),
            serial: 2023122400,
            refresh: 1800,
            retry: 900,
            expire: 604800,
            minimum: 86400,
        }));
    }

    #[test]
    fn txt_round_trip_multiple_strings() {
        round_trip(Rdata::Txt(vec![b"hello".to_vec(), b"world".to_vec()]));
        round_trip(Rdata::Txt(vec![Vec::new()]));
    }

    #[test]
    fn txt_overflowing_string_rejected() {
        // Length byte promises 10 but only 3 remain within rdlength.
        let wire = [10u8, b'a', b'b', b'c'];
        let mut r = WireReader::new(&wire);
        assert_eq!(
            Rdata::read_wire(&mut r, RrType::Txt, 4),
            Err(WireError::BadRdataLength)
        );
    }

    #[test]
    fn dnskey_key_tag_changes_with_content() {
        let k1 = Dnskey {
            flags: 0x0101,
            protocol: 3,
            algorithm: 253,
            public_key: vec![1, 2, 3, 4],
        };
        let mut k2 = k1.clone();
        k2.public_key[0] = 99;
        assert_ne!(k1.key_tag(), k2.key_tag());
        assert!(k1.is_zone_key());
        assert!(k1.is_sep());
        round_trip(Rdata::Dnskey(k1));
    }

    #[test]
    fn rrsig_round_trip() {
        round_trip(Rdata::Rrsig(Rrsig {
            type_covered: RrType::Nsec,
            algorithm: 8,
            labels: 1,
            original_ttl: 86400,
            expiration: 1_701_406_800,
            inception: 1_700_283_600,
            key_tag: 46780,
            signer_name: Name::root(),
            signature: vec![0xab; 48],
        }));
    }

    #[test]
    fn nsec_bitmap_round_trip() {
        round_trip(Rdata::Nsec(Nsec {
            next_domain: Name::parse("aaa.").unwrap(),
            types: vec![
                RrType::Ns,
                RrType::Soa,
                RrType::Rrsig,
                RrType::Nsec,
                RrType::Dnskey,
                RrType::Zonemd,
            ],
        }));
    }

    #[test]
    fn nsec_bitmap_spanning_windows() {
        // Type 1 (window 0) and type 257 (window 1).
        round_trip(Rdata::Nsec(Nsec {
            next_domain: Name::root(),
            types: vec![RrType::A, RrType::Other(257)],
        }));
    }

    #[test]
    fn nsec_bad_bitmap_rejected() {
        assert_eq!(Nsec::parse_type_bitmap(&[0]), Err(WireError::BadRdata));
        assert_eq!(Nsec::parse_type_bitmap(&[0, 0]), Err(WireError::BadRdata));
        assert_eq!(Nsec::parse_type_bitmap(&[0, 33]), Err(WireError::BadRdata));
        assert_eq!(
            Nsec::parse_type_bitmap(&[0, 2, 0xff]),
            Err(WireError::BadRdata)
        );
    }

    #[test]
    fn zonemd_round_trip() {
        round_trip(Rdata::Zonemd(Zonemd {
            serial: 2023120600,
            scheme: 1,
            hash_algorithm: 1,
            digest: vec![0x5a; 48],
        }));
    }

    #[test]
    fn zonemd_too_short_rejected() {
        let mut r = WireReader::new(&[0, 0, 0, 1, 1]);
        assert_eq!(
            Rdata::read_wire(&mut r, RrType::Zonemd, 5),
            Err(WireError::BadRdataLength)
        );
    }

    #[test]
    fn unknown_type_kept_opaque() {
        let wire = vec![9, 8, 7];
        let mut r = WireReader::new(&wire);
        let rd = Rdata::read_wire(&mut r, RrType::Other(1234), 3).unwrap();
        assert_eq!(rd, Rdata::Unknown(vec![9, 8, 7]));
    }

    #[test]
    fn canonical_lowercases_embedded_names() {
        let ns = Rdata::Ns(Name::parse("A.ROOT-SERVERS.NET.").unwrap());
        let mut w = WireWriter::new();
        ns.write_wire(&mut w, true);
        let canonical = w.into_bytes();
        let mut w = WireWriter::new();
        ns.write_wire(&mut w, false);
        let plain = w.into_bytes();
        assert_ne!(canonical, plain);
        assert!(canonical.windows(1).any(|w| w == b"a"));
    }

    #[test]
    fn mx_round_trip() {
        round_trip(Rdata::Mx {
            preference: 10,
            exchange: Name::parse("mail.example.").unwrap(),
        });
    }

    #[test]
    fn ds_round_trip() {
        round_trip(Rdata::Ds(Ds {
            key_tag: 20326,
            algorithm: 8,
            digest_type: 2,
            digest: vec![0xcd; 32],
        }));
    }
}
