//! Resource records and RRsets.

use crate::class::Class;
use crate::name::Name;
use crate::rdata::Rdata;
use crate::rrtype::RrType;
use crate::wire::{WireError, WireReader, WireWriter};

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub name: Name,
    pub class: Class,
    pub ttl: u32,
    /// Authoritative RR type. Usually `rdata.rr_type()`, but kept separately
    /// so opaque [`Rdata::Unknown`] payloads retain their type.
    pub rr_type: RrType,
    pub rdata: Rdata,
}

impl Record {
    /// Build a record of the RDATA's natural type, class IN.
    pub fn new(name: Name, ttl: u32, rdata: Rdata) -> Self {
        Record {
            name,
            class: Class::In,
            ttl,
            rr_type: rdata.rr_type(),
            rdata,
        }
    }

    /// Build a CHAOS-class record (identity TXT responses).
    pub fn chaos(name: Name, ttl: u32, rdata: Rdata) -> Self {
        Record {
            name,
            class: Class::Ch,
            ttl,
            rr_type: rdata.rr_type(),
            rdata,
        }
    }

    /// Encode into a message body, with name compression for the owner.
    pub fn write_wire(&self, w: &mut WireWriter) {
        self.name.write_wire_compressed(w);
        w.put_u16(self.rr_type.to_u16());
        w.put_u16(self.class.to_u16());
        w.put_u32(self.ttl);
        let len_at = w.len();
        w.put_u16(0); // placeholder RDLENGTH
        let before = w.len();
        self.rdata.write_wire(w, false);
        w.patch_u16(len_at, (w.len() - before) as u16);
    }

    /// RFC 4034 §6 canonical wire form of the whole RR, with `ttl_override`
    /// substituted (signing uses the RRSIG's original TTL). No compression,
    /// owner and embedded names lowercased.
    pub fn canonical_wire(&self, ttl_override: Option<u32>) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.name.write_wire(&mut w, true);
        w.put_u16(self.rr_type.to_u16());
        w.put_u16(self.class.to_u16());
        w.put_u32(ttl_override.unwrap_or(self.ttl));
        let len_at = w.len();
        w.put_u16(0);
        let before = w.len();
        self.rdata
            .write_wire(&mut w, self.rr_type.rdata_has_canonical_names());
        w.patch_u16(len_at, (w.len() - before) as u16);
        w.into_bytes()
    }

    /// Decode one record from a message body.
    pub fn read_wire(r: &mut WireReader) -> Result<Self, WireError> {
        let name = Name::read_wire(r)?;
        let rr_type = RrType::from_u16(r.read_u16()?);
        let class = Class::from_u16(r.read_u16()?);
        let ttl = r.read_u32()?;
        let rdlength = r.read_u16()? as usize;
        let rdata = Rdata::read_wire(r, rr_type, rdlength)?;
        Ok(Record {
            name,
            class,
            ttl,
            rr_type,
            rdata,
        })
    }

    /// Canonical RRset ordering (RFC 4034 §6.3): owner, class, type, then
    /// canonical RDATA bytes.
    pub fn canonical_cmp(&self, other: &Record) -> std::cmp::Ordering {
        self.name
            .canonical_cmp(&other.name)
            .then_with(|| self.class.to_u16().cmp(&other.class.to_u16()))
            .then_with(|| self.rr_type.to_u16().cmp(&other.rr_type.to_u16()))
            .then_with(|| {
                let mut wa = WireWriter::new();
                self.rdata
                    .write_wire(&mut wa, self.rr_type.rdata_has_canonical_names());
                let mut wb = WireWriter::new();
                other
                    .rdata
                    .write_wire(&mut wb, other.rr_type.rdata_has_canonical_names());
                wa.into_bytes().cmp(&wb.into_bytes())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn a_record(name: &str, addr: &str) -> Record {
        Record::new(
            Name::parse(name).unwrap(),
            3600000,
            Rdata::A(addr.parse().unwrap()),
        )
    }

    #[test]
    fn wire_round_trip() {
        let rec = a_record("b.root-servers.net.", "199.9.14.201");
        let mut w = WireWriter::new();
        rec.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Record::read_wire(&mut r).unwrap(), rec);
        assert!(r.is_empty());
    }

    #[test]
    fn rdlength_patched_correctly() {
        let rec = a_record("x.", "1.2.3.4");
        let mut w = WireWriter::new();
        rec.write_wire(&mut w);
        let bytes = w.into_bytes();
        // owner (3) + type(2) + class(2) + ttl(4) = 11; rdlength at 11..13.
        assert_eq!(&bytes[11..13], &[0, 4]);
    }

    #[test]
    fn canonical_wire_lowercases_owner_and_applies_ttl() {
        let rec = Record::new(
            Name::parse("B.ROOT-SERVERS.NET.").unwrap(),
            518400,
            Rdata::A("199.9.14.201".parse().unwrap()),
        );
        let wire = rec.canonical_wire(Some(3600));
        // Owner must be lowercase.
        assert!(wire.windows(1).any(|w| w == b"b"));
        assert!(!wire.windows(1).any(|w| w == b"B"));
        // TTL field (offset: 20-byte owner + 2 + 2 = 24..28).
        let owner_len = Name::parse("b.root-servers.net.").unwrap().wire_len();
        let ttl_off = owner_len + 4;
        assert_eq!(&wire[ttl_off..ttl_off + 4], &3600u32.to_be_bytes());
    }

    #[test]
    fn canonical_ordering_by_rdata() {
        let r1 = a_record("x.", "1.1.1.1");
        let r2 = a_record("x.", "2.2.2.2");
        assert_eq!(r1.canonical_cmp(&r2), Ordering::Less);
        assert_eq!(r2.canonical_cmp(&r1), Ordering::Greater);
        assert_eq!(r1.canonical_cmp(&r1), Ordering::Equal);
    }

    #[test]
    fn canonical_ordering_by_type_then_name() {
        let a = a_record("x.", "1.1.1.1");
        let ns = Record::new(
            Name::parse("x.").unwrap(),
            3600,
            Rdata::Ns(Name::parse("n.x.").unwrap()),
        );
        assert_eq!(a.canonical_cmp(&ns), Ordering::Less); // A(1) < NS(2)
        let earlier = a_record("a.", "9.9.9.9");
        assert_eq!(earlier.canonical_cmp(&a), Ordering::Less);
    }

    #[test]
    fn chaos_record_class() {
        let rec = Record::chaos(
            Name::parse("hostname.bind.").unwrap(),
            0,
            Rdata::Txt(vec![b"site01.example".to_vec()]),
        );
        assert_eq!(rec.class, Class::Ch);
        let mut w = WireWriter::new();
        rec.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Record::read_wire(&mut r).unwrap().class, Class::Ch);
    }
}
