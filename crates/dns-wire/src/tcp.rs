//! DNS-over-TCP stream framing (RFC 1035 §4.2.2 / RFC 7766).
//!
//! Zone transfers run over TCP: each message is prefixed with a two-byte
//! big-endian length. This module frames and de-frames message sequences
//! over byte streams — what the AXFR path actually looks like on the wire
//! between a VP and a root server.

use crate::message::Message;
use crate::wire::WireError;

/// Maximum DNS message size over TCP (the length prefix's range).
pub const MAX_TCP_MESSAGE: usize = 0xffff;

/// Errors framing or de-framing a TCP stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpFramingError {
    /// A message exceeds the 16-bit length prefix.
    MessageTooLarge(usize),
    /// The stream ended mid-length-prefix.
    Truncated,
    /// The stream ended mid-message: a frame promised `want` body bytes
    /// but only `got` arrived — the signature of a zone transfer cut off
    /// mid-record (connection reset, upstream crash, injected fault).
    TruncatedFrame { got: usize, want: usize },
    /// A framed message failed to decode.
    Wire(WireError),
}

impl std::fmt::Display for TcpFramingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpFramingError::MessageTooLarge(n) => {
                write!(f, "message of {n} bytes exceeds TCP limit")
            }
            TcpFramingError::Truncated => write!(f, "truncated TCP stream"),
            TcpFramingError::TruncatedFrame { got, want } => {
                write!(
                    f,
                    "TCP stream ended mid-message: {got} of {want} body bytes"
                )
            }
            TcpFramingError::Wire(e) => write!(f, "framed message malformed: {e}"),
        }
    }
}

impl std::error::Error for TcpFramingError {}

/// Frame a sequence of messages into one TCP byte stream.
pub fn frame_stream(messages: &[Message]) -> Result<Vec<u8>, TcpFramingError> {
    let mut out = Vec::new();
    for msg in messages {
        let wire = msg.to_wire();
        if wire.len() > MAX_TCP_MESSAGE {
            return Err(TcpFramingError::MessageTooLarge(wire.len()));
        }
        out.extend_from_slice(&(wire.len() as u16).to_be_bytes());
        out.extend_from_slice(&wire);
    }
    Ok(out)
}

/// De-frame a TCP byte stream back into messages.
pub fn deframe_stream(mut stream: &[u8]) -> Result<Vec<Message>, TcpFramingError> {
    let mut out = Vec::new();
    while !stream.is_empty() {
        if stream.len() < 2 {
            return Err(TcpFramingError::Truncated);
        }
        let len = u16::from_be_bytes([stream[0], stream[1]]) as usize;
        stream = &stream[2..];
        if stream.len() < len {
            return Err(TcpFramingError::TruncatedFrame {
                got: stream.len(),
                want: len,
            });
        }
        let msg = Message::from_wire(&stream[..len]).map_err(TcpFramingError::Wire)?;
        out.push(msg);
        stream = &stream[len..];
    }
    Ok(out)
}

/// An incremental de-framer for streams that arrive in chunks (as TCP
/// segments do): feed bytes, take complete messages out.
#[derive(Debug, Default)]
pub struct StreamReader {
    buf: Vec<u8>,
}

impl StreamReader {
    /// Empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete message, if the buffer holds one.
    pub fn next_message(&mut self) -> Result<Option<Message>, TcpFramingError> {
        if self.buf.len() < 2 {
            return Ok(None);
        }
        let len = u16::from_be_bytes([self.buf[0], self.buf[1]]) as usize;
        if self.buf.len() < 2 + len {
            return Ok(None);
        }
        let msg = Message::from_wire(&self.buf[2..2 + len]).map_err(TcpFramingError::Wire)?;
        self.buf.drain(..2 + len);
        Ok(Some(msg))
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Name, Question, RrType};

    fn sample_messages(n: usize) -> Vec<Message> {
        (0..n)
            .map(|i| {
                Message::query(
                    i as u16,
                    Question::new(Name::parse("b.root-servers.net.").unwrap(), RrType::Soa),
                )
            })
            .collect()
    }

    #[test]
    fn frame_deframe_round_trip() {
        let msgs = sample_messages(5);
        let stream = frame_stream(&msgs).unwrap();
        assert_eq!(deframe_stream(&stream).unwrap(), msgs);
    }

    #[test]
    fn empty_stream_is_empty() {
        assert_eq!(deframe_stream(&[]).unwrap(), Vec::<Message>::new());
        assert_eq!(frame_stream(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn truncated_length_detected() {
        let msgs = sample_messages(1);
        let mut stream = frame_stream(&msgs).unwrap();
        stream.push(0x00); // half a length prefix
        assert_eq!(deframe_stream(&stream), Err(TcpFramingError::Truncated));
    }

    #[test]
    fn truncated_body_detected_with_byte_counts() {
        let msgs = sample_messages(1);
        let full = frame_stream(&msgs).unwrap();
        let want = full.len() - 2;
        let mut stream = full.clone();
        stream.pop();
        assert_eq!(
            deframe_stream(&stream),
            Err(TcpFramingError::TruncatedFrame {
                got: want - 1,
                want
            })
        );
        // An empty body tail reports got = 0, not a bare Truncated.
        assert_eq!(
            deframe_stream(&full[..2]),
            Err(TcpFramingError::TruncatedFrame { got: 0, want })
        );
    }

    #[test]
    fn incremental_reader_handles_arbitrary_chunking() {
        let msgs = sample_messages(4);
        let stream = frame_stream(&msgs).unwrap();
        // Feed one byte at a time — worst-case segmentation.
        let mut reader = StreamReader::new();
        let mut got = Vec::new();
        for &b in &stream {
            reader.feed(&[b]);
            while let Some(m) = reader.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn incremental_reader_partial_message_waits() {
        let msgs = sample_messages(1);
        let stream = frame_stream(&msgs).unwrap();
        let mut reader = StreamReader::new();
        reader.feed(&stream[..stream.len() - 1]);
        assert_eq!(reader.next_message().unwrap(), None);
        reader.feed(&stream[stream.len() - 1..]);
        assert_eq!(reader.next_message().unwrap(), Some(msgs[0].clone()));
    }

    #[test]
    fn corrupt_framed_message_reported() {
        let msgs = sample_messages(1);
        let mut stream = frame_stream(&msgs).unwrap();
        // Zero out the question section to corrupt the message body length.
        let n = stream.len();
        stream.truncate(n - 2);
        stream[0..2].copy_from_slice(&((n - 4) as u16).to_be_bytes());
        assert!(matches!(
            deframe_stream(&stream),
            Err(TcpFramingError::Wire(_)) | Err(TcpFramingError::Truncated)
        ));
    }
}
