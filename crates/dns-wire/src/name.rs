//! Domain names (RFC 1035 §3.1, RFC 4034 §6 canonical form and ordering).

use crate::wire::{WireError, WireReader, WireWriter};
use std::cmp::Ordering;
use std::fmt;

/// Maximum length of a name on the wire, including the root label (RFC 1035).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum length of a single label.
pub const MAX_LABEL_LEN: usize = 63;

/// A fully-qualified domain name.
///
/// Stored as raw label bytes (no trailing root label byte); the root name has
/// zero labels. Comparison and hashing are case-insensitive over ASCII, as
/// DNS requires.
#[derive(Debug, Clone, Default)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name `.`.
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parse from presentation format. Accepts `"."` for the root, with or
    /// without a trailing dot otherwise. Supports `\DDD` escapes.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        if s == "." {
            return Ok(Name::root());
        }
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        let mut labels = Vec::new();
        let mut current = Vec::new();
        let mut bytes = s.bytes().peekable();
        while let Some(b) = bytes.next() {
            match b {
                b'.' => {
                    if current.is_empty() {
                        return Err(NameError::EmptyLabel);
                    }
                    labels.push(std::mem::take(&mut current));
                }
                b'\\' => {
                    // \DDD decimal escape or \X literal.
                    let first = bytes.next().ok_or(NameError::BadEscape)?;
                    if first.is_ascii_digit() {
                        let d2 = bytes.next().ok_or(NameError::BadEscape)?;
                        let d3 = bytes.next().ok_or(NameError::BadEscape)?;
                        if !d2.is_ascii_digit() || !d3.is_ascii_digit() {
                            return Err(NameError::BadEscape);
                        }
                        let v = (first - b'0') as u32 * 100
                            + (d2 - b'0') as u32 * 10
                            + (d3 - b'0') as u32;
                        if v > 255 {
                            return Err(NameError::BadEscape);
                        }
                        current.push(v as u8);
                    } else {
                        current.push(first);
                    }
                }
                other => current.push(other),
            }
            if current.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong);
            }
        }
        if current.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        labels.push(current);
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// Build from raw label byte slices.
    pub fn from_labels<I, L>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if l.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong);
            }
            out.push(l.to_vec());
        }
        let name = Name { labels: out };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// Number of labels (the root has 0).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterate labels, most-significant (leftmost) first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_slice())
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of the uncompressed wire encoding (including the root byte).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// The parent name (strips the leftmost label). The root's parent is the
    /// root itself.
    pub fn parent(&self) -> Name {
        if self.labels.is_empty() {
            return Name::root();
        }
        Name {
            labels: self.labels[1..].to_vec(),
        }
    }

    /// Prepend `label`, producing a child name.
    pub fn child(&self, label: &[u8]) -> Result<Name, NameError> {
        if label.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong);
        }
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_vec());
        labels.extend(self.labels.iter().cloned());
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// True if `self` is `other` or a descendant of `other`.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..]
            .iter()
            .zip(&other.labels)
            .all(|(a, b)| eq_label(a, b))
    }

    /// RFC 4034 §6.2 canonical form: all ASCII letters lowercased.
    pub fn canonical(&self) -> Name {
        Name {
            labels: self
                .labels
                .iter()
                .map(|l| l.iter().map(u8::to_ascii_lowercase).collect())
                .collect(),
        }
    }

    /// Write the uncompressed (canonical if `lowercase`) wire form.
    pub fn write_wire(&self, w: &mut WireWriter, lowercase: bool) {
        for label in &self.labels {
            w.put_u8(label.len() as u8);
            if lowercase {
                for &b in label {
                    w.put_u8(b.to_ascii_lowercase());
                }
            } else {
                w.put_bytes(label);
            }
        }
        w.put_u8(0);
    }

    /// Write with name compression via the writer's offset table.
    pub fn write_wire_compressed(&self, w: &mut WireWriter) {
        w.put_name_compressed(&self.labels);
    }

    /// Read a (possibly compressed) name from the reader.
    pub fn read_wire(r: &mut WireReader) -> Result<Self, WireError> {
        let labels = r.read_name_labels()?;
        Ok(Name { labels })
    }

    /// Uncompressed canonical wire bytes (used for signing and ZONEMD).
    pub fn canonical_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.write_wire(&mut w, true);
        w.into_bytes()
    }

    /// RFC 4034 §6.1 canonical ordering: compare label-by-label from the
    /// *rightmost* label, each label as a case-insensitive byte string.
    pub fn canonical_cmp(&self, other: &Name) -> Ordering {
        let mut a = self.labels.iter().rev();
        let mut b = other.labels.iter().rev();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(la), Some(lb)) => {
                    let ord = cmp_label(la, lb);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
            }
        }
    }
}

fn eq_label(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_ignore_ascii_case(y))
}

fn cmp_label(a: &[u8], b: &[u8]) -> Ordering {
    let la = a.iter().map(u8::to_ascii_lowercase);
    let lb = b.iter().map(u8::to_ascii_lowercase);
    la.cmp(lb)
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(&other.labels)
                .all(|(a, b)| eq_label(a, b))
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for label in &self.labels {
            state.write_usize(label.len());
            for &b in label {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for label in &self.labels {
            for &b in label {
                match b {
                    b'.' | b'\\' => write!(f, "\\{}", b as char)?,
                    0x21..=0x7e => write!(f, "{}", b as char)?,
                    other => write!(f, "\\{:03}", other)?,
                }
            }
            f.write_str(".")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, NameError> {
        Name::parse(s)
    }
}

/// Errors constructing names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (e.g. `a..b`).
    EmptyLabel,
    /// A label exceeded 63 bytes.
    LabelTooLong,
    /// The whole name exceeded 255 wire bytes.
    NameTooLong,
    /// Malformed `\` escape.
    BadEscape,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong => write!(f, "label exceeds 63 bytes"),
            NameError::NameTooLong => write!(f, "name exceeds 255 bytes"),
            NameError::BadEscape => write!(f, "malformed escape sequence"),
        }
    }
}

impl std::error::Error for NameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            ".",
            "com.",
            "example.com.",
            "b.root-servers.net.",
            "hostname.bind.",
        ] {
            let n = Name::parse(s).unwrap();
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn trailing_dot_optional() {
        assert_eq!(
            Name::parse("example.com").unwrap(),
            Name::parse("example.com.").unwrap()
        );
    }

    #[test]
    fn case_insensitive_equality_and_hash() {
        use std::collections::HashSet;
        let a = Name::parse("Example.COM.").unwrap();
        let b = Name::parse("example.com.").unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn root_properties() {
        let root = Name::root();
        assert!(root.is_root());
        assert_eq!(root.label_count(), 0);
        assert_eq!(root.wire_len(), 1);
        assert_eq!(root.to_string(), ".");
        assert_eq!(root.parent(), root);
    }

    #[test]
    fn subdomain_checks() {
        let root = Name::root();
        let net = Name::parse("net.").unwrap();
        let rs = Name::parse("root-servers.net.").unwrap();
        let b = Name::parse("b.root-servers.net.").unwrap();
        assert!(b.is_subdomain_of(&rs));
        assert!(b.is_subdomain_of(&net));
        assert!(b.is_subdomain_of(&root));
        assert!(b.is_subdomain_of(&b));
        assert!(!rs.is_subdomain_of(&b));
        assert!(!Name::parse("com.").unwrap().is_subdomain_of(&net));
    }

    #[test]
    fn canonical_ordering_rfc4034_example() {
        // RFC 4034 §6.1 example order.
        let order = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "Z.a.example.",
            "zABC.a.EXAMPLE.",
            "z.example.",
            "\\001.z.example.",
            "*.z.example.",
            "\\200.z.example.",
        ];
        let names: Vec<Name> = order.iter().map(|s| Name::parse(s).unwrap()).collect();
        for w in names.windows(2) {
            assert_eq!(
                w[0].canonical_cmp(&w[1]),
                Ordering::Less,
                "{} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn label_length_limits() {
        let long = "a".repeat(63);
        assert!(Name::parse(&format!("{long}.com.")).is_ok());
        let too_long = "a".repeat(64);
        assert_eq!(
            Name::parse(&format!("{too_long}.com.")),
            Err(NameError::LabelTooLong)
        );
    }

    #[test]
    fn name_length_limit() {
        // Four 63-byte labels (4 * 64 + 1 = 257 > 255) must fail.
        let l = "a".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}.");
        assert_eq!(Name::parse(&s), Err(NameError::NameTooLong));
        // Three labels plus a short one that fits exactly: 3*64 + 62+1 + 1 = 255.
        let tail = "b".repeat(61);
        let ok = format!("{l}.{l}.{l}.{tail}.");
        assert!(Name::parse(&ok).is_ok());
    }

    #[test]
    fn empty_labels_rejected() {
        assert_eq!(Name::parse("a..b."), Err(NameError::EmptyLabel));
        assert_eq!(Name::parse(""), Err(NameError::EmptyLabel));
        assert_eq!(Name::parse(".."), Err(NameError::EmptyLabel));
    }

    #[test]
    fn escapes_parse_and_render() {
        let n = Name::parse("\\046odd.label.").unwrap();
        assert_eq!(n.labels().next().unwrap(), b".odd");
        assert_eq!(n.to_string(), "\\.odd.label.");
        assert_eq!(Name::parse("bad\\"), Err(NameError::BadEscape));
        assert_eq!(Name::parse("bad\\25"), Err(NameError::BadEscape));
        assert_eq!(Name::parse("bad\\999"), Err(NameError::BadEscape));
    }

    #[test]
    fn child_and_parent() {
        let rs = Name::parse("root-servers.net.").unwrap();
        let b = rs.child(b"b").unwrap();
        assert_eq!(b.to_string(), "b.root-servers.net.");
        assert_eq!(b.parent(), rs);
    }

    #[test]
    fn wire_round_trip_uncompressed() {
        let n = Name::parse("b.Root-Servers.NET.").unwrap();
        let mut w = WireWriter::new();
        n.write_wire(&mut w, false);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = Name::read_wire(&mut r).unwrap();
        assert_eq!(back, n);
        // Original case preserved when not canonicalized.
        assert_eq!(back.to_string(), "b.Root-Servers.NET.");
    }

    #[test]
    fn canonical_lowercases() {
        let n = Name::parse("B.ROOT-SERVERS.NET.").unwrap();
        assert_eq!(n.canonical().to_string(), "b.root-servers.net.");
    }
}
