//! DNS messages: header, question, and the four sections (RFC 1035 §4).

use crate::class::Class;
use crate::name::Name;
use crate::record::Record;
use crate::rrtype::RrType;
use crate::wire::{WireError, WireReader, WireWriter};

/// Message opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    Query,
    Notify,
    Update,
    Other(u8),
}

impl Opcode {
    fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Other(v) => v & 0xf,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v & 0xf {
            0 => Opcode::Query,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Other(other),
        }
    }
}

/// Response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Other(u8),
}

impl Rcode {
    fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0xf,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v & 0xf {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// QR: response.
    pub response: bool,
    /// AA: authoritative answer.
    pub authoritative: bool,
    /// TC: truncated.
    pub truncated: bool,
    /// RD: recursion desired.
    pub recursion_desired: bool,
    /// RA: recursion available.
    pub recursion_available: bool,
    /// AD: authenticated data (DNSSEC).
    pub authentic_data: bool,
    /// CD: checking disabled (DNSSEC).
    pub checking_disabled: bool,
}

/// Message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub id: u16,
    pub opcode: Opcode,
    pub rcode: Rcode,
    pub flags: Flags,
}

impl Default for Header {
    fn default() -> Self {
        Header {
            id: 0,
            opcode: Opcode::Query,
            rcode: Rcode::NoError,
            flags: Flags::default(),
        }
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    pub name: Name,
    pub rr_type: RrType,
    pub class: Class,
}

impl Question {
    /// `name IN qtype`.
    pub fn new(name: Name, rr_type: RrType) -> Self {
        Question {
            name,
            rr_type,
            class: Class::In,
        }
    }

    /// `name CH TXT` (identity queries).
    pub fn chaos_txt(name: Name) -> Self {
        Question {
            name,
            rr_type: RrType::Txt,
            class: Class::Ch,
        }
    }
}

/// A full DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub header: Header,
    pub questions: Vec<Question>,
    pub answers: Vec<Record>,
    pub authorities: Vec<Record>,
    pub additionals: Vec<Record>,
}

impl Message {
    /// A query for a single question with DO bit semantics left to the
    /// caller's OPT record (added in `additionals` if EDNS0 is wanted).
    pub fn query(id: u16, question: Question) -> Self {
        Message {
            header: Header {
                id,
                ..Header::default()
            },
            questions: vec![question],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// An authoritative response to `query` with the given answers.
    pub fn response_to(query: &Message, rcode: Rcode, answers: Vec<Record>) -> Self {
        Message {
            header: Header {
                id: query.header.id,
                opcode: query.header.opcode,
                rcode,
                flags: Flags {
                    response: true,
                    authoritative: true,
                    recursion_desired: query.header.flags.recursion_desired,
                    ..Flags::default()
                },
            },
            questions: query.questions.clone(),
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Encode to wire bytes (with name compression).
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode_into_writer(&mut w);
        w.into_bytes()
    }

    /// Encode without name compression (ablation).
    pub fn to_wire_uncompressed(&self) -> Vec<u8> {
        let mut w = WireWriter::without_compression();
        self.encode_into_writer(&mut w);
        w.into_bytes()
    }

    /// Encode into `out`, reusing its allocation (the buffer is cleared
    /// first). The zero-copy sibling of [`Self::to_wire`] for hot serve
    /// paths that own a scratch buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = WireWriter::with_buffer(std::mem::take(out));
        self.encode_into_writer(&mut w);
        *out = w.into_bytes();
    }

    /// Encode into a caller-provided writer (callers that need the
    /// writer's compression-pointer log, e.g. answer-template builders).
    pub fn encode_into_writer(&self, w: &mut WireWriter) {
        self.encode_view(w, None);
    }

    /// Encode a truncated view into `out`: only the first `answers` /
    /// `authorities` records of those sections, the first `additionals`
    /// records of the additional section plus any OPT record beyond that
    /// prefix (EDNS must survive truncation, RFC 6891), with the TC flag
    /// forced on. Record boundaries are never split. This is how a server
    /// fits a response into a UDP budget without cloning the message.
    pub fn encode_truncated_into(
        &self,
        answers: usize,
        authorities: usize,
        additionals: usize,
        out: &mut Vec<u8>,
    ) {
        let mut w = WireWriter::with_buffer(std::mem::take(out));
        self.encode_view(&mut w, Some((answers, authorities, additionals)));
        *out = w.into_bytes();
    }

    fn encode_view(&self, w: &mut WireWriter, view: Option<(usize, usize, usize)>) {
        let (an, ns, ar, force_tc) = match view {
            Some((a, n, r)) => (
                a.min(self.answers.len()),
                n.min(self.authorities.len()),
                r.min(self.additionals.len()),
                true,
            ),
            None => (
                self.answers.len(),
                self.authorities.len(),
                self.additionals.len(),
                false,
            ),
        };
        // OPT records past the kept prefix still ride along.
        let kept_opts = if force_tc {
            self.additionals[ar..]
                .iter()
                .filter(|r| r.rr_type == RrType::Opt)
                .count()
        } else {
            0
        };
        w.put_u16(self.header.id);
        let f = &self.header.flags;
        let mut hi: u8 = 0;
        if f.response {
            hi |= 0x80;
        }
        hi |= self.header.opcode.to_u8() << 3;
        if f.authoritative {
            hi |= 0x04;
        }
        if f.truncated || force_tc {
            hi |= 0x02;
        }
        if f.recursion_desired {
            hi |= 0x01;
        }
        let mut lo: u8 = self.header.rcode.to_u8();
        if f.recursion_available {
            lo |= 0x80;
        }
        if f.authentic_data {
            lo |= 0x20;
        }
        if f.checking_disabled {
            lo |= 0x10;
        }
        w.put_u8(hi);
        w.put_u8(lo);
        w.put_u16(self.questions.len() as u16);
        w.put_u16(an as u16);
        w.put_u16(ns as u16);
        w.put_u16((ar + kept_opts) as u16);
        for q in &self.questions {
            q.name.write_wire_compressed(w);
            w.put_u16(q.rr_type.to_u16());
            w.put_u16(q.class.to_u16());
        }
        for rec in self.answers[..an]
            .iter()
            .chain(&self.authorities[..ns])
            .chain(&self.additionals[..ar])
        {
            rec.write_wire(w);
        }
        if kept_opts > 0 {
            for rec in self.additionals[ar..]
                .iter()
                .filter(|r| r.rr_type == RrType::Opt)
            {
                rec.write_wire(w);
            }
        }
    }

    /// Decode from wire bytes.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let id = r.read_u16()?;
        let hi = r.read_u8()?;
        let lo = r.read_u8()?;
        let header = Header {
            id,
            opcode: Opcode::from_u8(hi >> 3),
            rcode: Rcode::from_u8(lo),
            flags: Flags {
                response: hi & 0x80 != 0,
                authoritative: hi & 0x04 != 0,
                truncated: hi & 0x02 != 0,
                recursion_desired: hi & 0x01 != 0,
                recursion_available: lo & 0x80 != 0,
                authentic_data: lo & 0x20 != 0,
                checking_disabled: lo & 0x10 != 0,
            },
        };
        let qd = r.read_u16()? as usize;
        let an = r.read_u16()? as usize;
        let ns = r.read_u16()? as usize;
        let ar = r.read_u16()? as usize;
        // Each question needs ≥5 bytes, each record ≥11: cheap sanity check
        // before allocating.
        if qd * 5 + (an + ns + ar) * 11 > r.remaining() {
            return Err(WireError::BadCount);
        }
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let name = Name::read_wire(&mut r)?;
            let rr_type = RrType::from_u16(r.read_u16()?);
            let class = Class::from_u16(r.read_u16()?);
            questions.push(Question {
                name,
                rr_type,
                class,
            });
        }
        let read_section = |n: usize, r: &mut WireReader| -> Result<Vec<Record>, WireError> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(Record::read_wire(r)?);
            }
            Ok(out)
        };
        let answers = read_section(an, &mut r)?;
        let authorities = read_section(ns, &mut r)?;
        let additionals = read_section(ar, &mut r)?;
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::Rdata;

    fn sample_query() -> Message {
        Message::query(
            0x1234,
            Question::new(Name::parse("b.root-servers.net.").unwrap(), RrType::Aaaa),
        )
    }

    #[test]
    fn query_round_trip() {
        let q = sample_query();
        let bytes = q.to_wire();
        assert_eq!(Message::from_wire(&bytes).unwrap(), q);
    }

    #[test]
    fn response_round_trip_with_all_sections() {
        let q = sample_query();
        let mut resp = Message::response_to(
            &q,
            Rcode::NoError,
            vec![Record::new(
                Name::parse("b.root-servers.net.").unwrap(),
                3600000,
                Rdata::Aaaa("2801:1b8:10::b".parse().unwrap()),
            )],
        );
        resp.authorities.push(Record::new(
            Name::parse("root-servers.net.").unwrap(),
            3600000,
            Rdata::Ns(Name::parse("a.root-servers.net.").unwrap()),
        ));
        resp.additionals.push(Record::new(
            Name::parse("a.root-servers.net.").unwrap(),
            3600000,
            Rdata::A("198.41.0.4".parse().unwrap()),
        ));
        let bytes = resp.to_wire();
        let back = Message::from_wire(&bytes).unwrap();
        assert_eq!(back, resp);
        assert!(back.header.flags.response);
        assert!(back.header.flags.authoritative);
    }

    #[test]
    fn compression_shrinks_message() {
        // Answers sharing the owner suffix compress; NS RDATA names are
        // deliberately written uncompressed (like modern servers do for
        // DNSSEC-signed data), so compression savings come from owners.
        let q = sample_query();
        let mut resp = Message::response_to(&q, Rcode::NoError, Vec::new());
        for letter in ["a", "b", "c", "d", "e"] {
            resp.authorities.push(Record::new(
                Name::parse(&format!("{letter}.root-servers.net.")).unwrap(),
                518400,
                Rdata::A("198.41.0.4".parse().unwrap()),
            ));
        }
        let compressed = resp.to_wire();
        let plain = resp.to_wire_uncompressed();
        assert!(compressed.len() < plain.len());
        // Both decode identically.
        assert_eq!(
            Message::from_wire(&compressed).unwrap(),
            Message::from_wire(&plain).unwrap()
        );
    }

    #[test]
    fn header_flags_round_trip() {
        let mut m = sample_query();
        m.header.flags = Flags {
            response: true,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            authentic_data: true,
            checking_disabled: true,
        };
        m.header.rcode = Rcode::Refused;
        m.header.opcode = Opcode::Notify;
        let back = Message::from_wire(&m.to_wire()).unwrap();
        assert_eq!(back.header, m.header);
    }

    #[test]
    fn lying_counts_rejected() {
        let q = sample_query();
        let mut bytes = q.to_wire();
        // Claim 1000 answers.
        bytes[6] = 0x03;
        bytes[7] = 0xe8;
        assert!(matches!(
            Message::from_wire(&bytes),
            Err(WireError::BadCount) | Err(WireError::Truncated)
        ));
    }

    #[test]
    fn empty_message_rejected() {
        assert_eq!(Message::from_wire(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn chaos_question_round_trip() {
        let q = Message::query(
            7,
            Question::chaos_txt(Name::parse("hostname.bind.").unwrap()),
        );
        let back = Message::from_wire(&q.to_wire()).unwrap();
        assert_eq!(back.questions[0].class, Class::Ch);
        assert_eq!(back.questions[0].rr_type, RrType::Txt);
    }

    #[test]
    fn trailing_garbage_tolerated() {
        // DNS parsers conventionally ignore trailing bytes (UDP padding).
        let q = sample_query();
        let mut bytes = q.to_wire();
        bytes.extend_from_slice(&[0u8; 4]);
        assert_eq!(Message::from_wire(&bytes).unwrap(), q);
    }
}
