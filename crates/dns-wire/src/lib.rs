//! DNS wire-format codec for the `roots-go-deep` reproduction.
//!
//! Implements the subset of the DNS needed to model root server traffic
//! faithfully:
//!
//! * [`name`] — domain names with RFC 1035 length limits, case-insensitive
//!   equality, RFC 4034 canonical ordering, and wire encoding with
//!   compression-pointer support;
//! * [`message`] — message header, question and RR sections, encode/decode;
//! * [`record`] / [`rdata`] — the record types seen in this study: `A`,
//!   `AAAA`, `NS`, `CNAME`, `SOA`, `TXT`, `MX`, `DS`, `DNSKEY`, `RRSIG`,
//!   `NSEC`, `ZONEMD`, `OPT` (EDNS0), plus an opaque fallback;
//! * [`wire`] — the low-level reader/writer, bounds-checked and
//!   pointer-loop-safe;
//! * `CLASS CH TXT` identity queries (`hostname.bind`, `id.server`, …) are
//!   plain TXT records under class `CH` — no special casing needed beyond
//!   [`class::Class::Ch`].
//!
//! Presentation (zone-file) formatting and parsing for records lives in
//! [`presentation`]; full master files are handled by the `dns-zone` crate.

pub mod class;
pub mod edns;
pub mod message;
pub mod name;
pub mod presentation;
pub mod rdata;
pub mod record;
pub mod rrtype;
pub mod tcp;
pub mod wire;

pub use class::Class;
pub use message::{Flags, Header, Message, Opcode, Question, Rcode};
pub use name::Name;
pub use rdata::Rdata;
pub use record::Record;
pub use rrtype::RrType;
pub use wire::{WireError, WireReader, WireWriter, MAX_POINTER_JUMPS};
