//! Property-based tests for the wire codec.

use dns_wire::rdata::{Rdata, Soa};
use dns_wire::wire::WireError;
use dns_wire::{Message, Name, Question, Record, RrType, WireReader, WireWriter};
use proptest::prelude::*;

/// Strategy: a DNS label (1-20 bytes of letters/digits/hyphen).
fn label() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            (b'a'..=b'z').prop_map(|b| b),
            (b'0'..=b'9').prop_map(|b| b),
            Just(b'-'),
        ],
        1..20,
    )
}

/// Strategy: a name of 0-5 labels.
fn name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label(), 0..5)
        .prop_filter_map("valid name", |labels| Name::from_labels(labels).ok())
}

/// Strategy: simple RDATA variants.
fn rdata() -> impl Strategy<Value = Rdata> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| Rdata::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| Rdata::Aaaa(o.into())),
        name().prop_map(Rdata::Ns),
        name().prop_map(Rdata::Cname),
        (name(), name(), any::<u32>()).prop_map(|(m, r, serial)| {
            Rdata::Soa(Soa {
                mname: m,
                rname: r,
                serial,
                refresh: 1800,
                retry: 900,
                expire: 604800,
                minimum: 86400,
            })
        }),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..4)
            .prop_map(Rdata::Txt),
    ]
}

proptest! {
    #[test]
    fn name_wire_round_trip(n in name()) {
        let mut w = WireWriter::new();
        n.write_wire(&mut w, false);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(Name::read_wire(&mut r).unwrap(), n);
    }

    #[test]
    fn name_display_parse_round_trip(n in name()) {
        prop_assert_eq!(Name::parse(&n.to_string()).unwrap(), n);
    }

    #[test]
    fn name_compression_decodes_identically(names in proptest::collection::vec(name(), 1..8)) {
        let mut compressed = WireWriter::new();
        let mut plain = WireWriter::without_compression();
        for n in &names {
            n.write_wire_compressed(&mut compressed);
            n.write_wire_compressed(&mut plain);
        }
        let cb = compressed.into_bytes();
        let pb = plain.into_bytes();
        prop_assert!(cb.len() <= pb.len());
        let mut cr = WireReader::new(&cb);
        let mut pr = WireReader::new(&pb);
        for n in &names {
            prop_assert_eq!(&Name::read_wire(&mut cr).unwrap(), n);
            prop_assert_eq!(&Name::read_wire(&mut pr).unwrap(), n);
        }
    }

    #[test]
    fn canonical_cmp_is_total_order(a in name(), b in name(), c in name()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.canonical_cmp(&b), b.canonical_cmp(&a).reverse());
        // Transitivity (for the <= relation).
        if a.canonical_cmp(&b) != Ordering::Greater && b.canonical_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.canonical_cmp(&c), Ordering::Greater);
        }
        // Reflexivity via equality.
        prop_assert_eq!(a.canonical_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn record_wire_round_trip(n in name(), ttl in any::<u32>(), rd in rdata()) {
        let rec = Record::new(n, ttl, rd);
        let mut w = WireWriter::new();
        rec.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        prop_assert_eq!(Record::read_wire(&mut r).unwrap(), rec);
    }

    #[test]
    fn message_wire_round_trip(
        id in any::<u16>(),
        qname in name(),
        answers in proptest::collection::vec((name(), any::<u32>(), rdata()), 0..6),
    ) {
        let mut msg = Message::query(id, Question::new(qname, RrType::A));
        for (n, ttl, rd) in answers {
            msg.answers.push(Record::new(n, ttl, rd));
        }
        msg.header.flags.response = true;
        let decoded = Message::from_wire(&msg.to_wire()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must return Ok or Err, never panic or loop.
        let _ = Message::from_wire(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_message(
        qname in name(),
        idx in 0usize..64,
        flip in 1u8..=255,
    ) {
        let msg = Message::query(7, Question::new(qname, RrType::Aaaa));
        let mut bytes = msg.to_wire();
        let i = idx % bytes.len();
        bytes[i] ^= flip;
        let _ = Message::from_wire(&bytes);
    }

    #[test]
    fn presentation_round_trip(n in name(), ttl in any::<u32>(), rd in rdata()) {
        let rec = Record::new(n, ttl, rd);
        let line = dns_wire::presentation::record_to_line(&rec);
        let back = dns_wire::presentation::record_from_line(&line).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn malformed_pointer_chains_never_hang_or_panic(
        // A buffer of random compression pointers with arbitrary 14-bit
        // targets, optionally salted with label bytes, read from a random
        // start offset. Chains may loop, point forward, or run off the end;
        // the reader must always terminate with a typed error or a bounded
        // name, never panic or spin.
        pointers in proptest::collection::vec(0u16..0x4000, 1..64),
        fill in proptest::collection::vec(any::<u8>(), 0..32),
        start_frac in 0usize..1000,
    ) {
        let mut bytes = fill;
        for target in &pointers {
            bytes.push(0xc0 | (target >> 8) as u8);
            bytes.push(*target as u8);
        }
        let start = start_frac * bytes.len() / 1000;
        let mut r = WireReader::new(&bytes);
        let mut skipped = WireReader::new(&bytes);
        let _ = skipped.read_bytes(start);
        match skipped.read_name_labels() {
            Ok(labels) => {
                // A successful decode obeys the RFC 1035 name bound.
                let wire_len: usize =
                    1 + labels.iter().map(|l| l.len() + 1).sum::<usize>();
                prop_assert!(wire_len <= 255);
            }
            Err(e) => prop_assert!(matches!(
                e,
                WireError::Truncated
                    | WireError::ForwardPointer
                    | WireError::PointerLoop
                    | WireError::BadLabelType
                    | WireError::NameTooLong
            )),
        }
        let _ = r.read_name_labels();
    }

    #[test]
    fn pure_pointer_chain_from_end_errors_with_typed_error(
        targets in proptest::collection::vec(0u16..0x1000, 2..40),
    ) {
        // Consecutive pointers with arbitrary targets, read from the last
        // one: the chain can only end in a typed pointer/truncation error
        // or a label-type error — never a panic or hang.
        let mut bytes = Vec::new();
        for t in &targets {
            bytes.push(0xc0 | (t >> 8) as u8);
            bytes.push(*t as u8);
        }
        let start = bytes.len() - 2;
        let mut r = WireReader::new(&bytes);
        let _ = r.read_bytes(start);
        let _ = r.read_name_labels();
    }
}
