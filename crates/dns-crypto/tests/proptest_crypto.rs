//! Property-based tests for the crypto primitives.

use dns_crypto::{base32, base64, hex, sha2::Sha256, sha2::Sha384, validity, SimKeyPair};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096), split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha384_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..4096), splits in proptest::collection::vec(0usize..4096, 0..5)) {
        let mut h = Sha384::new();
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s.min(data.len())).collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        for w in cuts.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), Sha384::digest(&data));
    }

    #[test]
    fn sha256_distinct_inputs_distinct_digests(a in proptest::collection::vec(any::<u8>(), 0..256), b in proptest::collection::vec(any::<u8>(), 0..256)) {
        if a != b {
            prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
        }
    }

    #[test]
    fn base64_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    #[test]
    fn base64_length_formula(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(base64::encode(&data).len(), data.len().div_ceil(3) * 4);
    }

    #[test]
    fn base32_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(base32::decode(&base32::encode(&data)).unwrap(), data);
    }

    #[test]
    fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(hex::from_hex(&hex::to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn simsig_verifies_own_and_rejects_tampered(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 1..512), flip_byte in 0usize..512, flip_bit in 0u8..8) {
        let kp = SimKeyPair::from_seed(seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.verify(&msg, &sig));
        let mut tampered = msg.clone();
        let i = flip_byte % tampered.len();
        tampered[i] ^= 1 << flip_bit;
        if tampered != msg {
            prop_assert!(!kp.verify(&tampered, &sig));
        }
    }

    #[test]
    fn validity_window_trichotomy(inception in any::<u32>(), len in 0u32..0x7fff_0000, now in any::<u32>()) {
        let expiration = inception.wrapping_add(len);
        let outcome = validity::check_window(inception, expiration, now);
        // A non-inverted window always yields exactly one classification.
        prop_assert!(outcome.is_ok());
    }

    #[test]
    fn timestamp_round_trip(t in 0u32..4_102_444_800u32) {
        // Up to year 2100.
        let s = validity::timestamp_to_ymd(t);
        prop_assert_eq!(validity::timestamp_from_ymd(&s), Some(t));
    }
}
