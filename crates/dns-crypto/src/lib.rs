//! Cryptographic primitives for the `roots-go-deep` reproduction.
//!
//! The approved offline dependency set contains no cryptography crate, so the
//! SHA-2 family (FIPS 180-4) is implemented here from scratch. It is used for
//! `ZONEMD` digests (RFC 8976 uses SHA-384 for the root zone) and for the
//! simulated DNSSEC signature scheme [`simsig`].
//!
//! # Substitution note (see DESIGN.md §1)
//!
//! Real root-zone `RRSIG`s use RSA/SHA-256 (algorithm 8). Implementing RSA is
//! out of scope for this reproduction; instead [`simsig`] provides `SIMSIG`, a
//! deterministic keyed-digest scheme with the same API surface
//! (sign/verify, key tags, inception/expiration semantics). Every behaviour
//! the paper measures — expired signatures, bogus signatures after bitflips,
//! not-yet-incepted signatures under VP clock skew — is preserved, because
//! those depend only on validity-window arithmetic and on verification
//! failing when any signed byte changes, which a keyed digest guarantees.

pub mod base32;
pub mod base64;
pub mod hex;
pub mod keytag;
pub mod sha2;
pub mod simsig;
pub mod validity;

pub use keytag::key_tag;
pub use sha2::{Sha256, Sha384, Sha512};
pub use simsig::{SimKeyPair, SIMSIG_ALGORITHM};
pub use validity::{SignatureValidity, ValidityError};

/// Digest algorithm identifiers as used by `ZONEMD` (RFC 8976 §2.2.3) and in
/// DS records (RFC 4034 / IANA registry subset relevant to this study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DigestAlg {
    /// SHA-256 (32-byte digest).
    Sha256,
    /// SHA-384 (48-byte digest) — the scheme deployed for the root zone.
    Sha384,
    /// SHA-512 (64-byte digest).
    Sha512,
    /// A private/experimental algorithm, as used in the initial non-validating
    /// root-zone `ZONEMD` record published 2023-09-13 (scheme/alg outside the
    /// IANA-assigned verifiable range).
    Private(u8),
}

impl DigestAlg {
    /// Length of the produced digest in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            DigestAlg::Sha256 => 32,
            DigestAlg::Sha384 => 48,
            DigestAlg::Sha512 => 64,
            // The private placeholder digest the root used was 48 bytes.
            DigestAlg::Private(_) => 48,
        }
    }

    /// The IANA `ZONEMD` hash-algorithm number (RFC 8976 §5.3).
    ///
    /// SHA-384 is 1, SHA-512 is 2. SHA-256 is not a registered ZONEMD
    /// algorithm; we claim 254 from the private-use range for it so the
    /// tooling can still round-trip zones digested with it.
    pub fn zonemd_number(self) -> u8 {
        match self {
            DigestAlg::Sha384 => 1,
            DigestAlg::Sha512 => 2,
            DigestAlg::Sha256 => 254,
            DigestAlg::Private(n) => n,
        }
    }

    /// Inverse of [`DigestAlg::zonemd_number`].
    pub fn from_zonemd_number(n: u8) -> Self {
        match n {
            1 => DigestAlg::Sha384,
            2 => DigestAlg::Sha512,
            254 => DigestAlg::Sha256,
            other => DigestAlg::Private(other),
        }
    }

    /// Whether a validator is expected to be able to verify this algorithm.
    ///
    /// Private-use algorithms are treated as unverifiable, mirroring the
    /// root-zone roll-out phase between 2023-09-13 and 2023-12-06.
    pub fn is_verifiable(self) -> bool {
        !matches!(self, DigestAlg::Private(_))
    }

    /// Compute the digest of `data` with this algorithm.
    ///
    /// For [`DigestAlg::Private`], a SHA-384 digest keyed by the algorithm
    /// number stands in for the undisclosed private scheme: it has the right
    /// length but intentionally does not match any public algorithm.
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        match self {
            DigestAlg::Sha256 => Sha256::digest(data).to_vec(),
            DigestAlg::Sha384 => Sha384::digest(data).to_vec(),
            DigestAlg::Sha512 => Sha512::digest(data).to_vec(),
            DigestAlg::Private(n) => {
                let mut h = Sha384::new();
                // 0x50 ('P') is a domain-separation byte so private digests
                // can never collide with plain SHA-384 of the same data.
                h.update(&[0x50, n]);
                h.update(data);
                h.finalize().to_vec()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_lengths_match_algorithms() {
        assert_eq!(DigestAlg::Sha256.digest(b"x").len(), 32);
        assert_eq!(DigestAlg::Sha384.digest(b"x").len(), 48);
        assert_eq!(DigestAlg::Sha512.digest(b"x").len(), 64);
        assert_eq!(DigestAlg::Private(240).digest(b"x").len(), 48);
    }

    #[test]
    fn zonemd_numbers_round_trip() {
        for alg in [
            DigestAlg::Sha256,
            DigestAlg::Sha384,
            DigestAlg::Sha512,
            DigestAlg::Private(200),
        ] {
            assert_eq!(DigestAlg::from_zonemd_number(alg.zonemd_number()), alg);
        }
    }

    #[test]
    fn private_algorithm_differs_from_sha384() {
        let data = b"the root zone";
        assert_ne!(
            DigestAlg::Private(240).digest(data),
            DigestAlg::Sha384.digest(data)
        );
    }

    #[test]
    fn private_algorithm_is_not_verifiable() {
        assert!(!DigestAlg::Private(240).is_verifiable());
        assert!(DigestAlg::Sha384.is_verifiable());
    }
}
