//! Hexadecimal encoding/decoding used for digests in presentation format
//! (e.g. the `ZONEMD` RDATA digest field and DS digests).

/// Encode `data` as lowercase hex.
pub fn to_hex(data: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Encode `data` as uppercase hex (DNS presentation convention for digests).
pub fn to_hex_upper(data: &[u8]) -> String {
    to_hex(data).to_ascii_uppercase()
}

/// Decode a hex string (case-insensitive, whitespace tolerated between byte
/// pairs as produced by some zone-file pretty printers).
pub fn from_hex(s: &str) -> Result<Vec<u8>, HexError> {
    let mut out = Vec::with_capacity(s.len() / 2);
    let mut nibble: Option<u8> = None;
    for (pos, c) in s.chars().enumerate() {
        if c.is_ascii_whitespace() {
            if nibble.is_some() {
                return Err(HexError::OddLength);
            }
            continue;
        }
        let v = c.to_digit(16).ok_or(HexError::BadChar { pos, ch: c })? as u8;
        nibble = match nibble {
            None => Some(v),
            Some(hi) => {
                out.push((hi << 4) | v);
                None
            }
        };
    }
    if nibble.is_some() {
        return Err(HexError::OddLength);
    }
    Ok(out)
}

/// Errors from [`from_hex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// A character that is not a hex digit (position and character).
    BadChar { pos: usize, ch: char },
    /// The string contains an odd number of hex digits.
    OddLength,
}

impl std::fmt::Display for HexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HexError::BadChar { pos, ch } => write!(f, "invalid hex char {ch:?} at {pos}"),
            HexError::OddLength => write!(f, "odd number of hex digits"),
        }
    }
}

impl std::error::Error for HexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = [0x00, 0x01, 0xab, 0xff, 0x7f];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert_eq!(from_hex(&to_hex_upper(&data)).unwrap(), data);
    }

    #[test]
    fn whitespace_between_pairs_ok() {
        assert_eq!(from_hex("ab cd\nef").unwrap(), [0xab, 0xcd, 0xef]);
    }

    #[test]
    fn whitespace_inside_pair_rejected() {
        assert_eq!(from_hex("a b"), Err(HexError::OddLength));
    }

    #[test]
    fn bad_char_reports_position() {
        assert_eq!(from_hex("aX"), Err(HexError::BadChar { pos: 1, ch: 'X' }));
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(from_hex("abc"), Err(HexError::OddLength));
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert_eq!(to_hex(&[]), "");
    }
}
