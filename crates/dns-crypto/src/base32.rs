//! Base32hex without padding (RFC 4648 §7), as used by NSEC3 owner names.
//!
//! The root zone itself uses NSEC (not NSEC3), but downstream zones in the
//! synthetic hierarchy and the zone tooling support NSEC3-style names, so the
//! codec lives here alongside the other encodings.

const ALPHABET: &[u8; 32] = b"0123456789ABCDEFGHIJKLMNOPQRSTUV";

/// Encode `data` as unpadded base32hex (uppercase, the DNS convention).
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    let mut acc: u64 = 0;
    let mut bits = 0u8;
    for &b in data {
        acc = (acc << 8) | b as u64;
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(ALPHABET[((acc >> bits) & 0x1f) as usize] as char);
        }
    }
    if bits > 0 {
        out.push(ALPHABET[((acc << (5 - bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decode unpadded base32hex (case-insensitive).
pub fn decode(s: &str) -> Result<Vec<u8>, Base32Error> {
    let mut out = Vec::with_capacity(s.len() * 5 / 8);
    let mut acc: u64 = 0;
    let mut bits = 0u8;
    for (pos, c) in s.chars().enumerate() {
        let v = quintet(c).ok_or(Base32Error::BadChar { pos, ch: c })?;
        acc = (acc << 5) | v as u64;
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    if acc & ((1 << bits) - 1) != 0 {
        return Err(Base32Error::TrailingBits);
    }
    Ok(out)
}

fn quintet(c: char) -> Option<u8> {
    match c {
        '0'..='9' => Some(c as u8 - b'0'),
        'A'..='V' => Some(c as u8 - b'A' + 10),
        'a'..='v' => Some(c as u8 - b'a' + 10),
        _ => None,
    }
}

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base32Error {
    /// Invalid character (position and character).
    BadChar { pos: usize, ch: char },
    /// Non-zero bits left over in the final quantum.
    TrailingBits,
}

impl std::fmt::Display for Base32Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base32Error::BadChar { pos, ch } => write!(f, "invalid base32hex char {ch:?} at {pos}"),
            Base32Error::TrailingBits => write!(f, "non-zero trailing bits"),
        }
    }
}

impl std::error::Error for Base32Error {}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 base32hex vectors, with padding stripped.
    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "CO");
        assert_eq!(encode(b"fo"), "CPNG");
        assert_eq!(encode(b"foo"), "CPNMU");
        assert_eq!(encode(b"foob"), "CPNMUOG");
        assert_eq!(encode(b"fooba"), "CPNMUOJ1");
        assert_eq!(encode(b"foobar"), "CPNMUOJ1E8");
    }

    #[test]
    fn decode_case_insensitive() {
        assert_eq!(decode("cpnmuoj1e8").unwrap(), b"foobar");
    }

    #[test]
    fn round_trip_all_lengths() {
        for len in 0..40usize {
            let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len={len}");
        }
    }

    #[test]
    fn bad_char_rejected() {
        assert!(matches!(decode("CW"), Err(Base32Error::BadChar { .. })));
    }
}
