//! RRSIG validity-window arithmetic (RFC 4034 §3.1.5).
//!
//! Inception and expiration are 32-bit counts of seconds since the Unix epoch
//! compared in *serial number arithmetic* (RFC 1982), so windows remain
//! correct across the 2038/2106 wraparound. The paper's Table 2 error classes
//! "Sig. not incepted" and "Signature expired" come straight out of this
//! check, triggered by VP clock skew and stale zone files respectively.

/// Outcome of checking a signature validity window at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureValidity {
    /// `inception <= now <= expiration`.
    Valid,
    /// The validation clock is before the inception time.
    NotYetIncepted,
    /// The validation clock is after the expiration time.
    Expired,
}

/// Errors for nonsensical windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidityError {
    /// Expiration precedes inception (in serial-number order).
    InvertedWindow,
}

impl std::fmt::Display for ValidityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidityError::InvertedWindow => write!(f, "expiration precedes inception"),
        }
    }
}

impl std::error::Error for ValidityError {}

/// Serial-number "a < b" over u32 (RFC 1982 with SERIAL_BITS = 32).
#[inline]
fn serial_lt(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < 0x8000_0000
}

/// Check a validity window at `now` (seconds since Unix epoch, truncated to
/// 32 bits exactly as the wire format does).
pub fn check_window(
    inception: u32,
    expiration: u32,
    now: u32,
) -> Result<SignatureValidity, ValidityError> {
    if serial_lt(expiration, inception) {
        return Err(ValidityError::InvertedWindow);
    }
    if serial_lt(now, inception) {
        Ok(SignatureValidity::NotYetIncepted)
    } else if serial_lt(expiration, now) {
        Ok(SignatureValidity::Expired)
    } else {
        Ok(SignatureValidity::Valid)
    }
}

/// Convert a `YYYYMMDDHHmmSS` timestamp (RRSIG presentation form) to seconds
/// since the Unix epoch. Only dates from 1970 to 2105 are meaningful.
pub fn timestamp_from_ymd(s: &str) -> Option<u32> {
    if s.len() != 14 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let num = |r: std::ops::Range<usize>| s[r].parse::<u64>().ok();
    let (y, mo, d) = (num(0..4)?, num(4..6)?, num(6..8)?);
    let (h, mi, sec) = (num(8..10)?, num(10..12)?, num(12..14)?);
    if !(1970..=2105).contains(&y)
        || !(1..=12).contains(&mo)
        || d < 1
        || h > 23
        || mi > 59
        || sec > 59
    {
        return None;
    }
    if d > days_in_month(y, mo) {
        return None;
    }
    let days = days_from_civil(y as i64, mo as i64, d as i64);
    Some((days as u64 * 86400 + h * 3600 + mi * 60 + sec) as u32)
}

/// Render seconds-since-epoch as `YYYYMMDDHHmmSS`.
pub fn timestamp_to_ymd(t: u32) -> String {
    let days = (t / 86400) as i64;
    let secs = t % 86400;
    let (y, m, d) = civil_from_days(days);
    format!(
        "{:04}{:02}{:02}{:02}{:02}{:02}",
        y,
        m,
        d,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

fn days_in_month(y: u64, m: u64) -> u64 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y.is_multiple_of(4) && !y.is_multiple_of(100)) || y.is_multiple_of(400) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days from 1970-01-01 to y-m-d (Howard Hinnant's civil-days algorithm).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_states() {
        assert_eq!(check_window(100, 200, 150), Ok(SignatureValidity::Valid));
        assert_eq!(check_window(100, 200, 100), Ok(SignatureValidity::Valid));
        assert_eq!(check_window(100, 200, 200), Ok(SignatureValidity::Valid));
        assert_eq!(
            check_window(100, 200, 99),
            Ok(SignatureValidity::NotYetIncepted)
        );
        assert_eq!(check_window(100, 200, 201), Ok(SignatureValidity::Expired));
    }

    #[test]
    fn inverted_window_rejected() {
        assert_eq!(
            check_window(200, 100, 150),
            Err(ValidityError::InvertedWindow)
        );
    }

    #[test]
    fn serial_arithmetic_across_wrap() {
        // Window straddling the u32 wraparound.
        let inception = u32::MAX - 100;
        let expiration = 100u32;
        assert_eq!(
            check_window(inception, expiration, u32::MAX - 50),
            Ok(SignatureValidity::Valid)
        );
        assert_eq!(
            check_window(inception, expiration, 50),
            Ok(SignatureValidity::Valid)
        );
        assert_eq!(
            check_window(inception, expiration, 200),
            Ok(SignatureValidity::Expired)
        );
    }

    #[test]
    fn ymd_round_trips() {
        for ts in [
            "20231201050000",
            "20231118040000",
            "19700101000000",
            "20240229120000",
        ] {
            let t = timestamp_from_ymd(ts).unwrap();
            assert_eq!(timestamp_to_ymd(t), ts);
        }
    }

    #[test]
    fn ymd_known_value() {
        // 2023-07-03T00:00:00Z (the paper's measurement start).
        assert_eq!(timestamp_from_ymd("20230703000000"), Some(1_688_342_400));
    }

    #[test]
    fn ymd_rejects_garbage() {
        assert_eq!(timestamp_from_ymd("2023-12-01T05:00"), None);
        assert_eq!(timestamp_from_ymd("20231301050000"), None); // month 13
        assert_eq!(timestamp_from_ymd("20230230050000"), None); // Feb 30
        assert_eq!(timestamp_from_ymd("20231201056000"), None); // minute 60
        assert_eq!(timestamp_from_ymd(""), None);
    }

    #[test]
    fn leap_year_handling() {
        assert!(timestamp_from_ymd("20240229000000").is_some());
        assert_eq!(timestamp_from_ymd("20230229000000"), None);
        assert!(timestamp_from_ymd("20000229000000").is_some()); // 400-year rule
        assert_eq!(timestamp_from_ymd("21000229000000"), None); // 100-year rule
    }
}
