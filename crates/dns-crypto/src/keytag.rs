//! DNSSEC key tag computation (RFC 4034 Appendix B).
//!
//! The key tag is a 16-bit checksum over the `DNSKEY` RDATA that lets a
//! validator pick candidate keys for an `RRSIG` without trial verification.

/// Compute the key tag over DNSKEY RDATA in wire format
/// (flags | protocol | algorithm | public key).
///
/// This is the non-algorithm-1 computation from RFC 4034 Appendix B: a ones'
/// accumulation of big-endian 16-bit words, folding the carry in at the end.
pub fn key_tag(rdata: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    for (i, &b) in rdata.iter().enumerate() {
        if i & 1 == 0 {
            acc += (b as u32) << 8;
        } else {
            acc += b as u32;
        }
    }
    acc += (acc >> 16) & 0xffff;
    (acc & 0xffff) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_inputs() {
        assert_eq!(key_tag(&[]), 0);
        assert_eq!(key_tag(&[0x01, 0x02]), 0x0102);
        assert_eq!(key_tag(&[0x01]), 0x0100);
    }

    #[test]
    fn carry_folds() {
        // Two words that sum past 16 bits.
        let rdata = [0xff, 0xff, 0x00, 0x02];
        // 0xffff + 0x0002 = 0x10001 -> fold carry -> 0x0002.
        assert_eq!(key_tag(&rdata), 0x0002);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(key_tag(&[1, 2, 3, 4]), key_tag(&[4, 3, 2, 1]));
    }
}
