//! `SIMSIG`: the deterministic keyed-digest signature scheme standing in for
//! RSA/SHA-256 in this reproduction.
//!
//! # Why a stand-in is sound here (DESIGN.md §1)
//!
//! The paper's RQ3 analysis validates `RRSIG` records over transferred zones.
//! The behaviours it observes — signatures that are expired, not yet incepted,
//! or bogus after a bitflip — depend on two properties of the signature
//! scheme only:
//!
//! 1. verification fails if *any* signed byte (or the signature itself)
//!    changes, and
//! 2. the validity window (inception/expiration) is checked against the
//!    validation-time clock.
//!
//! `SIMSIG` provides both: the "signature" is `SHA-384(secret || message)`,
//! and validity-window arithmetic is implemented in [`crate::validity`]
//! exactly as RFC 4034 §3.1.5 specifies (serial-number order, i.e. modular
//! comparison). What `SIMSIG` does *not* provide is public verifiability —
//! the verifier holds the same secret as the signer. Inside a closed
//! simulation that distinction is immaterial.

use crate::sha2::{Sha256, Sha384};

/// The private algorithm number used for `SIMSIG` in DNSKEY/RRSIG records.
///
/// 253 is `PRIVATEDNS` in the IANA DNSSEC algorithm registry — the correct
/// number for a private scheme like this one.
pub const SIMSIG_ALGORITHM: u8 = 253;

/// Length of a `SIMSIG` signature in bytes (one SHA-384 digest).
pub const SIGNATURE_LEN: usize = 48;

/// A `SIMSIG` key pair.
///
/// `public` goes into the `DNSKEY` RDATA; `secret` never leaves the signer —
/// except that in this closed simulation the verifier derives it from the
/// public part, which is exactly the compromise documented above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimKeyPair {
    /// 32-byte public key material (placed in DNSKEY RDATA).
    pub public: [u8; 32],
    /// 32-byte signing secret.
    secret: [u8; 32],
}

impl SimKeyPair {
    /// Derive a key pair deterministically from a seed. The same seed always
    /// yields the same pair, which keeps whole-simulation runs reproducible.
    pub fn from_seed(seed: u64) -> Self {
        let mut base = Sha256::new();
        base.update(b"simsig-key-v1");
        base.update(&seed.to_be_bytes());
        let secret = base.finalize();
        let mut pubh = Sha256::new();
        pubh.update(b"simsig-pub-v1");
        pubh.update(&secret);
        SimKeyPair {
            public: pubh.finalize(),
            secret,
        }
    }

    /// Reconstruct the pair from public key material.
    ///
    /// Possible only because `SIMSIG` is symmetric under the hood: the
    /// "secret" is re-derived by hashing the public part. A real validator
    /// would of course use the public key directly.
    pub fn from_public(public: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"simsig-derive-v1");
        h.update(public);
        let secret = h.finalize();
        let mut p = [0u8; 32];
        let n = public.len().min(32);
        p[..n].copy_from_slice(&public[..n]);
        SimKeyPair { public: p, secret }
    }

    /// Sign `message`, producing a 48-byte signature.
    pub fn sign(&self, message: &[u8]) -> [u8; SIGNATURE_LEN] {
        let mut h = Sha384::new();
        h.update(b"simsig-sig-v1");
        h.update(&self.effective_secret());
        h.update(message);
        h.finalize()
    }

    /// Verify `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        if signature.len() != SIGNATURE_LEN {
            return false;
        }
        // Constant-time-ish comparison; not security relevant in a simulation
        // but it is the correct idiom.
        let expect = self.sign(message);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(signature) {
            diff |= a ^ b;
        }
        diff == 0
    }

    /// The secret actually used for signing.
    ///
    /// Pairs built with [`SimKeyPair::from_seed`] and later reconstructed via
    /// [`SimKeyPair::from_public`] must agree, so signing always goes through
    /// the public-derived secret.
    fn effective_secret(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"simsig-derive-v1");
        h.update(&self.public);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let kp = SimKeyPair::from_seed(42);
        let sig = kp.sign(b"the root zone");
        assert!(kp.verify(b"the root zone", &sig));
    }

    #[test]
    fn verification_fails_on_message_bitflip() {
        let kp = SimKeyPair::from_seed(42);
        let msg = b"the root zone".to_vec();
        let sig = kp.sign(&msg);
        for byte in 0..msg.len() {
            for bit in 0..8 {
                let mut flipped = msg.clone();
                flipped[byte] ^= 1 << bit;
                assert!(!kp.verify(&flipped, &sig), "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn verification_fails_on_signature_bitflip() {
        let kp = SimKeyPair::from_seed(42);
        let mut sig = kp.sign(b"msg");
        sig[17] ^= 0x04;
        assert!(!kp.verify(b"msg", &sig));
    }

    #[test]
    fn different_keys_do_not_cross_verify() {
        let a = SimKeyPair::from_seed(1);
        let b = SimKeyPair::from_seed(2);
        let sig = a.sign(b"msg");
        assert!(!b.verify(b"msg", &sig));
    }

    #[test]
    fn public_reconstruction_verifies() {
        let signer = SimKeyPair::from_seed(7);
        let sig = signer.sign(b"zone data");
        let validator = SimKeyPair::from_public(&signer.public);
        assert!(validator.verify(b"zone data", &sig));
    }

    #[test]
    fn deterministic_from_seed() {
        assert_eq!(SimKeyPair::from_seed(9), SimKeyPair::from_seed(9));
        assert_ne!(SimKeyPair::from_seed(9), SimKeyPair::from_seed(10));
    }

    #[test]
    fn wrong_length_signature_rejected() {
        let kp = SimKeyPair::from_seed(42);
        assert!(!kp.verify(b"msg", &[0u8; 47]));
        assert!(!kp.verify(b"msg", &[]));
    }
}
