//! Base64 (RFC 4648 §4) as used in DNS presentation format for `DNSKEY` and
//! `RRSIG` RDATA.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode `data` as padded base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Decode base64; whitespace is skipped (zone files wrap long fields).
pub fn decode(s: &str) -> Result<Vec<u8>, Base64Error> {
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    let mut acc: u32 = 0;
    let mut bits = 0u8;
    let mut padding = 0u8;
    for (pos, c) in s.chars().enumerate() {
        if c.is_ascii_whitespace() {
            continue;
        }
        if c == '=' {
            padding += 1;
            if padding > 2 {
                return Err(Base64Error::BadPadding);
            }
            continue;
        }
        if padding > 0 {
            // Data after padding is malformed.
            return Err(Base64Error::BadPadding);
        }
        let v = sextet(c).ok_or(Base64Error::BadChar { pos, ch: c })?;
        acc = (acc << 6) | v as u32;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    // Any leftover bits must be zero padding bits from an unpadded tail.
    if bits >= 6 {
        return Err(Base64Error::Truncated);
    }
    if acc & ((1 << bits) - 1) != 0 {
        return Err(Base64Error::TrailingBits);
    }
    Ok(out)
}

fn sextet(c: char) -> Option<u8> {
    match c {
        'A'..='Z' => Some(c as u8 - b'A'),
        'a'..='z' => Some(c as u8 - b'a' + 26),
        '0'..='9' => Some(c as u8 - b'0' + 52),
        '+' => Some(62),
        '/' => Some(63),
        _ => None,
    }
}

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base64Error {
    /// Invalid character (position and character).
    BadChar { pos: usize, ch: char },
    /// Misplaced or excessive `=` padding.
    BadPadding,
    /// Input ends mid-byte.
    Truncated,
    /// Non-zero bits left over in the final quantum.
    TrailingBits,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::BadChar { pos, ch } => {
                write!(f, "invalid base64 char {ch:?} at {pos}")
            }
            Base64Error::BadPadding => write!(f, "invalid base64 padding"),
            Base64Error::Truncated => write!(f, "truncated base64 input"),
            Base64Error::TrailingBits => write!(f, "non-zero trailing bits"),
        }
    }
}

impl std::error::Error for Base64Error {}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(decode("Zm9vYg==").unwrap(), b"foob");
        assert_eq!(decode("Zg==").unwrap(), b"f");
    }

    #[test]
    fn decode_ignores_whitespace() {
        assert_eq!(decode("Zm9v\n YmFy").unwrap(), b"foobar");
    }

    #[test]
    fn decode_unpadded() {
        assert_eq!(decode("Zm9vYmE").unwrap(), b"fooba");
    }

    #[test]
    fn data_after_padding_rejected() {
        assert!(matches!(decode("Zg==Zg"), Err(Base64Error::BadPadding)));
    }

    #[test]
    fn bad_char_rejected() {
        assert!(matches!(
            decode("Zm9*"),
            Err(Base64Error::BadChar { pos: 3, ch: '*' })
        ));
    }

    #[test]
    fn round_trip_all_lengths() {
        for len in 0..64usize {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len={len}");
        }
    }
}
