//! Site stability (§4.2, Figure 3): per VP, count *changes* — two
//! subsequent measurements reaching different sites — over the whole
//! measurement, per target and address family; render as a complementary
//! eCDF.

use crate::stats::Ecdf;
use netsim::Family;
use std::collections::HashMap;
use vantage::population::VpId;
use vantage::records::{ProbeRecord, Target};

/// Change-event counts and their eCDF for one (target, family).
#[derive(Debug, Clone)]
pub struct StabilitySeries {
    pub target: Target,
    pub family: Family,
    /// Changes per VP.
    pub changes_per_vp: HashMap<VpId, u64>,
    /// eCDF over the per-VP change counts.
    pub ecdf: Ecdf,
}

impl StabilitySeries {
    /// Median number of changes a VP experienced.
    pub fn median_changes(&self) -> Option<u64> {
        self.ecdf.median()
    }

    /// Maximum changes any VP experienced (the long tail).
    pub fn max_changes(&self) -> u64 {
        self.ecdf.values.last().copied().unwrap_or(0)
    }
}

/// Stability result across all targets and families.
#[derive(Debug, Clone)]
pub struct StabilityResult {
    pub series: Vec<StabilitySeries>,
}

impl StabilityResult {
    /// Count change events from the probe stream.
    ///
    /// Probes must be *grouped* per VP in time order per (vp, target,
    /// family) — the engine emits rounds in order, so a stable sort by time
    /// within each key suffices and is done here defensively.
    pub fn compute(probes: &[ProbeRecord]) -> StabilityResult {
        // Previous site and change count per (vp, target, family).
        #[derive(Default, Clone)]
        struct State {
            prev: Option<netsim::anycast::SiteId>,
            prev_time: u32,
            changes: u64,
            initialized: bool,
        }
        let mut per_key: HashMap<(VpId, Target, Family), State> = HashMap::new();
        // Defensive ordering.
        let mut ordered: Vec<&ProbeRecord> = probes.iter().collect();
        ordered.sort_by_key(|p| (p.vp, p.target, p.family, p.time));
        for p in ordered {
            let Some(site) = p.site else { continue };
            let st = per_key.entry((p.vp, p.target, p.family)).or_default();
            if st.initialized && st.prev_time < p.time && st.prev != Some(site) {
                st.changes += 1;
            }
            st.prev = Some(site);
            st.prev_time = p.time;
            st.initialized = true;
        }
        // Group by (target, family).
        let mut grouped: HashMap<(Target, Family), HashMap<VpId, u64>> = HashMap::new();
        for ((vp, target, family), st) in per_key {
            grouped
                .entry((target, family))
                .or_default()
                .insert(vp, st.changes);
        }
        let mut series: Vec<StabilitySeries> = grouped
            .into_iter()
            .map(|((target, family), changes_per_vp)| {
                let samples: Vec<u64> = changes_per_vp.values().copied().collect();
                StabilitySeries {
                    target,
                    family,
                    ecdf: Ecdf::from_samples(samples),
                    changes_per_vp,
                }
            })
            .collect();
        series.sort_by_key(|s| (s.target, s.family));
        StabilityResult { series }
    }

    /// Fetch the series for one (target, family).
    pub fn series_for(&self, target: Target, family: Family) -> Option<&StabilitySeries> {
        self.series
            .iter()
            .find(|s| s.target == target && s.family == family)
    }

    /// Render the Figure 3 equivalent for a set of targets.
    pub fn render_fig3(&self, targets: &[Target]) -> String {
        let mut out = String::from("Figure 3: complementary eCDF of site-change events per VP\n");
        for t in targets {
            for family in Family::BOTH {
                if let Some(s) = self.series_for(*t, family) {
                    out.push_str(&format!(
                        "  {:14} {:4}: median {:4} max {:6} | CCDF@10 {:.2} CCDF@100 {:.2}\n",
                        t.label(),
                        family.label(),
                        s.median_changes().unwrap_or(0),
                        s.max_changes(),
                        s.ecdf.ccdf(10),
                        s.ecdf.ccdf(100),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss::{BRootPhase, RootLetter};
    use vantage::records::Target;

    fn probe(
        vp: u32,
        time: u32,
        site: Option<u32>,
        letter: RootLetter,
        family: Family,
    ) -> ProbeRecord {
        ProbeRecord {
            time,
            vp: VpId(vp),
            target: Target {
                letter,
                b_phase: BRootPhase::Old,
            },
            family,
            site: site.map(netsim::anycast::SiteId),
            rtt_ms: Some(10.0),
            second_to_last_hop: None,
            identity: None,
        }
    }

    #[test]
    fn counts_changes_between_consecutive_rounds() {
        let probes = vec![
            probe(0, 100, Some(1), RootLetter::G, Family::V4),
            probe(0, 200, Some(1), RootLetter::G, Family::V4),
            probe(0, 300, Some(2), RootLetter::G, Family::V4),
            probe(0, 400, Some(1), RootLetter::G, Family::V4),
            probe(0, 500, Some(1), RootLetter::G, Family::V4),
        ];
        let r = StabilityResult::compute(&probes);
        let s = r
            .series_for(
                Target {
                    letter: RootLetter::G,
                    b_phase: BRootPhase::Old,
                },
                Family::V4,
            )
            .unwrap();
        assert_eq!(s.changes_per_vp[&VpId(0)], 2);
    }

    #[test]
    fn unreachable_probes_skipped() {
        let probes = vec![
            probe(0, 100, Some(1), RootLetter::B, Family::V4),
            probe(0, 200, None, RootLetter::B, Family::V4),
            probe(0, 300, Some(1), RootLetter::B, Family::V4),
        ];
        let r = StabilityResult::compute(&probes);
        let s = r
            .series_for(
                Target {
                    letter: RootLetter::B,
                    b_phase: BRootPhase::Old,
                },
                Family::V4,
            )
            .unwrap();
        // The timeout round does not create a change.
        assert_eq!(s.changes_per_vp[&VpId(0)], 0);
    }

    #[test]
    fn families_counted_separately() {
        let probes = vec![
            probe(0, 100, Some(1), RootLetter::C, Family::V4),
            probe(0, 200, Some(1), RootLetter::C, Family::V4),
            probe(0, 100, Some(1), RootLetter::C, Family::V6),
            probe(0, 200, Some(2), RootLetter::C, Family::V6),
        ];
        let r = StabilityResult::compute(&probes);
        let t = Target {
            letter: RootLetter::C,
            b_phase: BRootPhase::Old,
        };
        assert_eq!(
            r.series_for(t, Family::V4).unwrap().changes_per_vp[&VpId(0)],
            0
        );
        assert_eq!(
            r.series_for(t, Family::V6).unwrap().changes_per_vp[&VpId(0)],
            1
        );
    }

    #[test]
    fn out_of_order_input_handled() {
        let probes = vec![
            probe(0, 300, Some(2), RootLetter::G, Family::V4),
            probe(0, 100, Some(1), RootLetter::G, Family::V4),
            probe(0, 200, Some(1), RootLetter::G, Family::V4),
        ];
        let r = StabilityResult::compute(&probes);
        let s = &r.series[0];
        assert_eq!(s.changes_per_vp[&VpId(0)], 1);
    }

    #[test]
    fn median_and_ccdf() {
        let mut probes = Vec::new();
        // VP 0: stable (0 changes); VP 1: flappy (3 changes).
        for (i, site) in [1u32, 1, 1, 1].iter().enumerate() {
            probes.push(probe(
                0,
                100 * (i as u32 + 1),
                Some(*site),
                RootLetter::A,
                Family::V4,
            ));
        }
        for (i, site) in [1u32, 2, 1, 2].iter().enumerate() {
            probes.push(probe(
                1,
                100 * (i as u32 + 1),
                Some(*site),
                RootLetter::A,
                Family::V4,
            ));
        }
        let r = StabilityResult::compute(&probes);
        let s = &r.series[0];
        assert_eq!(s.ecdf.n, 2);
        assert_eq!(s.max_changes(), 3);
        assert!((s.ecdf.ccdf(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_contains_labels() {
        let probes = vec![
            probe(0, 100, Some(1), RootLetter::B, Family::V4),
            probe(0, 200, Some(1), RootLetter::B, Family::V4),
        ];
        let r = StabilityResult::compute(&probes);
        let txt = r.render_fig3(&[Target {
            letter: RootLetter::B,
            b_phase: BRootPhase::Old,
        }]);
        assert!(txt.contains("b.root"));
        assert!(txt.contains("IPv4"));
    }
}
