//! Analysis pipeline: every table and figure of the paper's evaluation.
//!
//! Each module consumes the compact records produced by the `vantage`
//! measurement engine and the `traces` flow generators, plus the world's
//! catalog/topology for ground truth, and produces a typed result with a
//! text renderer mirroring the paper's artefact:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`coverage`] | Tables 1 & 4, Figures 1 & 11 (site coverage) |
//! | [`stability`] | Figure 3 (eCDF of site-change events) |
//! | [`colocation`] | §5 + Figure 4 (reduced redundancy) |
//! | [`distance`] | Figure 5 (closest vs actual site distance) |
//! | [`rtt`] | Figures 6/14/15 (RTT by continent/letter/family) |
//! | [`traffic`] | Figures 7, 9, 12, 13 (traffic shift, ISP + IXP) |
//! | [`clients`] | Figure 8 (unique client subnets vs flows/client) |
//! | [`zonemd_pipeline`] | Table 2 + Figure 10 (validation errors, bitflips) |
//! | [`stats`] | shared numeric helpers (eCDF, percentiles, violin stats) |
//! | [`epochs`] | scenario before/during/after diffing (change events) |
//! | [`catchment`] | shared catchment/RTT accumulator + deployment deltas |

pub mod anomaly;
pub mod catchment;
pub mod clients;
pub mod colocation;
pub mod coverage;
pub mod distance;
pub mod epochs;
pub mod export;
pub mod paths;
pub mod rtt;
pub mod stability;
pub mod stats;
pub mod traffic;
pub mod zonemd_pipeline;

pub use catchment::{CatchmentAccum, DeploymentSummary, ServedSite, SummaryDelta};
pub use colocation::{ColocationResult, ReducedRedundancy};
pub use coverage::{CoverageReport, CoverageRow};
pub use distance::DistanceResult;
pub use epochs::{EpochDiffReport, EpochStats, FloodDiffReport, FloodEpoch};
pub use rtt::RttByRegion;
pub use stability::StabilityResult;
pub use traffic::{BRootShift, TrafficSeries};
pub use zonemd_pipeline::{Table2, Table2Row};
