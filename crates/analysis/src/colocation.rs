//! Server co-location (§5, Figure 4): reduced redundancy from shared
//! second-to-last traceroute hops.
//!
//! For each VP and family, take the second-to-last hop observed toward each
//! of the 13 letters; the *reduced redundancy* is the total number of
//! observed hops minus the number of unique hops. Missing hops count as
//! unique, so the measure is a lower bound — exactly as the paper computes
//! it.

use netgeo::Region;
use netsim::Family;
use rss::{BRootPhase, RootLetter};
use std::collections::{HashMap, HashSet};
use vantage::population::{Population, VpId};
use vantage::records::ProbeRecord;

/// Reduced redundancy of one VP in one family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReducedRedundancy {
    pub vp: VpId,
    pub family: Family,
    /// Letters for which a hop (or a missing marker) was observed.
    pub letters_observed: u32,
    /// total observed hops − unique hops (0..=12).
    pub reduced: u32,
}

/// Co-location analysis results.
#[derive(Debug, Clone)]
pub struct ColocationResult {
    pub per_vp: Vec<ReducedRedundancy>,
}

impl ColocationResult {
    /// Compute from the probe stream, using each VP's most recent observed
    /// second-to-last hop per letter (the paper's per-VP view).
    ///
    /// b.root's two addresses share physical sites; only the old-address
    /// target is used so each letter contributes exactly one hop.
    pub fn compute(probes: &[ProbeRecord]) -> ColocationResult {
        // (vp, family, letter) -> (time, hop option)
        let mut latest: HashMap<(VpId, Family, RootLetter), (u32, Option<u64>)> = HashMap::new();
        for p in probes {
            if p.target.b_phase != BRootPhase::Old {
                continue;
            }
            if p.site.is_none() {
                continue;
            }
            let key = (p.vp, p.family, p.target.letter);
            let entry = latest.entry(key).or_insert((0, None));
            if p.time >= entry.0 {
                *entry = (p.time, p.second_to_last_hop);
            }
        }
        // Group per (vp, family).
        let mut grouped: HashMap<(VpId, Family), Vec<Option<u64>>> = HashMap::new();
        for ((vp, family, _letter), (_, hop)) in latest {
            grouped.entry((vp, family)).or_default().push(hop);
        }
        let mut per_vp: Vec<ReducedRedundancy> = grouped
            .into_iter()
            .map(|((vp, family), hops)| {
                let total = hops.len() as u32;
                let mut unique: HashSet<u64> = HashSet::new();
                let mut missing = 0u32;
                for h in &hops {
                    match h {
                        Some(r) => {
                            unique.insert(*r);
                        }
                        None => missing += 1, // missing counts as unique
                    }
                }
                let unique_count = unique.len() as u32 + missing;
                ReducedRedundancy {
                    vp,
                    family,
                    letters_observed: total,
                    reduced: total - unique_count,
                }
            })
            .collect();
        per_vp.sort_by_key(|r| (r.vp, r.family));
        ColocationResult { per_vp }
    }

    /// Fraction of VPs observing co-location of at least `k` letters
    /// (reduced redundancy ≥ k−1). The paper's headline uses k = 2.
    pub fn fraction_with_colocation(&self, k: u32) -> f64 {
        if self.per_vp.is_empty() {
            return 0.0;
        }
        // Per VP (any family): max reduced across families.
        let mut per_vp_max: HashMap<VpId, u32> = HashMap::new();
        for r in &self.per_vp {
            let e = per_vp_max.entry(r.vp).or_insert(0);
            *e = (*e).max(r.reduced);
        }
        let hits = per_vp_max
            .values()
            .filter(|&&red| red >= k.saturating_sub(1))
            .count();
        hits as f64 / per_vp_max.len() as f64
    }

    /// Maximum reduced redundancy seen anywhere.
    pub fn max_reduced(&self) -> u32 {
        self.per_vp.iter().map(|r| r.reduced).max().unwrap_or(0)
    }

    /// Figure 4: histogram of reduced redundancy per region per family.
    /// Returns `[region][family][reduced_redundancy 0..=12] = #VPs`.
    pub fn histogram_by_region(&self, population: &Population) -> [[Vec<u32>; 2]; 6] {
        let mut hist: [[Vec<u32>; 2]; 6] =
            std::array::from_fn(|_| [vec![0u32; 13], vec![0u32; 13]]);
        for r in &self.per_vp {
            let region = population.get(r.vp).region;
            let bucket = (r.reduced as usize).min(12);
            hist[region.index()][r.family.index()][bucket] += 1;
        }
        hist
    }

    /// Mean reduced redundancy per region/family (the `avg(v4)`/`avg(v6)`
    /// annotations in Figure 4).
    pub fn mean_by_region(&self, population: &Population) -> [[f64; 2]; 6] {
        let mut sum = [[0f64; 2]; 6];
        let mut n = [[0u32; 2]; 6];
        for r in &self.per_vp {
            let region = population.get(r.vp).region;
            sum[region.index()][r.family.index()] += r.reduced as f64;
            n[region.index()][r.family.index()] += 1;
        }
        let mut out = [[0f64; 2]; 6];
        for region in 0..6 {
            for fam in 0..2 {
                out[region][fam] = if n[region][fam] == 0 {
                    0.0
                } else {
                    sum[region][fam] / n[region][fam] as f64
                };
            }
        }
        out
    }

    /// Render the Figure 4 equivalent.
    pub fn render_fig4(&self, population: &Population) -> String {
        let hist = self.histogram_by_region(population);
        let means = self.mean_by_region(population);
        let mut out = String::from("Figure 4: reduced redundancy due to shared last hop\n");
        for region in Region::ALL {
            out.push_str(&format!(
                "-- {} -- avg(v4)={:.2} avg(v6)={:.2}\n",
                region,
                means[region.index()][0],
                means[region.index()][1],
            ));
            for (fam_idx, fam) in Family::BOTH.iter().enumerate() {
                let h = &hist[region.index()][fam_idx];
                let counts: Vec<String> = h.iter().map(|c| format!("{c:4}")).collect();
                out.push_str(&format!("   {}: {}\n", fam.label(), counts.join(" ")));
            }
        }
        out.push_str(&format!(
            "VPs observing >=2 co-located letters: {:.1}%  (max reduced: {})\n",
            self.fraction_with_colocation(2) * 100.0,
            self.max_reduced()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage::records::Target;

    fn probe(
        vp: u32,
        letter: RootLetter,
        family: Family,
        hop: Option<u64>,
        time: u32,
    ) -> ProbeRecord {
        ProbeRecord {
            time,
            vp: VpId(vp),
            target: Target {
                letter,
                b_phase: BRootPhase::Old,
            },
            family,
            site: Some(netsim::anycast::SiteId(0)),
            rtt_ms: Some(5.0),
            second_to_last_hop: hop,
            identity: None,
        }
    }

    #[test]
    fn shared_hops_reduce_redundancy() {
        // 3 letters, two share hop 7.
        let probes = vec![
            probe(0, RootLetter::A, Family::V4, Some(7), 1),
            probe(0, RootLetter::B, Family::V4, Some(7), 1),
            probe(0, RootLetter::C, Family::V4, Some(9), 1),
        ];
        let r = ColocationResult::compute(&probes);
        assert_eq!(r.per_vp.len(), 1);
        assert_eq!(r.per_vp[0].reduced, 1);
        assert_eq!(r.per_vp[0].letters_observed, 3);
    }

    #[test]
    fn missing_hops_count_as_unique() {
        let probes = vec![
            probe(0, RootLetter::A, Family::V4, None, 1),
            probe(0, RootLetter::B, Family::V4, None, 1),
            probe(0, RootLetter::C, Family::V4, Some(7), 1),
        ];
        let r = ColocationResult::compute(&probes);
        assert_eq!(r.per_vp[0].reduced, 0);
    }

    #[test]
    fn latest_observation_wins() {
        let probes = vec![
            probe(0, RootLetter::A, Family::V4, Some(7), 1),
            probe(0, RootLetter::B, Family::V4, Some(7), 1),
            // Later, A moves to a different hop.
            probe(0, RootLetter::A, Family::V4, Some(8), 2),
        ];
        let r = ColocationResult::compute(&probes);
        assert_eq!(r.per_vp[0].reduced, 0);
    }

    #[test]
    fn all_thirteen_at_one_facility_gives_twelve() {
        let probes: Vec<ProbeRecord> = RootLetter::ALL
            .iter()
            .map(|l| probe(0, *l, Family::V6, Some(42), 1))
            .collect();
        let r = ColocationResult::compute(&probes);
        assert_eq!(r.per_vp[0].reduced, 12);
        assert_eq!(r.max_reduced(), 12);
    }

    #[test]
    fn fraction_with_colocation_counts_vps() {
        let mut probes = vec![
            // VP0: co-location.
            probe(0, RootLetter::A, Family::V4, Some(1), 1),
            probe(0, RootLetter::B, Family::V4, Some(1), 1),
            // VP1: none.
            probe(1, RootLetter::A, Family::V4, Some(2), 1),
            probe(1, RootLetter::B, Family::V4, Some(3), 1),
        ];
        probes.push(probe(2, RootLetter::A, Family::V4, Some(4), 1));
        let r = ColocationResult::compute(&probes);
        let frac = r.fraction_with_colocation(2);
        assert!((frac - 1.0 / 3.0).abs() < 1e-9, "{frac}");
    }

    #[test]
    fn new_b_address_ignored() {
        let mut p = probe(0, RootLetter::B, Family::V4, Some(1), 1);
        p.target.b_phase = BRootPhase::New;
        let r = ColocationResult::compute(&[p]);
        assert!(r.per_vp.is_empty());
    }

    #[test]
    fn families_tracked_separately() {
        let probes = vec![
            probe(0, RootLetter::A, Family::V4, Some(1), 1),
            probe(0, RootLetter::B, Family::V4, Some(1), 1),
            probe(0, RootLetter::A, Family::V6, Some(2), 1),
            probe(0, RootLetter::B, Family::V6, Some(3), 1),
        ];
        let r = ColocationResult::compute(&probes);
        let v4 = r.per_vp.iter().find(|x| x.family == Family::V4).unwrap();
        let v6 = r.per_vp.iter().find(|x| x.family == Family::V6).unwrap();
        assert_eq!(v4.reduced, 1);
        assert_eq!(v6.reduced, 0);
    }
}
