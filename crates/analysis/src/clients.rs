//! Client contact patterns (Figure 8): mean number of unique client
//! subnets per day as a function of flows-per-client, per target and
//! family.
//!
//! The priming signature: after the change, the old b.root IPv6 subnet is
//! contacted by many clients exactly once a day — they prime against the
//! old address and then move on.

use netsim::Family;
use rss::{BRootPhase, RootLetter};
use std::collections::{BTreeMap, HashMap};
use traces::client::ClientId;
use traces::flows::{DayBucket, FlowObservation, FlowTarget};

/// Figure 8 curve for one (target, family): at each flows-per-client
/// threshold, the mean number of unique clients per day with at most that
/// many flows, normalized by the overall daily client count.
#[derive(Debug, Clone)]
pub struct ClientCurve {
    pub target: FlowTarget,
    pub family: Family,
    /// Mean unique clients per day (the normalizer).
    pub mean_clients_per_day: f64,
    /// Sorted (flows-per-client, cumulative fraction of client-days).
    pub curve: Vec<(u32, f64)>,
}

impl ClientCurve {
    /// Fraction of client-days with at most `flows` flows.
    pub fn fraction_at_most(&self, flows: u32) -> f64 {
        let mut out = 0.0;
        for (f, frac) in &self.curve {
            if *f <= flows {
                out = *frac;
            } else {
                break;
            }
        }
        out
    }
}

/// The Figure 8 analysis.
#[derive(Debug, Clone)]
pub struct ClientAnalysis {
    pub curves: Vec<ClientCurve>,
}

impl ClientAnalysis {
    /// Compute per-(target, family) client-contact curves from flows in
    /// `[from_day, until_day)`.
    pub fn compute(
        flows: &[FlowObservation],
        from_day: DayBucket,
        until_day: DayBucket,
    ) -> ClientAnalysis {
        // (target, family) -> (day, client) -> flow count
        let mut counts: HashMap<(FlowTarget, Family), HashMap<(DayBucket, ClientId), u64>> =
            HashMap::new();
        let mut days: HashMap<(FlowTarget, Family), std::collections::HashSet<DayBucket>> =
            HashMap::new();
        for f in flows {
            if f.day < from_day || f.day >= until_day {
                continue;
            }
            *counts
                .entry((f.target, f.family))
                .or_default()
                .entry((f.day, f.client))
                .or_insert(0) += f.flows as u64;
            days.entry((f.target, f.family)).or_default().insert(f.day);
        }
        let mut curves = Vec::new();
        for ((target, family), per_client_day) in counts {
            let n_days = days[&(target, family)].len().max(1);
            let total_client_days = per_client_day.len();
            // Histogram over flows-per-client-day.
            let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
            for count in per_client_day.values() {
                *hist
                    .entry((*count).min(u32::MAX as u64) as u32)
                    .or_insert(0) += 1;
            }
            let mut curve = Vec::with_capacity(hist.len());
            let mut cum = 0u64;
            for (flows_ct, n) in hist {
                cum += n;
                curve.push((flows_ct, cum as f64 / total_client_days as f64));
            }
            curves.push(ClientCurve {
                target,
                family,
                mean_clients_per_day: total_client_days as f64 / n_days as f64,
                curve,
            });
        }
        curves.sort_by_key(|c| (c.target, c.family));
        ClientAnalysis { curves }
    }

    /// Fetch one curve.
    pub fn curve(&self, target: FlowTarget, family: Family) -> Option<&ClientCurve> {
        self.curves
            .iter()
            .find(|c| c.target == target && c.family == family)
    }

    /// Render the Figure 8 equivalent for the a–e letters the paper shows.
    pub fn render_fig8(&self) -> String {
        let mut out = String::from(
            "Figure 8: mean unique client subnets/day; fraction of client-days\n\
             with <=1 / <=10 / <=1000 flows\n",
        );
        for family in Family::BOTH {
            out.push_str(&format!("-- {} --\n", family.label()));
            for c in self.curves.iter().filter(|c| c.family == family) {
                let letter_ok = matches!(
                    c.target.letter,
                    RootLetter::A | RootLetter::B | RootLetter::C | RootLetter::D | RootLetter::E
                );
                if !letter_ok {
                    continue;
                }
                out.push_str(&format!(
                    "  {:14} clients/day {:9.1} | <=1: {:.2} <=10: {:.2} <=1000: {:.2}\n",
                    c.target.label(),
                    c.mean_clients_per_day,
                    c.fraction_at_most(1),
                    c.fraction_at_most(10),
                    c.fraction_at_most(1000),
                ));
            }
        }
        out
    }
}

/// Convenience: the old/new b.root flow targets.
pub fn b_target(phase: BRootPhase) -> FlowTarget {
    FlowTarget {
        letter: RootLetter::B,
        b_phase: phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_crypto::validity::timestamp_from_ymd as ts;
    use traces::gen::{generate_flows, ObservationWindow, TraceConfig};

    fn day(s: &str) -> DayBucket {
        DayBucket::of(ts(s).unwrap())
    }

    fn post_change_analysis() -> ClientAnalysis {
        let mut cfg = TraceConfig::isp(13);
        cfg.population.clients_per_family = 250;
        let flows = generate_flows(&cfg, &[ObservationWindow::isp_windows()[1]]);
        ClientAnalysis::compute(&flows, day("20240205000000"), day("20240304000000"))
    }

    #[test]
    fn curves_are_monotone_cdfs() {
        let a = post_change_analysis();
        assert!(!a.curves.is_empty());
        for c in &a.curves {
            for w in c.curve.windows(2) {
                assert!(w[0].0 < w[1].0);
                assert!(w[0].1 <= w[1].1);
            }
            let last = c.curve.last().unwrap().1;
            assert!((last - 1.0).abs() < 1e-9, "last {last}");
        }
    }

    #[test]
    fn old_b_v6_is_once_a_day_heavy() {
        // The priming signature: the old v6 subnet's client-days are
        // dominated by 1-flow contacts, far more than the new subnet's.
        let a = post_change_analysis();
        let old = a
            .curve(b_target(BRootPhase::Old), Family::V6)
            .expect("old b v6 curve");
        let new = a
            .curve(b_target(BRootPhase::New), Family::V6)
            .expect("new b v6 curve");
        assert!(
            old.fraction_at_most(1) > new.fraction_at_most(1) + 0.3,
            "old {:.2} vs new {:.2}",
            old.fraction_at_most(1),
            new.fraction_at_most(1)
        );
    }

    #[test]
    fn other_letters_have_heavy_users() {
        let a = post_change_analysis();
        let k = a
            .curve(
                FlowTarget {
                    letter: RootLetter::K,
                    b_phase: BRootPhase::Old,
                },
                Family::V4,
            )
            .expect("k curve");
        // Plenty of client-days exceed 10 flows.
        assert!(k.fraction_at_most(10) < 0.9);
    }

    #[test]
    fn window_filtering_applies() {
        let mut cfg = TraceConfig::isp(13);
        cfg.population.clients_per_family = 50;
        let flows = generate_flows(&cfg, &[ObservationWindow::isp_windows()[1]]);
        let empty = ClientAnalysis::compute(&flows, day("20250101000000"), day("20250102000000"));
        assert!(empty.curves.is_empty());
    }

    #[test]
    fn render_contains_b_old_new() {
        let a = post_change_analysis();
        let txt = a.render_fig8();
        assert!(txt.contains("b.root (old)"));
        assert!(txt.contains("b.root (new)"));
        assert!(txt.contains("IPv6"));
    }
}
