//! The zone-integrity pipeline (§7, Table 2, Figure 10).
//!
//! Validates every transferred zone copy the way the paper's `ldnsutils`
//! pipeline did: recompute ZONEMD and verify all RRSIGs against the
//! DNSKEYs, at the VP's *local* observation clock — which is how clock
//! skew produces "Sig. not incepted" findings. Distinct failing zone files
//! are grouped into the Table 2 rows (reason × serial set × affected
//! servers × VPs), and bitflipped copies are diffed against the reference
//! zone to produce the Figure 10 two-line rendering.

use dns_zone::corrupt::flip_rrsig_bit;
use dns_zone::validate::{bitflip_diff, validate_zone, BitflipReport, ValidationIssue};
use dns_zone::Zone;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use vantage::records::{TransferFault, TransferRecord};
use vantage::World;

/// Why a transferred zone failed validation (Table 2 "Reason" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureReason {
    /// VP clock before signature inception.
    SigNotIncepted,
    /// Cryptographic verification failed (bitflip).
    BogusSignature,
    /// Signatures expired (stale zone file).
    SignatureExpired,
}

impl FailureReason {
    /// The label used in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            FailureReason::SigNotIncepted => "Sig. not incepted",
            FailureReason::BogusSignature => "Bogus Signature",
            FailureReason::SignatureExpired => "Signature expired",
        }
    }
}

/// One Table 2 row: a failure class with its footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    pub reason: FailureReason,
    /// Distinct zone serials involved (#SOA column).
    pub serials: BTreeSet<u32>,
    /// First and last observation times.
    pub first_obs: u32,
    pub last_obs: u32,
    /// Number of observations.
    pub observations: u32,
    /// Affected (target label, family label) pairs ("Server" column).
    pub servers: BTreeSet<String>,
    /// Affected VPs.
    pub vps: BTreeSet<u32>,
}

/// The Table 2 result.
#[derive(Debug, Clone, Default)]
pub struct Table2 {
    pub rows: Vec<Table2Row>,
    /// Total transfers validated.
    pub total_transfers: u64,
    /// Distinct failing zone copies (the paper: 15 distinct files).
    pub distinct_failing: u64,
}

impl Table2 {
    /// Render like the paper's Table 2.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table 2: ZONEMD/RRSIG validation errors for zones from AXFRs\n\
             Reason            | #SOA | First Obs -> Last Obs | #Obs | Servers | #VPs\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:17} | {:4} | {} -> {} | {:4} | {} | {}\n",
                row.reason.label(),
                row.serials.len(),
                dns_crypto::validity::timestamp_to_ymd(row.first_obs),
                dns_crypto::validity::timestamp_to_ymd(row.last_obs),
                row.observations,
                row.servers.iter().cloned().collect::<Vec<_>>().join(","),
                row.vps.len(),
            ));
        }
        out.push_str(&format!(
            "validated {} transfers, {} distinct failing copies\n",
            self.total_transfers, self.distinct_failing
        ));
        out
    }
}

/// Validate all transfer records against the world's zone store.
///
/// Validation is deduplicated: one cryptographic pass per distinct
/// `(serial, fault, vp_clock-class)` combination; healthy transfers of the
/// same day's zone share a single validation.
pub fn validate_transfers(world: &World, transfers: &[TransferRecord]) -> Table2 {
    // Group raw observations by what makes them cryptographically distinct.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct ObsKey {
        serial: u32,
        fault: Option<TransferFault>,
        /// Clock bucket: validation outcome only depends on which side of
        /// the validity window the clock falls; bucketing to the hour keeps
        /// dedup effective while never mixing outcomes in practice.
        clock_hour: u32,
    }
    // Make TransferFault orderable for the key.
    impl ObsKey {
        fn of(t: &TransferRecord) -> Option<ObsKey> {
            Some(ObsKey {
                serial: t.serial?,
                fault: t.fault,
                clock_hour: t.vp_clock / 3600,
            })
        }
    }
    let mut groups: BTreeMap<Vec<u8>, Vec<&TransferRecord>> = BTreeMap::new();
    for t in transfers {
        let Some(key) = ObsKey::of(t) else { continue };
        // Serialize key to bytes for ordering (fault has no Ord).
        let mut kb = Vec::with_capacity(17);
        kb.extend_from_slice(&key.serial.to_be_bytes());
        match key.fault {
            None => kb.push(0),
            Some(TransferFault::Bitflip { seed }) => {
                kb.push(1);
                kb.extend_from_slice(&seed.to_be_bytes());
            }
            Some(TransferFault::Stale { serial }) => {
                kb.push(2);
                kb.extend_from_slice(&serial.to_be_bytes());
            }
        }
        kb.extend_from_slice(&key.clock_hour.to_be_bytes());
        groups.entry(kb).or_default().push(t);
    }

    let mut failures: BTreeMap<FailureReason, Table2Row> = BTreeMap::new();
    let mut distinct_failing = 0u64;
    for obs in groups.values() {
        let sample = obs[0];
        let zone = materialize(world, sample);
        let report = validate_zone(&zone, sample.vp_clock);
        let reason = classify(&report.issues);
        let Some(reason) = reason else { continue };
        distinct_failing += 1;
        let row = failures.entry(reason).or_insert_with(|| Table2Row {
            reason,
            serials: BTreeSet::new(),
            first_obs: u32::MAX,
            last_obs: 0,
            observations: 0,
            servers: BTreeSet::new(),
            vps: BTreeSet::new(),
        });
        for t in obs {
            row.serials.extend(t.serial);
            row.first_obs = row.first_obs.min(t.time);
            row.last_obs = row.last_obs.max(t.time);
            row.observations += 1;
            row.servers
                .insert(format!("{}({})", t.target.label(), t.family.label()));
            row.vps.insert(t.vp.0);
        }
    }
    Table2 {
        rows: failures.into_values().collect(),
        total_transfers: transfers.len() as u64,
        distinct_failing,
    }
}

/// Rebuild the exact zone copy a transfer delivered.
pub fn materialize(world: &World, t: &TransferRecord) -> Arc<Zone> {
    let base = match t.fault {
        Some(TransferFault::Stale { serial }) => {
            // The stale zone is the one whose serial matches: reconstruct
            // from the day encoded in the serial.
            world.zone_at(day_of_serial(serial))
        }
        _ => world.zone_at(t.time - t.time % 86400),
    };
    match t.fault {
        Some(TransferFault::Bitflip { seed }) => {
            let mut corrupted = (*base).clone();
            flip_rrsig_bit(&mut corrupted, seed);
            Arc::new(corrupted)
        }
        _ => base,
    }
}

/// Timestamp of the day a `YYYYMMDDnn` serial encodes.
fn day_of_serial(serial: u32) -> u32 {
    let ymd = format!("{:08}000000", serial / 100);
    dns_crypto::validity::timestamp_from_ymd(&ymd).expect("serial encodes a date")
}

/// Map validation issues to the dominant Table 2 reason.
fn classify(issues: &[ValidationIssue]) -> Option<FailureReason> {
    let mut bogus = false;
    let mut expired = false;
    let mut not_incepted = false;
    for i in issues {
        match i {
            ValidationIssue::BogusSignature { .. } | ValidationIssue::Zonemd(_) => bogus = true,
            ValidationIssue::SignatureExpired { .. } => expired = true,
            ValidationIssue::SignatureNotIncepted { .. } => not_incepted = true,
            _ => {}
        }
    }
    // Bitflips break crypto regardless of clock; staleness shows as
    // expiry; inception errors only matter when nothing else is wrong.
    if bogus {
        Some(FailureReason::BogusSignature)
    } else if expired {
        Some(FailureReason::SignatureExpired)
    } else if not_incepted {
        Some(FailureReason::SigNotIncepted)
    } else {
        None
    }
}

/// Produce the Figure 10 rendering for a bitflipped transfer: the diff
/// between the reference zone and the received copy.
pub fn bitflip_report(world: &World, t: &TransferRecord) -> Option<BitflipReport> {
    matches!(t.fault, Some(TransferFault::Bitflip { .. })).then(|| {
        let reference = world.zone_at(t.time - t.time % 86400);
        let observed = materialize(world, t);
        bitflip_diff(&reference, &observed)
    })?
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Family;
    use rss::{BRootPhase, RootLetter};
    use vantage::population::VpId;
    use vantage::records::Target;
    use vantage::{World, WorldBuildConfig};

    fn world() -> World {
        World::build(&WorldBuildConfig::tiny())
    }

    fn transfer(time: u32, vp_clock: u32, vp: u32, fault: Option<TransferFault>) -> TransferRecord {
        TransferRecord {
            time,
            vp_clock,
            vp: VpId(vp),
            target: Target {
                letter: RootLetter::D,
                b_phase: BRootPhase::Old,
            },
            family: Family::V6,
            serial: Some(vantage::engine::serial_of_day(time - time % 86400)),
            fault,
        }
    }

    const T0: u32 = vantage::schedule::MEASUREMENT_START + 40 * 86400;

    #[test]
    fn healthy_transfers_produce_no_rows() {
        let w = world();
        let transfers = vec![transfer(T0 + 3600, T0 + 3600, 0, None)];
        let table = validate_transfers(&w, &transfers);
        assert!(table.rows.is_empty());
        assert_eq!(table.total_transfers, 1);
    }

    #[test]
    fn bitflip_classified_as_bogus() {
        let w = world();
        let transfers = vec![transfer(
            T0 + 3600,
            T0 + 3600,
            3,
            Some(TransferFault::Bitflip { seed: 77 }),
        )];
        let table = validate_transfers(&w, &transfers);
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].reason, FailureReason::BogusSignature);
        assert_eq!(table.rows[0].vps.len(), 1);
    }

    #[test]
    fn stale_zone_classified_as_expired() {
        let w = world();
        // A zone from 40 days earlier has expired signatures (14-day window).
        let stale_day = vantage::schedule::MEASUREMENT_START;
        let transfers = vec![transfer(
            T0 + 3600,
            T0 + 3600,
            1,
            Some(TransferFault::Stale {
                serial: vantage::engine::serial_of_day(stale_day),
            }),
        )];
        let table = validate_transfers(&w, &transfers);
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].reason, FailureReason::SignatureExpired);
    }

    #[test]
    fn skewed_clock_classified_as_not_incepted() {
        let w = world();
        // VP clock 2h before the zone's inception (day start).
        let transfers = vec![transfer(T0 + 600, T0 - 7200, 2, None)];
        let table = validate_transfers(&w, &transfers);
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].reason, FailureReason::SigNotIncepted);
    }

    #[test]
    fn dedup_counts_all_observations() {
        let w = world();
        let transfers = vec![
            transfer(
                T0 + 3600,
                T0 + 3600,
                5,
                Some(TransferFault::Bitflip { seed: 9 }),
            ),
            transfer(
                T0 + 5400,
                T0 + 5400,
                5,
                Some(TransferFault::Bitflip { seed: 9 }),
            ),
        ];
        let table = validate_transfers(&w, &transfers);
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].observations, 2);
        // One distinct failing copy despite two observations.
        assert_eq!(table.distinct_failing, 1);
    }

    #[test]
    fn bitflip_report_is_single_line_pair() {
        let w = world();
        let t = transfer(
            T0 + 3600,
            T0 + 3600,
            0,
            Some(TransferFault::Bitflip { seed: 123 }),
        );
        let report = bitflip_report(&w, &t).expect("diff exists");
        assert_ne!(report.reference_line, report.observed_line);
        assert!(report.reference_line.contains("RRSIG"));
    }

    #[test]
    fn bitflip_report_none_for_healthy() {
        let w = world();
        let t = transfer(T0 + 3600, T0 + 3600, 0, None);
        assert!(bitflip_report(&w, &t).is_none());
    }

    #[test]
    fn render_contains_reasons() {
        let w = world();
        let transfers = vec![
            transfer(
                T0 + 3600,
                T0 + 3600,
                0,
                Some(TransferFault::Bitflip { seed: 5 }),
            ),
            transfer(T0 + 600, T0 - 7200, 1, None),
        ];
        let table = validate_transfers(&w, &transfers);
        let txt = table.render();
        assert!(txt.contains("Bogus Signature"));
        assert!(txt.contains("Sig. not incepted"));
        assert!(txt.contains("d.root"));
    }

    #[test]
    fn day_of_serial_round_trip() {
        let day = vantage::schedule::MEASUREMENT_START + 10 * 86400;
        assert_eq!(day_of_serial(vantage::engine::serial_of_day(day)), day);
    }
}
