//! RTT-based anomaly detection.
//!
//! §3 of the paper notes that "understanding RTT characteristics can also
//! help to detect unauthorized root replicas/caches" (Jones et al., PAM
//! 2016). The core signal: an answer arriving *faster than light allows*
//! from every authorized site proves an unauthorized on-path replica; and
//! an abrupt, persistent RTT level-shift at one VP flags interception or
//! rerouting worth investigating.
//!
//! [`SpeedOfLightCheck`] implements the physical-lower-bound test against
//! the deployment catalog; [`LevelShiftDetector`] a simple
//! change-point-style detector over a VP's RTT series.

use netgeo::{fiber_rtt_ms, Coord};
use rss::catalog::RootCatalog;
use rss::RootLetter;

/// The physical lower-bound test: given where a VP sits and where the
/// letter's sites are, no legitimate answer can arrive faster than fibre
/// light from the *closest* site.
#[derive(Debug, Clone)]
pub struct SpeedOfLightCheck {
    /// Tolerance subtracted from the bound (measurement noise, km-level
    /// geo inaccuracy). Fraction of the bound, e.g. 0.3 = allow 30% under.
    pub tolerance: f64,
}

impl Default for SpeedOfLightCheck {
    fn default() -> Self {
        SpeedOfLightCheck { tolerance: 0.5 }
    }
}

/// Verdict for one observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolVerdict {
    /// RTT is consistent with some authorized site.
    Plausible,
    /// RTT is below the physical bound for every authorized site: an
    /// unauthorized replica (or interceptor) must be answering.
    ImpossiblyFast {
        /// The bound that was violated (ms).
        bound_ms: f64,
        /// The observed RTT (ms).
        observed_ms: f64,
    },
}

impl SpeedOfLightCheck {
    /// The fibre lower bound from `vp` to the closest site of `letter`.
    pub fn bound_ms(&self, catalog: &RootCatalog, letter: RootLetter, vp: Coord) -> Option<f64> {
        let closest_km = catalog
            .sites_of(letter)
            .map(|s| vp.distance_km(&s.city.coord))
            .fold(f64::INFINITY, f64::min);
        closest_km.is_finite().then(|| {
            // Remove the path-stretch factor: the bound is straight-line
            // light in fibre, the most favourable possible path.
            fiber_rtt_ms(closest_km) / netgeo::PATH_STRETCH
        })
    }

    /// Check one observation.
    pub fn check(
        &self,
        catalog: &RootCatalog,
        letter: RootLetter,
        vp: Coord,
        rtt_ms: f64,
    ) -> SolVerdict {
        let Some(bound) = self.bound_ms(catalog, letter, vp) else {
            return SolVerdict::Plausible;
        };
        let threshold = bound * (1.0 - self.tolerance);
        if rtt_ms < threshold && bound > 1.0 {
            SolVerdict::ImpossiblyFast {
                bound_ms: bound,
                observed_ms: rtt_ms,
            }
        } else {
            SolVerdict::Plausible
        }
    }
}

/// A persistent RTT level-shift detector: compares a trailing baseline
/// window's median against the recent window's; flags when the recent
/// level departs by more than `shift_factor` in either direction for the
/// whole window.
#[derive(Debug, Clone)]
pub struct LevelShiftDetector {
    /// Samples per window.
    pub window: usize,
    /// Multiplicative departure that triggers (e.g. 2.0 = halved/doubled).
    pub shift_factor: f64,
}

impl Default for LevelShiftDetector {
    fn default() -> Self {
        LevelShiftDetector {
            window: 16,
            shift_factor: 2.0,
        }
    }
}

/// A detected shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelShift {
    /// Index in the series where the recent window begins.
    pub at: usize,
    pub baseline_median_ms: f64,
    pub shifted_median_ms: f64,
}

impl LevelShiftDetector {
    /// Scan a series; returns the first detected shift, if any.
    pub fn detect(&self, series: &[f64]) -> Option<LevelShift> {
        let w = self.window;
        if series.len() < 2 * w {
            return None;
        }
        for start in w..=(series.len() - w) {
            let baseline = median(&series[start - w..start]);
            let recent = median(&series[start..start + w]);
            if baseline <= 0.0 {
                continue;
            }
            let ratio = recent / baseline;
            if ratio >= self.shift_factor || ratio <= 1.0 / self.shift_factor {
                return Some(LevelShift {
                    at: start,
                    baseline_median_ms: baseline,
                    shifted_median_ms: recent,
                });
            }
        }
        None
    }
}

fn median(v: &[f64]) -> f64 {
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN RTTs"));
    s[s.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgeo::CityDb;
    use netsim::{Topology, TopologyConfig};
    use rss::catalog::{RootCatalog, WorldConfig};

    fn catalog() -> RootCatalog {
        let mut t = Topology::generate(&TopologyConfig::default());
        RootCatalog::build(&mut t, &WorldConfig::default())
    }

    #[test]
    fn plausible_rtts_pass() {
        let cat = catalog();
        let check = SpeedOfLightCheck::default();
        let vp = CityDb::by_name("frankfurt").unwrap().coord;
        // 30 ms from Frankfurt to some European site: plausible.
        assert_eq!(
            check.check(&cat, RootLetter::K, vp, 30.0),
            SolVerdict::Plausible
        );
    }

    #[test]
    fn impossibly_fast_answer_flagged() {
        let cat = catalog();
        let check = SpeedOfLightCheck::default();
        // b.root has no Africa sites: from Gaborone the closest is far;
        // an answer in 0.5 ms is physically impossible.
        let vp = CityDb::by_name("gaborone").unwrap().coord;
        let bound = check.bound_ms(&cat, RootLetter::B, vp).unwrap();
        assert!(bound > 10.0, "bound {bound}");
        match check.check(&cat, RootLetter::B, vp, 0.5) {
            SolVerdict::ImpossiblyFast {
                bound_ms,
                observed_ms,
            } => {
                assert!(observed_ms < bound_ms);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn local_site_makes_fast_answers_legitimate() {
        // f.root has sites nearly everywhere: a 2 ms answer in Frankfurt is
        // fine because a site is in town.
        let cat = catalog();
        let check = SpeedOfLightCheck::default();
        let vp = CityDb::by_name("frankfurt").unwrap().coord;
        assert_eq!(
            check.check(&cat, RootLetter::F, vp, 2.0),
            SolVerdict::Plausible
        );
    }

    #[test]
    fn level_shift_detected_on_step() {
        let detector = LevelShiftDetector::default();
        let mut series = vec![20.0; 40];
        for v in series.iter_mut().skip(20) {
            *v = 90.0;
        }
        let shift = detector.detect(&series).expect("step detected");
        // The detector fires as soon as the recent window's *median*
        // crosses — up to half a window before the true change point.
        assert!((12..=20).contains(&shift.at), "at {}", shift.at);
        assert!(shift.shifted_median_ms > shift.baseline_median_ms * 2.0);
    }

    #[test]
    fn level_shift_detects_drops_too() {
        // An interceptor answering locally makes RTT *drop* persistently.
        let detector = LevelShiftDetector::default();
        let mut series = vec![80.0; 40];
        for v in series.iter_mut().skip(20) {
            *v = 5.0;
        }
        assert!(detector.detect(&series).is_some());
    }

    #[test]
    fn jitter_alone_does_not_trigger() {
        let detector = LevelShiftDetector::default();
        // ±20% wobble around 50 ms.
        let series: Vec<f64> = (0..64)
            .map(|i| 50.0 * (1.0 + 0.2 * ((i as f64 * 0.7).sin())))
            .collect();
        assert_eq!(detector.detect(&series), None);
    }

    #[test]
    fn short_series_is_none() {
        let detector = LevelShiftDetector::default();
        assert_eq!(detector.detect(&[10.0; 8]), None);
    }
}
