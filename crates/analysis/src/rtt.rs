//! RTT by continent, letter and address family (§6, Figures 6/14/15).
//!
//! Produces the distribution summaries behind the paper's violin/box plots
//! and the per-region v4-vs-v6 comparisons (a.root in South America,
//! i.root in North America, l.root in Africa, …).

use crate::stats::DistSummary;
use netgeo::Region;
use netsim::Family;
use vantage::population::Population;
use vantage::records::{ProbeRecord, Target};

/// RTT summaries per `[region][target][family]`.
#[derive(Debug, Clone)]
pub struct RttByRegion {
    pub targets: Vec<Target>,
    /// `summaries[region][target_idx][family]`.
    pub summaries: Vec<Vec<[Option<DistSummary>; 2]>>,
}

impl RttByRegion {
    /// Aggregate RTT samples from the probe stream.
    pub fn compute(population: &Population, probes: &[ProbeRecord]) -> RttByRegion {
        let targets = Target::all();
        let t_index = |t: &Target| targets.iter().position(|x| x == t).expect("known target");
        // samples[region][target][family]
        let mut samples: Vec<Vec<[Vec<f64>; 2]>> =
            vec![vec![[Vec::new(), Vec::new()]; targets.len()]; 6];
        for p in probes {
            let Some(rtt) = p.rtt_ms else { continue };
            let region = population.get(p.vp).region;
            samples[region.index()][t_index(&p.target)][p.family.index()].push(rtt);
        }
        let summaries = samples
            .into_iter()
            .map(|per_target| {
                per_target
                    .into_iter()
                    .map(|[v4, v6]| [DistSummary::from_samples(v4), DistSummary::from_samples(v6)])
                    .collect()
            })
            .collect();
        RttByRegion { targets, summaries }
    }

    /// Summary for (region, target, family).
    pub fn get(&self, region: Region, target: Target, family: Family) -> Option<&DistSummary> {
        let ti = self.targets.iter().position(|t| *t == target)?;
        self.summaries[region.index()][ti][family.index()].as_ref()
    }

    /// v4-mean minus v6-mean for one (region, target): positive means IPv6
    /// is faster there.
    pub fn v4_v6_gap_ms(&self, region: Region, target: Target) -> Option<f64> {
        let v4 = self.get(region, target, Family::V4)?;
        let v6 = self.get(region, target, Family::V6)?;
        Some(v4.mean - v6.mean)
    }

    /// Render the Figure 6 equivalent for a set of regions.
    pub fn render_fig6(&self, regions: &[Region]) -> String {
        let mut out =
            String::from("Figure 6: RTTs of requests by continent (mean/median/p25-p75 ms)\n");
        for region in regions {
            out.push_str(&format!("-- {region} --\n"));
            for (ti, target) in self.targets.iter().enumerate() {
                let mut line = format!("  {:14}", target.label());
                for family in Family::BOTH {
                    match &self.summaries[region.index()][ti][family.index()] {
                        Some(s) => line.push_str(&format!(
                            " | {}: {:7.1} {:7.1} [{:6.1}-{:6.1}] n={:6}",
                            family.label(),
                            s.mean,
                            s.median,
                            s.p25,
                            s.p75,
                            s.n
                        )),
                        None => line.push_str(&format!(" | {}: (no data)", family.label())),
                    }
                }
                line.push('\n');
                out.push_str(&line);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss::{BRootPhase, RootLetter};
    use vantage::{
        MeasurementConfig, MeasurementEngine, Schedule, VecSink, World, WorldBuildConfig,
    };

    fn run() -> (World, Vec<ProbeRecord>) {
        let world = World::build(&WorldBuildConfig::tiny());
        let engine = MeasurementEngine::new(
            &world,
            MeasurementConfig {
                schedule: Schedule::subsampled(150),
                ..Default::default()
            },
        );
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        (world, sink.probes)
    }

    fn target(letter: RootLetter) -> Target {
        Target {
            letter,
            b_phase: BRootPhase::Old,
        }
    }

    #[test]
    fn summaries_exist_for_populated_regions() {
        let (world, probes) = run();
        let r = RttByRegion::compute(&world.population, &probes);
        // Europe has many VPs in the tiny world.
        for letter in [RootLetter::A, RootLetter::K, RootLetter::M] {
            assert!(
                r.get(Region::Europe, target(letter), Family::V4).is_some(),
                "{letter}"
            );
        }
    }

    #[test]
    fn rtt_magnitudes_sane() {
        let (world, probes) = run();
        let r = RttByRegion::compute(&world.population, &probes);
        for region in Region::ALL {
            for t in &r.targets {
                for family in Family::BOTH {
                    if let Some(s) = r.get(region, *t, family) {
                        assert!(s.min > 0.0);
                        assert!(
                            s.max < 2_000.0,
                            "{region} {} {family}: {}",
                            t.label(),
                            s.max
                        );
                        assert!(s.p25 <= s.median && s.median <= s.p75);
                    }
                }
            }
        }
    }

    #[test]
    fn large_deployments_have_lower_rtt() {
        // Koch et al. / the paper: bigger deployments offer better RTTs.
        let (world, probes) = run();
        let r = RttByRegion::compute(&world.population, &probes);
        let med = |letter: RootLetter| {
            r.get(Region::Europe, target(letter), Family::V4)
                .map(|s| s.median)
                .unwrap_or(f64::NAN)
        };
        // f.root (345 sites) vs b.root (6 sites) in Europe.
        assert!(
            med(RootLetter::F) < med(RootLetter::B),
            "f {} vs b {}",
            med(RootLetter::F),
            med(RootLetter::B)
        );
    }

    #[test]
    fn gap_is_antisymmetric_in_definition() {
        let (world, probes) = run();
        let r = RttByRegion::compute(&world.population, &probes);
        if let (Some(gap), Some(v4), Some(v6)) = (
            r.v4_v6_gap_ms(Region::Europe, target(RootLetter::K)),
            r.get(Region::Europe, target(RootLetter::K), Family::V4),
            r.get(Region::Europe, target(RootLetter::K), Family::V6),
        ) {
            assert!((gap - (v4.mean - v6.mean)).abs() < 1e-9);
        }
    }

    #[test]
    fn render_contains_regions_and_letters() {
        let (world, probes) = run();
        let r = RttByRegion::compute(&world.population, &probes);
        let txt = r.render_fig6(&[Region::Europe, Region::Africa]);
        assert!(txt.contains("Europe"));
        assert!(txt.contains("Africa"));
        assert!(txt.contains("b.root (new)"));
    }
}
