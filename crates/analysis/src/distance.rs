//! Distance inflation (§6, Figure 5): for each request, compare the
//! distance from the VP to the geographically closest *global* site of the
//! deployment with the distance to the site that actually answered.
//!
//! Requests routed to their closest global site fall on the diagonal;
//! requests at a closer local site fall below; requests routed to a more
//! distant instance fall above.

use netsim::anycast::SiteScope;
use netsim::Family;
use rss::catalog::RootCatalog;
use vantage::population::Population;
use vantage::records::{ProbeRecord, Target};

/// One Figure 5 point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistancePoint {
    /// Distance to the closest global site (km).
    pub closest_global_km: f64,
    /// Distance to the answering site (km).
    pub actual_km: f64,
}

impl DistancePoint {
    /// On/below the diagonal (within `slack_km`): the request reached its
    /// closest global site or something even closer (a local site).
    pub fn is_optimal(&self, slack_km: f64) -> bool {
        self.actual_km <= self.closest_global_km + slack_km
    }

    /// Extra distance over optimal (0 when below the diagonal).
    pub fn inflation_km(&self) -> f64 {
        (self.actual_km - self.closest_global_km).max(0.0)
    }
}

/// Distance analysis for one (target, family).
#[derive(Debug, Clone)]
pub struct DistanceResult {
    pub target: Target,
    pub family: Family,
    pub points: Vec<DistancePoint>,
    /// Per-VP mean inflation (the per-client view in §6).
    pub per_vp_inflation_km: Vec<f64>,
}

impl DistanceResult {
    /// Compute from the probe stream.
    pub fn compute(
        catalog: &RootCatalog,
        population: &Population,
        probes: &[ProbeRecord],
        target: Target,
        family: Family,
    ) -> DistanceResult {
        let letter = target.letter;
        // Pre-compute global site coordinates for the letter.
        let globals: Vec<netgeo::Coord> = catalog
            .sites_of(letter)
            .filter(|s| s.scope == SiteScope::Global)
            .map(|s| s.city.coord)
            .collect();
        let mut points = Vec::new();
        let mut per_vp: std::collections::HashMap<vantage::population::VpId, (f64, u32)> =
            std::collections::HashMap::new();
        for p in probes {
            if p.target != target || p.family != family {
                continue;
            }
            let Some(site) = p.site else { continue };
            let vp = population.get(p.vp);
            let closest = globals
                .iter()
                .map(|c| vp.coord.distance_km(c))
                .fold(f64::INFINITY, f64::min);
            if !closest.is_finite() {
                continue;
            }
            let row = catalog.site(letter, site);
            let actual = vp.coord.distance_km(&row.city.coord);
            let pt = DistancePoint {
                closest_global_km: closest,
                actual_km: actual,
            };
            points.push(pt);
            let e = per_vp.entry(p.vp).or_insert((0.0, 0));
            e.0 += pt.inflation_km();
            e.1 += 1;
        }
        let per_vp_inflation_km = per_vp.values().map(|(sum, n)| sum / *n as f64).collect();
        DistanceResult {
            target,
            family,
            points,
            per_vp_inflation_km,
        }
    }

    /// Fraction of requests on/below the diagonal (closest global or
    /// closer local). Paper: 78–82% for b/m.root.
    pub fn optimal_fraction(&self, slack_km: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let hits = self
            .points
            .iter()
            .filter(|p| p.is_optimal(slack_km))
            .count();
        hits as f64 / self.points.len() as f64
    }

    /// Fraction of *clients* whose mean extra distance is below `km`.
    /// Paper: 79.5% of b.root clients under 1,000 km.
    pub fn clients_below_inflation(&self, km: f64) -> f64 {
        if self.per_vp_inflation_km.is_empty() {
            return 0.0;
        }
        let hits = self.per_vp_inflation_km.iter().filter(|&&v| v < km).count();
        hits as f64 / self.per_vp_inflation_km.len() as f64
    }

    /// Maximum inflation observed (paper: tails up to ~15,000 km).
    pub fn max_inflation_km(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.inflation_km())
            .fold(0.0, f64::max)
    }

    /// Render one Figure 5 panel.
    pub fn render(&self) -> String {
        format!(
            "Figure 5 [{} {}]: {} requests | optimal(<=100km slack): {:.1}% | \
             clients <1000km extra: {:.1}% | max inflation: {:.0} km\n",
            self.target.label(),
            self.family.label(),
            self.points.len(),
            self.optimal_fraction(100.0) * 100.0,
            self.clients_below_inflation(1000.0) * 100.0,
            self.max_inflation_km()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss::{BRootPhase, RootLetter};
    use vantage::{
        MeasurementConfig, MeasurementEngine, Schedule, VecSink, World, WorldBuildConfig,
    };

    fn run() -> (World, Vec<ProbeRecord>) {
        let world = World::build(&WorldBuildConfig::tiny());
        let engine = MeasurementEngine::new(
            &world,
            MeasurementConfig {
                schedule: Schedule::subsampled(150),
                ..Default::default()
            },
        );
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        (world, sink.probes)
    }

    fn target(letter: RootLetter) -> Target {
        Target {
            letter,
            b_phase: BRootPhase::Old,
        }
    }

    #[test]
    fn produces_points_for_measured_targets() {
        let (world, probes) = run();
        for letter in [RootLetter::B, RootLetter::M] {
            for family in Family::BOTH {
                let r = DistanceResult::compute(
                    &world.catalog,
                    &world.population,
                    &probes,
                    target(letter),
                    family,
                );
                assert!(!r.points.is_empty(), "{letter} {family}");
            }
        }
    }

    #[test]
    fn majority_of_requests_near_optimal() {
        // Shape target (Figure 5): for the sparse deployments the paper
        // plots (b.root, m.root), ~80% of requests land on/below the
        // diagonal.
        let (world, probes) = run();
        for letter in [RootLetter::B, RootLetter::M] {
            let r = DistanceResult::compute(
                &world.catalog,
                &world.population,
                &probes,
                target(letter),
                Family::V4,
            );
            let frac = r.optimal_fraction(300.0);
            assert!(frac > 0.6, "{letter}: optimal fraction {frac}");
        }
    }

    #[test]
    fn dense_deployments_less_often_optimal() {
        // Koch et al. / §2: large deployments are less likely to route a
        // client to the geographically closest replica.
        let (world, probes) = run();
        let frac = |letter: RootLetter| {
            DistanceResult::compute(
                &world.catalog,
                &world.population,
                &probes,
                target(letter),
                Family::V4,
            )
            .optimal_fraction(300.0)
        };
        assert!(frac(RootLetter::B) > frac(RootLetter::L));
    }

    #[test]
    fn inflation_nonnegative_and_bounded() {
        let (world, probes) = run();
        let r = DistanceResult::compute(
            &world.catalog,
            &world.population,
            &probes,
            target(RootLetter::K),
            Family::V4,
        );
        for p in &r.points {
            assert!(p.inflation_km() >= 0.0);
            assert!(p.actual_km < 21_000.0, "over half circumference");
        }
    }

    #[test]
    fn small_deployment_has_larger_closest_distance() {
        // b.root (6 sites) is geometrically farther from clients than
        // l.root (132 sites): the closest-global distance must be larger.
        let (world, probes) = run();
        let mean_closest = |letter: RootLetter| {
            let r = DistanceResult::compute(
                &world.catalog,
                &world.population,
                &probes,
                target(letter),
                Family::V4,
            );
            let s: f64 = r.points.iter().map(|p| p.closest_global_km).sum();
            s / r.points.len() as f64
        };
        assert!(mean_closest(RootLetter::B) > mean_closest(RootLetter::L));
    }

    #[test]
    fn render_mentions_target() {
        let (world, probes) = run();
        let r = DistanceResult::compute(
            &world.catalog,
            &world.population,
            &probes,
            target(RootLetter::M),
            Family::V6,
        );
        let txt = r.render();
        assert!(txt.contains("m.root"));
        assert!(txt.contains("IPv6"));
    }
}
