//! Traffic-shift analyses over the passive flow streams (Figures 7, 9, 12,
//! 13): normalized per-bucket traffic shares, b.root old/new splits per
//! family, and in-family shift ratios.

use netsim::Family;
use rss::{BRootPhase, RootLetter};
use std::collections::BTreeMap;
use traces::flows::{DayBucket, FlowObservation, FlowTarget};

/// A normalized traffic series: per time bucket, the share of each key.
#[derive(Debug, Clone)]
pub struct TrafficSeries<K: Ord + Clone> {
    /// bucket -> (key -> share). Shares per bucket sum to 1 (when any
    /// traffic exists).
    pub buckets: BTreeMap<(DayBucket, Option<u8>), BTreeMap<K, f64>>,
}

impl<K: Ord + Clone> TrafficSeries<K> {
    /// Build by classifying each flow into a key.
    pub fn build<F>(flows: &[FlowObservation], mut classify: F) -> TrafficSeries<K>
    where
        F: FnMut(&FlowObservation) -> Option<K>,
    {
        let mut raw: BTreeMap<(DayBucket, Option<u8>), BTreeMap<K, f64>> = BTreeMap::new();
        for f in flows {
            let Some(key) = classify(f) else { continue };
            *raw.entry((f.day, f.hour))
                .or_default()
                .entry(key)
                .or_insert(0.0) += f.flows as f64;
        }
        // Normalize per bucket.
        for shares in raw.values_mut() {
            let total: f64 = shares.values().sum();
            if total > 0.0 {
                for v in shares.values_mut() {
                    *v /= total;
                }
            }
        }
        TrafficSeries { buckets: raw }
    }

    /// Mean share of `key` across buckets in `[from_day, until_day)`.
    pub fn mean_share(&self, key: &K, from_day: DayBucket, until_day: DayBucket) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for ((day, _), shares) in &self.buckets {
            if *day >= from_day && *day < until_day {
                sum += shares.get(key).copied().unwrap_or(0.0);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// The four b.root sub-targets of Figures 7/9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BKey {
    V4Old,
    V4New,
    V6Old,
    V6New,
}

impl BKey {
    /// Classification of a flow, `None` for non-b traffic.
    pub fn of(f: &FlowObservation) -> Option<BKey> {
        if f.target.letter != RootLetter::B {
            return None;
        }
        Some(match (f.family, f.target.b_phase) {
            (Family::V4, BRootPhase::Old) => BKey::V4Old,
            (Family::V4, BRootPhase::New) => BKey::V4New,
            (Family::V6, BRootPhase::Old) => BKey::V6Old,
            (Family::V6, BRootPhase::New) => BKey::V6New,
        })
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            BKey::V4Old => "V4old",
            BKey::V4New => "V4new",
            BKey::V6Old => "V6old",
            BKey::V6New => "V6new",
        }
    }
}

/// b.root traffic split analysis (Figure 7 at the ISP, Figure 9 per IXP
/// region).
#[derive(Debug, Clone)]
pub struct BRootShift {
    pub series: TrafficSeries<BKey>,
}

impl BRootShift {
    /// Build from flows.
    pub fn compute(flows: &[FlowObservation]) -> BRootShift {
        BRootShift {
            series: TrafficSeries::build(flows, BKey::of),
        }
    }

    /// In-family shift ratio over a window: new / (new + old), per family.
    /// Paper (ISP, Feb-2024): v4 87.1%, v6 96.3%.
    pub fn in_family_shift(
        &self,
        family: Family,
        from_day: DayBucket,
        until_day: DayBucket,
    ) -> f64 {
        let (new_key, old_key) = match family {
            Family::V4 => (BKey::V4New, BKey::V4Old),
            Family::V6 => (BKey::V6New, BKey::V6Old),
        };
        let mut new_sum = 0.0;
        let mut old_sum = 0.0;
        for ((day, _), shares) in &self.series.buckets {
            if *day >= from_day && *day < until_day {
                new_sum += shares.get(&new_key).copied().unwrap_or(0.0);
                old_sum += shares.get(&old_key).copied().unwrap_or(0.0);
            }
        }
        if new_sum + old_sum == 0.0 {
            0.0
        } else {
            new_sum / (new_sum + old_sum)
        }
    }

    /// Render the Figure 7/9 equivalent over a window.
    pub fn render(&self, title: &str, from_day: DayBucket, until_day: DayBucket) -> String {
        let mut out = format!("{title}\n  key    mean-share\n");
        for key in [BKey::V4New, BKey::V4Old, BKey::V6New, BKey::V6Old] {
            out.push_str(&format!(
                "  {:6} {:6.3}\n",
                key.label(),
                self.series.mean_share(&key, from_day, until_day)
            ));
        }
        out.push_str(&format!(
            "  in-family shift: v4 {:.1}%  v6 {:.1}%\n",
            self.in_family_shift(Family::V4, from_day, until_day) * 100.0,
            self.in_family_shift(Family::V6, from_day, until_day) * 100.0,
        ));
        out
    }
}

/// All-roots traffic shares (Figures 12/13).
pub fn all_roots_series(flows: &[FlowObservation]) -> TrafficSeries<RootLetter> {
    TrafficSeries::build(flows, |f| Some(f.target.letter))
}

/// Render the Figure 12/13 equivalent: per-letter mean shares in a window.
pub fn render_all_roots(
    series: &TrafficSeries<RootLetter>,
    title: &str,
    from_day: DayBucket,
    until_day: DayBucket,
) -> String {
    let mut out = format!("{title}\n");
    for letter in RootLetter::ALL {
        out.push_str(&format!(
            "  {} {:6.3}\n",
            letter.label(),
            series.mean_share(&letter, from_day, until_day)
        ));
    }
    out
}

/// Classify flows per (target, family) for custom figures.
pub fn target_family_key(f: &FlowObservation) -> Option<(FlowTarget, Family)> {
    Some((f.target, f.family))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_crypto::validity::timestamp_from_ymd as ts;
    use netgeo::Region;
    use traces::gen::{generate_flows, ObservationWindow, TraceConfig};

    fn isp_flows() -> Vec<FlowObservation> {
        let mut cfg = TraceConfig::isp(3);
        cfg.population.clients_per_family = 250;
        generate_flows(&cfg, &ObservationWindow::isp_windows())
    }

    fn day(s: &str) -> DayBucket {
        DayBucket::of(ts(s).unwrap())
    }

    #[test]
    fn shares_normalized_per_bucket() {
        let flows = isp_flows();
        let shift = BRootShift::compute(&flows);
        for shares in shift.series.buckets.values() {
            let sum: f64 = shares.values().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    fn pre_change_old_dominates_post_change_new() {
        let flows = isp_flows();
        let shift = BRootShift::compute(&flows);
        let pre_old =
            shift
                .series
                .mean_share(&BKey::V4Old, day("20231008000000"), day("20231009000000"));
        let post_new =
            shift
                .series
                .mean_share(&BKey::V4New, day("20240205000000"), day("20240304000000"));
        assert!(pre_old > 0.5, "pre old v4 share {pre_old}");
        assert!(post_new > 0.5, "post new v4 share {post_new}");
    }

    #[test]
    fn in_family_shift_v6_exceeds_v4() {
        // Paper: 87.1% v4 vs 96.3% v6 at the ISP, Feb 2024.
        let flows = isp_flows();
        let shift = BRootShift::compute(&flows);
        let from = day("20240205000000");
        let until = day("20240304000000");
        let v4 = shift.in_family_shift(Family::V4, from, until);
        let v6 = shift.in_family_shift(Family::V6, from, until);
        assert!(v6 > v4, "v6 {v6} <= v4 {v4}");
        // Wide bounds: this test runs on a small client sample where the
        // heavy-tailed rates add variance. The full-scale calibration
        // (examples/broot_renumbering) lands at ≈88% / ≈93%.
        assert!(v4 > 0.55 && v4 < 0.97, "v4 shift {v4}");
        assert!(v6 > 0.85, "v6 shift {v6}");
    }

    #[test]
    fn ixp_eu_shifts_more_than_na() {
        // Paper Figure 9: EU ≈60.8% vs NA ≈16.5% of v6 traffic shifted.
        let window = ObservationWindow::ixp_windows()[0];
        let shift_of = |region: Region| {
            let mut cfg = TraceConfig::ixp(region, 5);
            cfg.population.clients_per_family = 250;
            let flows = generate_flows(&cfg, &[window]);
            let shift = BRootShift::compute(&flows);
            shift.in_family_shift(Family::V6, day("20231128000000"), day("20231228000000"))
        };
        let eu = shift_of(Region::Europe);
        let na = shift_of(Region::NorthAmerica);
        assert!(eu > 0.4, "eu {eu}");
        assert!(na < 0.4, "na {na}");
        assert!(eu > na + 0.2);
    }

    #[test]
    fn all_roots_shares_sane() {
        let flows = isp_flows();
        let series = all_roots_series(&flows);
        let from = day("20240205000000");
        let until = day("20240304000000");
        // b.root total share near the paper's ≈4.5-4.9%.
        let b = series.mean_share(&RootLetter::B, from, until);
        assert!((0.02..0.09).contains(&b), "b share {b}");
        // Shares sum to ~1.
        let sum: f64 = RootLetter::ALL
            .iter()
            .map(|l| series.mean_share(l, from, until))
            .sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn ixp_series_dominated_by_k_d() {
        let mut cfg = TraceConfig::ixp(Region::Europe, 8);
        cfg.population.clients_per_family = 250;
        let flows = generate_flows(&cfg, &ObservationWindow::ixp_windows());
        let series = all_roots_series(&flows);
        let from = day("20231026000000");
        let until = day("20231228000000");
        let kd = series.mean_share(&RootLetter::K, from, until)
            + series.mean_share(&RootLetter::D, from, until);
        assert!(kd > 0.4, "k+d {kd}");
    }

    #[test]
    fn render_outputs_labels() {
        let flows = isp_flows();
        let shift = BRootShift::compute(&flows);
        let txt = shift.render("Figure 7", day("20240205000000"), day("20240304000000"));
        assert!(txt.contains("V4new"));
        assert!(txt.contains("in-family shift"));
        let series = all_roots_series(&flows);
        let txt = render_all_roots(
            &series,
            "Figure 12",
            day("20240205000000"),
            day("20240304000000"),
        );
        assert!(txt.contains("k.root"));
    }
}
