//! Shared catchment/RTT aggregation and deployment delta scoring.
//!
//! Three consumers observe "a client in some region reached some site (or
//! nothing) at some RTT" and want the same aggregates — catchment shares,
//! loss, per-region/family mean RTT: the scenario epoch diff
//! ([`crate::epochs::EpochStats`]), the `anycast_explorer` example's
//! all-VP sweep, and the what-if planner's candidate scoring. The
//! [`CatchmentAccum`] here is that one accumulator.
//!
//! On top of it, [`DeploymentSummary`] adds the locality axis (fraction of
//! answered clients served from a site in their own region) and
//! [`DeploymentSummary::delta`] produces the [`SummaryDelta`] the planner
//! ranks candidates by. All arithmetic is plain streaming sums in
//! observation order, so two summaries built from bit-identical inputs
//! subtract to *exactly* zero — the planner's identity-candidate
//! invariant rests on that.

use netgeo::Region;
use netsim::Family;
use std::collections::BTreeMap;

/// Streaming aggregator of per-client observations for one deployment
/// state: who answered (catchment + loss) and at what RTT (per
/// region/family means).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatchmentAccum {
    /// Answered observations per site.
    served: BTreeMap<u32, usize>,
    lost: usize,
    total: usize,
    /// RTT accumulator per `[region][family]`: (sum_ms, samples).
    rtt: [[(f64, usize); 2]; 6],
}

impl CatchmentAccum {
    pub fn new() -> CatchmentAccum {
        CatchmentAccum::default()
    }

    /// Record one observation: a client in `region` probing over `family`
    /// reached `site` (`None` = unanswered) with an optional RTT sample.
    pub fn observe(
        &mut self,
        region: Region,
        family: Family,
        site: Option<u32>,
        rtt_ms: Option<f64>,
    ) {
        self.total += 1;
        match site {
            Some(s) => *self.served.entry(s).or_default() += 1,
            None => self.lost += 1,
        }
        if let Some(ms) = rtt_ms {
            let cell = &mut self.rtt[region.index()][family.index()];
            cell.0 += ms;
            cell.1 += 1;
        }
    }

    /// Total observations recorded.
    pub fn observations(&self) -> usize {
        self.total
    }

    /// Observations that went unanswered.
    pub fn lost(&self) -> usize {
        self.lost
    }

    /// Fraction of observations that went unanswered (0 when empty).
    pub fn loss(&self) -> f64 {
        self.lost as f64 / self.total.max(1) as f64
    }

    /// Distinct sites that answered at least one observation.
    pub fn distinct_sites(&self) -> usize {
        self.served.len()
    }

    /// Catchment: fraction of *answered* observations served per site.
    pub fn shares(&self) -> BTreeMap<u32, f64> {
        let answered: usize = self.served.values().sum();
        self.served
            .iter()
            .map(|(&site, &n)| (site, n as f64 / answered.max(1) as f64))
            .collect()
    }

    /// Mean RTT for (region, family), if any samples landed there.
    pub fn rtt_mean(&self, region: Region, family: Family) -> Option<f64> {
        let (sum, n) = self.rtt[region.index()][family.index()];
        (n > 0).then(|| sum / n as f64)
    }

    /// Sample-weighted mean RTT across all regions for one family.
    pub fn rtt_global_mean(&self, family: Family) -> Option<f64> {
        let (sum, n) = self
            .rtt
            .iter()
            .map(|per_family| per_family[family.index()])
            .fold((0.0, 0usize), |(s, c), (sum, n)| (s + sum, c + n));
        (n > 0).then(|| sum / n as f64)
    }
}

/// Total-variation distance between two catchment share maps, in [0, 1]:
/// the fraction of traffic that moved to a different site. 0 = identical
/// catchments, 1 = fully disjoint.
pub fn catchment_shift(a: &BTreeMap<u32, f64>, b: &BTreeMap<u32, f64>) -> f64 {
    let mut sites: Vec<u32> = a.keys().copied().collect();
    sites.extend(b.keys().copied());
    sites.sort_unstable();
    sites.dedup();
    0.5 * sites
        .iter()
        .map(|s| {
            let x = a.get(s).copied().unwrap_or(0.0);
            let y = b.get(s).copied().unwrap_or(0.0);
            (x - y).abs()
        })
        .sum::<f64>()
}

/// The serving site of one answered observation, as the summary needs it:
/// which site, where it is, and the modelled RTT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedSite {
    pub site: u32,
    /// The serving facility's region (for the locality axis).
    pub region: Region,
    pub rtt_ms: f64,
}

/// One deployment state scored over a client population: catchment, RTT,
/// and catchment *locality* (answered clients served in-region).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeploymentSummary {
    pub accum: CatchmentAccum,
    /// Per client region: (served in-region, answered).
    locality: [(usize, usize); 6],
}

impl DeploymentSummary {
    pub fn new() -> DeploymentSummary {
        DeploymentSummary::default()
    }

    /// Record one client observation. `None` = unanswered.
    pub fn observe(&mut self, client_region: Region, family: Family, served: Option<ServedSite>) {
        match served {
            Some(s) => {
                self.accum
                    .observe(client_region, family, Some(s.site), Some(s.rtt_ms));
                let cell = &mut self.locality[client_region.index()];
                cell.1 += 1;
                if s.region == client_region {
                    cell.0 += 1;
                }
            }
            None => self.accum.observe(client_region, family, None, None),
        }
    }

    /// In-region-served fraction for clients of `region`; `None` when no
    /// client there was answered.
    pub fn locality(&self, region: Region) -> Option<f64> {
        let (local, answered) = self.locality[region.index()];
        (answered > 0).then(|| local as f64 / answered as f64)
    }

    /// Answered-weighted in-region-served fraction over all clients.
    pub fn locality_global(&self) -> f64 {
        let (local, answered) = self
            .locality
            .iter()
            .fold((0usize, 0usize), |(l, a), &(lr, ar)| (l + lr, a + ar));
        local as f64 / answered.max(1) as f64
    }

    /// Score this summary against `baseline`. Every field is a plain
    /// difference of the two summaries' aggregates, so a summary diffed
    /// against a bit-identical twin yields exact zeros.
    pub fn delta(&self, baseline: &DeploymentSummary) -> SummaryDelta {
        let rtt_of = |f: Family| match (
            self.accum.rtt_global_mean(f),
            baseline.accum.rtt_global_mean(f),
        ) {
            (Some(a), Some(b)) => Some(a - b),
            _ => None,
        };
        let mut rtt_region_ms = [[None; 2]; 6];
        let mut locality_region = [None; 6];
        for region in Region::ALL {
            for family in Family::BOTH {
                if let (Some(a), Some(b)) = (
                    self.accum.rtt_mean(region, family),
                    baseline.accum.rtt_mean(region, family),
                ) {
                    rtt_region_ms[region.index()][family.index()] = Some(a - b);
                }
            }
            if let (Some(a), Some(b)) = (self.locality(region), baseline.locality(region)) {
                locality_region[region.index()] = Some(a - b);
            }
        }
        SummaryDelta {
            rtt_ms: [rtt_of(Family::V4), rtt_of(Family::V6)],
            rtt_region_ms,
            locality: self.locality_global() - baseline.locality_global(),
            locality_region,
            loss: self.accum.loss() - baseline.accum.loss(),
            shift: catchment_shift(&self.accum.shares(), &baseline.accum.shares()),
        }
    }
}

/// How a candidate deployment differs from the baseline: RTT per family
/// (global and per-region), locality, loss, and catchment shift. Negative
/// RTT/loss deltas and positive locality deltas are improvements.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryDelta {
    /// Global mean-RTT delta (ms) per family index; `None` when either
    /// side lacks samples for that family.
    pub rtt_ms: [Option<f64>; 2],
    /// Mean-RTT delta (ms) per `[region][family]`.
    pub rtt_region_ms: [[Option<f64>; 2]; 6],
    /// Global in-region-served fraction delta.
    pub locality: f64,
    /// Per-region in-region-served fraction delta.
    pub locality_region: [Option<f64>; 6],
    /// Unanswered-fraction delta.
    pub loss: f64,
    /// Total-variation distance between the two catchments.
    pub shift: f64,
}

impl SummaryDelta {
    /// Mean of the available global per-family RTT deltas (0 when neither
    /// family has samples) — the scalar RTT axis the planner ranks on.
    pub fn rtt_combined(&self) -> f64 {
        let present: Vec<f64> = self.rtt_ms.iter().flatten().copied().collect();
        if present.is_empty() {
            0.0
        } else {
            present.iter().sum::<f64>() / present.len() as f64
        }
    }

    /// Mean of the available per-family RTT deltas for one region.
    pub fn rtt_region_combined(&self, region: Region) -> Option<f64> {
        let present: Vec<f64> = self.rtt_region_ms[region.index()]
            .iter()
            .flatten()
            .copied()
            .collect();
        (!present.is_empty()).then(|| present.iter().sum::<f64>() / present.len() as f64)
    }

    /// Whether every present field is *exactly* zero — the identity-
    /// candidate invariant (no tolerance: bit-identical inputs must
    /// subtract to 0.0).
    pub fn is_zero(&self) -> bool {
        self.rtt_ms.iter().flatten().all(|&d| d == 0.0)
            && self
                .rtt_region_ms
                .iter()
                .flat_map(|r| r.iter().flatten())
                .all(|&d| d == 0.0)
            && self.locality == 0.0
            && self.locality_region.iter().flatten().all(|&d| d == 0.0)
            && self.loss == 0.0
            && self.shift == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_aggregates_shares_loss_and_rtt() {
        let mut a = CatchmentAccum::new();
        let r = Region::Europe;
        a.observe(r, Family::V4, Some(1), Some(10.0));
        a.observe(r, Family::V4, Some(1), Some(30.0));
        a.observe(r, Family::V4, Some(2), None);
        a.observe(r, Family::V4, None, None);
        assert_eq!(a.observations(), 4);
        assert_eq!(a.lost(), 1);
        assert!((a.loss() - 0.25).abs() < 1e-12);
        assert_eq!(a.distinct_sites(), 2);
        let shares = a.shares();
        assert!((shares[&1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.rtt_mean(r, Family::V4), Some(20.0));
        assert_eq!(a.rtt_mean(r, Family::V6), None);
        assert_eq!(a.rtt_global_mean(Family::V4), Some(20.0));
    }

    #[test]
    fn shift_is_total_variation() {
        let mk = |sites: &[u32]| {
            let mut a = CatchmentAccum::new();
            for &s in sites {
                a.observe(Region::Asia, Family::V4, Some(s), None);
            }
            a.shares()
        };
        let a = mk(&[1, 1, 2, 2]);
        assert!(catchment_shift(&a, &mk(&[1, 2, 1, 2])).abs() < 1e-12);
        assert!((catchment_shift(&a, &mk(&[1, 1, 3, 3])) - 0.5).abs() < 1e-12);
        assert!((catchment_shift(&a, &mk(&[4, 4, 5, 5])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_tracks_locality_and_identity_delta_is_exactly_zero() {
        let mut s = DeploymentSummary::new();
        let served = |site, region, ms| {
            Some(ServedSite {
                site,
                region,
                rtt_ms: ms,
            })
        };
        s.observe(Region::Europe, Family::V4, served(0, Region::Europe, 10.0));
        s.observe(Region::Europe, Family::V4, served(1, Region::Asia, 90.0));
        s.observe(Region::Asia, Family::V6, served(1, Region::Asia, 40.0));
        s.observe(Region::Africa, Family::V4, None);
        assert_eq!(s.locality(Region::Europe), Some(0.5));
        assert_eq!(s.locality(Region::Asia), Some(1.0));
        assert_eq!(s.locality(Region::Africa), None);
        assert!((s.locality_global() - 2.0 / 3.0).abs() < 1e-12);
        let d = s.delta(&s.clone());
        assert!(d.is_zero(), "{d:?}");
        assert_eq!(d.rtt_combined(), 0.0);
    }

    #[test]
    fn delta_points_the_right_way() {
        let served = |site, region, ms| {
            Some(ServedSite {
                site,
                region,
                rtt_ms: ms,
            })
        };
        let mut base = DeploymentSummary::new();
        base.observe(Region::Europe, Family::V4, served(0, Region::Asia, 100.0));
        let mut cand = DeploymentSummary::new();
        cand.observe(Region::Europe, Family::V4, served(1, Region::Europe, 20.0));
        let d = cand.delta(&base);
        assert_eq!(d.rtt_ms[0], Some(-80.0));
        assert_eq!(d.rtt_ms[1], None);
        assert_eq!(d.rtt_combined(), -80.0);
        assert_eq!(d.rtt_region_combined(Region::Europe), Some(-80.0));
        assert_eq!(d.rtt_region_combined(Region::Oceania), None);
        assert!((d.locality - 1.0).abs() < 1e-12);
        assert!((d.shift - 1.0).abs() < 1e-12);
        assert!(!d.is_zero());
    }
}
