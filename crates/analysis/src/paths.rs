//! Path analysis — the routing-information perspective §6 calls for.
//!
//! The paper explains its per-region RTT asymmetries by which *transit
//! networks* carry the traffic: the AS6939-analog (open v6 peering) pulls
//! IPv6 traffic onto itself, helping in North America and hurting in
//! Africa/South America; the AS12956-analog carries South American IPv4
//! out of continent. This module quantifies exactly that: for each
//! (region, letter, family), the share of selected paths traversing a
//! given transit AS and the RTT conditional on traversal — the paper's
//! "include routing information" recommendation, implemented.

use crate::stats::DistSummary;
use netgeo::Region;
use netsim::{AsId, Family};
use rss::RootLetter;
use vantage::World;

/// Traversal share and conditional RTT for one (region, letter, family).
#[derive(Debug, Clone)]
pub struct TransitShare {
    pub region: Region,
    pub letter: RootLetter,
    pub family: Family,
    /// VPs whose best path traverses the transit AS.
    pub via_count: usize,
    /// VPs reaching the letter at all.
    pub total: usize,
    /// Base-RTT summary for VPs routed via the transit.
    pub rtt_via: Option<DistSummary>,
    /// Base-RTT summary for VPs routed another way.
    pub rtt_other: Option<DistSummary>,
}

impl TransitShare {
    /// Fraction of paths traversing the transit AS.
    pub fn share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.via_count as f64 / self.total as f64
        }
    }
}

/// Compute traversal shares of `transit` for every region/family of one
/// letter, with conditional base RTTs.
pub fn transit_share(world: &World, letter: RootLetter, transit: AsId) -> Vec<TransitShare> {
    let rtt_model = netsim::RttModel::default();
    let mut out = Vec::new();
    for region in Region::ALL {
        for family in Family::BOTH {
            let table = world.routes(letter, family);
            let mut via = Vec::new();
            let mut other = Vec::new();
            let mut total = 0;
            for vp in world.population.in_region(region) {
                if family == Family::V6 && !vp.has_v6 {
                    continue;
                }
                let Some(best) = table.best(vp.asn) else {
                    continue;
                };
                total += 1;
                let site = world.catalog.deployment(letter).site(best.site);
                let rtt = rtt_model.base_rtt_ms(
                    &world.topology,
                    &world.catalog.facilities,
                    vp.coord,
                    best,
                    site.facility,
                );
                if best.path.contains(&transit) {
                    via.push(rtt);
                } else {
                    other.push(rtt);
                }
            }
            out.push(TransitShare {
                region,
                letter,
                family,
                via_count: via.len(),
                total,
                rtt_via: DistSummary::from_samples(via),
                rtt_other: DistSummary::from_samples(other),
            });
        }
    }
    out
}

/// The §6 case study: per letter, contrast the open-v6-peering backbone's
/// role in IPv4 vs IPv6 routing.
pub fn render_transit_report(world: &World, letters: &[RootLetter]) -> String {
    let transit = world.topology.open_peering_backbone;
    let mut out = format!(
        "§6 routing information: share of best paths via {} (the open-v6-peering backbone)\n",
        world.topology.node(transit).name
    );
    for &letter in letters {
        out.push_str(&format!("-- {} --\n", letter.label()));
        for row in transit_share(world, letter, transit) {
            if row.total == 0 {
                continue;
            }
            let via_ms = row.rtt_via.as_ref().map(|s| s.mean).unwrap_or(f64::NAN);
            let other_ms = row.rtt_other.as_ref().map(|s| s.mean).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "  {:13} {}: {:5.1}% via ({} of {})  rtt via {:7.1} ms / other {:7.1} ms\n",
                row.region.name(),
                row.family.label(),
                row.share() * 100.0,
                row.via_count,
                row.total,
                via_ms,
                other_ms,
            ));
        }
    }
    out
}

/// Path-overlap between families: fraction of VPs whose v4 and v6 best
/// paths to a letter share no transit AS at all — the "different paths"
/// the paper invokes for its RTT asymmetries.
pub fn family_path_divergence(world: &World, letter: RootLetter) -> f64 {
    let v4 = world.routes(letter, Family::V4);
    let v6 = world.routes(letter, Family::V6);
    let mut divergent = 0usize;
    let mut total = 0usize;
    for vp in world.population.vps() {
        if !vp.has_v6 {
            continue;
        }
        let (Some(r4), Some(r6)) = (v4.best(vp.asn), v6.best(vp.asn)) else {
            continue;
        };
        total += 1;
        let shares_any = r4.path.iter().any(|a| r6.path.contains(a));
        if !shares_any {
            divergent += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        divergent as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use vantage::WorldBuildConfig;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| World::build(&WorldBuildConfig::tiny()))
    }

    #[test]
    fn v6_uses_open_backbone_more_than_v4() {
        // The structural claim behind the paper's §6 findings.
        let w = world();
        let transit = w.topology.open_peering_backbone;
        let mut v4_total = 0.0;
        let mut v6_total = 0.0;
        for letter in RootLetter::ALL {
            for row in transit_share(w, letter, transit) {
                match row.family {
                    Family::V4 => v4_total += row.share(),
                    Family::V6 => v6_total += row.share(),
                }
            }
        }
        assert!(
            v6_total > v4_total,
            "v6 share sum {v6_total} <= v4 {v4_total}"
        );
    }

    #[test]
    fn shares_are_fractions() {
        let w = world();
        for row in transit_share(w, RootLetter::L, w.topology.open_peering_backbone) {
            let s = row.share();
            assert!((0.0..=1.0).contains(&s));
            assert!(row.via_count <= row.total);
        }
    }

    #[test]
    fn divergence_is_a_fraction_and_nonzero_somewhere() {
        let w = world();
        let mut any = false;
        for letter in RootLetter::ALL {
            let d = family_path_divergence(w, letter);
            assert!((0.0..=1.0).contains(&d), "{letter}: {d}");
            if d > 0.0 {
                any = true;
            }
        }
        assert!(any, "no letter shows any v4/v6 path divergence");
    }

    #[test]
    fn render_mentions_backbone_and_regions() {
        let w = world();
        let txt = render_transit_report(w, &[RootLetter::I, RootLetter::L]);
        assert!(txt.contains("i.root"));
        assert!(txt.contains("l.root"));
        assert!(txt.contains("via"));
    }
}
