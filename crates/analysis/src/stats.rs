//! Shared numeric helpers: percentiles, eCDFs, and distribution summaries.

/// Percentile of a sample (linear interpolation, `p` in `[0, 1]`).
/// Returns `None` on an empty sample.
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = idx - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Sort a sample in place and return it (convenience for percentile runs).
pub fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    v
}

/// Mean; `None` for empty input.
pub fn mean(v: &[f64]) -> Option<f64> {
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Population standard deviation; `None` for empty input.
pub fn std_dev(v: &[f64]) -> Option<f64> {
    let m = mean(v)?;
    Some((v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt())
}

/// Median of an integer sample.
pub fn median_u64(mut v: Vec<u64>) -> Option<u64> {
    if v.is_empty() {
        return None;
    }
    v.sort_unstable();
    Some(v[v.len() / 2])
}

/// An empirical CDF over integer counts (the paper's Figure 3 shows the
/// complementary form).
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    /// Sorted distinct values.
    pub values: Vec<u64>,
    /// `cdf[i]` = fraction of samples ≤ `values[i]`.
    pub cdf: Vec<f64>,
    /// Sample count.
    pub n: usize,
}

impl Ecdf {
    /// Build from a sample.
    pub fn from_samples(mut samples: Vec<u64>) -> Ecdf {
        samples.sort_unstable();
        let n = samples.len();
        let mut values = Vec::new();
        let mut cdf = Vec::new();
        let mut i = 0;
        while i < n {
            let v = samples[i];
            let mut j = i;
            while j < n && samples[j] == v {
                j += 1;
            }
            values.push(v);
            cdf.push(j as f64 / n as f64);
            i = j;
        }
        Ecdf { values, cdf, n }
    }

    /// Fraction of samples ≤ `x`.
    pub fn at(&self, x: u64) -> f64 {
        match self.values.binary_search(&x) {
            Ok(i) => self.cdf[i],
            Err(0) => 0.0,
            Err(i) => self.cdf[i - 1],
        }
    }

    /// Complementary CDF at `x`: fraction of samples > `x` (the paper plots
    /// "1 - Prop. VPs").
    pub fn ccdf(&self, x: u64) -> f64 {
        1.0 - self.at(x)
    }

    /// Median value.
    pub fn median(&self) -> Option<u64> {
        let target = 0.5;
        for (v, c) in self.values.iter().zip(&self.cdf) {
            if *c >= target {
                return Some(*v);
            }
        }
        self.values.last().copied()
    }
}

/// Five-number-plus summary backing the violin/box plots (Figures 6/14/15).
#[derive(Debug, Clone, PartialEq)]
pub struct DistSummary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub max: f64,
}

impl DistSummary {
    /// Summarize a sample; `None` when empty.
    pub fn from_samples(samples: Vec<f64>) -> Option<DistSummary> {
        if samples.is_empty() {
            return None;
        }
        let s = sorted(samples);
        Some(DistSummary {
            n: s.len(),
            mean: mean(&s).unwrap(),
            std_dev: std_dev(&s).unwrap(),
            min: s[0],
            p25: percentile(&s, 0.25).unwrap(),
            median: percentile(&s, 0.5).unwrap(),
            p75: percentile(&s, 0.75).unwrap(),
            max: *s.last().unwrap(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let s = sorted(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(percentile(&s, 0.0), Some(1.0));
        assert_eq!(percentile(&s, 1.0), Some(4.0));
        assert_eq!(percentile(&s, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), Some(5.0));
        assert_eq!(std_dev(&v), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn ecdf_fractions() {
        let e = Ecdf::from_samples(vec![1, 1, 2, 5]);
        assert_eq!(e.n, 4);
        assert_eq!(e.at(0), 0.0);
        assert_eq!(e.at(1), 0.5);
        assert_eq!(e.at(2), 0.75);
        assert_eq!(e.at(4), 0.75);
        assert_eq!(e.at(5), 1.0);
        assert!((e.ccdf(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_median() {
        assert_eq!(Ecdf::from_samples(vec![1, 2, 3, 4, 100]).median(), Some(3));
        assert_eq!(Ecdf::from_samples(vec![8; 10]).median(), Some(8));
    }

    #[test]
    fn dist_summary() {
        let d = DistSummary::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(d.median, 3.0);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.n, 5);
        assert!(DistSummary::from_samples(vec![]).is_none());
    }

    #[test]
    fn median_u64_works() {
        assert_eq!(median_u64(vec![3, 1, 2]), Some(2));
        assert_eq!(median_u64(vec![]), None);
    }
}
