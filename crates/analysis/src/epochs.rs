//! Per-epoch diffing for scenario runs (before/during/after a change).
//!
//! A scenario run slices the measurement timeline into *epochs* at event
//! boundaries; every record belongs to exactly one epoch. This module
//! aggregates one [`EpochStats`] per slice for a focus letter — catchment
//! share per site, RTT per region/family, loss, validation failures — and
//! renders the epoch-over-epoch diff table (catchment shift %, RTT delta)
//! that answers the paper's operational question: what did the change do
//! to who is served from where, and at what latency?

use crate::catchment::CatchmentAccum;
use netgeo::Region;
use netsim::Family;
use rss::RootLetter;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use vantage::population::Population;
use vantage::records::ProbeRecord;

/// Aggregated observations of one scenario epoch for one letter.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Human label, e.g. `baseline` or `outage(d/3)`.
    pub label: String,
    /// Epoch bounds (seconds since epoch, half-open).
    pub start: u32,
    pub end: u32,
    /// Probes of the focus letter inside the epoch (both families).
    pub probe_count: usize,
    /// Fraction of those probes that got no answer.
    pub loss: f64,
    /// Catchment: fraction of answered probes served by each site.
    pub catchment: BTreeMap<u32, f64>,
    /// The shared catchment/RTT accumulator behind the fields above.
    accum: CatchmentAccum,
    /// Zone-validation failures observed during the epoch (filled by the
    /// scenario engine from the transfer pipeline).
    pub validation_failures: usize,
}

impl EpochStats {
    /// Aggregate `probes` (pre-filtered to one epoch's records) for
    /// `letter`. Records of other letters are ignored, so callers can pass
    /// the full per-epoch stream.
    pub fn compute(
        label: impl Into<String>,
        letter: RootLetter,
        population: &Population,
        probes: &[ProbeRecord],
        start: u32,
        end: u32,
    ) -> EpochStats {
        let mut accum = CatchmentAccum::new();
        for p in probes {
            if p.target.letter != letter {
                continue;
            }
            accum.observe(
                population.get(p.vp).region,
                p.family,
                p.site.map(|s| s.0),
                p.rtt_ms,
            );
        }
        EpochStats {
            label: label.into(),
            start,
            end,
            probe_count: accum.observations(),
            loss: accum.loss(),
            catchment: accum.shares(),
            accum,
            validation_failures: 0,
        }
    }

    /// Mean RTT for (region, family), if any samples landed there.
    pub fn rtt_mean(&self, region: Region, family: Family) -> Option<f64> {
        self.accum.rtt_mean(region, family)
    }

    /// Sample-weighted mean RTT across all regions for one family.
    pub fn rtt_global_mean(&self, family: Family) -> Option<f64> {
        self.accum.rtt_global_mean(family)
    }

    /// Total-variation distance between this epoch's catchment and
    /// `other`'s, in [0, 1]: the fraction of traffic that moved to a
    /// different site. 0 = identical catchments, 1 = fully disjoint.
    pub fn catchment_shift(&self, other: &EpochStats) -> f64 {
        crate::catchment::catchment_shift(&self.catchment, &other.catchment)
    }
}

/// The per-epoch diff report of one scenario run for one letter.
#[derive(Debug, Clone)]
pub struct EpochDiffReport {
    pub letter: RootLetter,
    /// Epochs in timeline order.
    pub epochs: Vec<EpochStats>,
}

impl EpochDiffReport {
    /// RTT delta (ms) between epochs `a` and `b` for (region, family).
    pub fn rtt_delta_ms(&self, a: usize, b: usize, region: Region, family: Family) -> Option<f64> {
        Some(self.epochs[b].rtt_mean(region, family)? - self.epochs[a].rtt_mean(region, family)?)
    }

    /// Render the diff table: one row per epoch, shift/delta columns
    /// relative to the *previous* epoch.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Epoch diff report — {} ({} epochs)",
            self.letter.label(),
            self.epochs.len()
        );
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>7} {:>9} {:>12} {:>12} {:>12} {:>10}",
            "epoch", "probes", "loss%", "val.fail", "shift%", "ΔRTTv4 ms", "ΔRTTv6 ms", "top site"
        );
        for (i, e) in self.epochs.iter().enumerate() {
            let (shift, d4, d6) = if i == 0 {
                (None, None, None)
            } else {
                let prev = &self.epochs[i - 1];
                let delta = |family| match (e.rtt_global_mean(family), prev.rtt_global_mean(family))
                {
                    (Some(cur), Some(before)) => Some(cur - before),
                    _ => None,
                };
                (
                    Some(e.catchment_shift(prev) * 100.0),
                    delta(Family::V4),
                    delta(Family::V6),
                )
            };
            let fmt_opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:+.2}"),
                None => "-".to_string(),
            };
            let top = e
                .catchment
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(site, share)| format!("s{site}:{:.0}%", share * 100.0))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>7.2} {:>9} {:>12} {:>12} {:>12} {:>10}",
                e.label,
                e.probe_count,
                e.loss * 100.0,
                e.validation_failures,
                match shift {
                    Some(s) => format!("{s:.1}"),
                    None => "-".to_string(),
                },
                fmt_opt(d4),
                fmt_opt(d6),
                top
            );
        }
        out
    }
}

/// Traffic-level view of one attack-run epoch: what the *serving* layer
/// did to benign and adversarial queries while a flood window was (or
/// was not) active. Plain data — the `rootd` attack engine fills one of
/// these per epoch; this module only diffs and renders them, the same
/// division of labor as [`EpochStats`] vs the scenario engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FloodEpoch {
    /// Human label, e.g. `quiet` or `flood×10(bots=32)`.
    pub label: String,
    /// Epoch bounds on the virtual clock (ms, half-open).
    pub start_ms: u64,
    pub end_ms: u64,
    /// Benign queries sent / answered in full (over UDP directly, or
    /// over TCP after a slip — `legit_served` already counts the
    /// recoveries) / slipped (TC=1) / recovered over TCP after a slip /
    /// dropped outright.
    pub legit_sent: u64,
    pub legit_served: u64,
    pub legit_slipped: u64,
    pub legit_slip_recovered: u64,
    pub legit_dropped: u64,
    /// Benign end-to-end latency quantiles (virtual-run wall ns).
    pub legit_p50_ns: u64,
    pub legit_p99_ns: u64,
    /// Attack queries sent and their rate-limit fates.
    pub attack_sent: u64,
    pub attack_passed: u64,
    pub attack_slipped: u64,
    pub attack_dropped: u64,
}

impl FloodEpoch {
    /// Fraction of benign queries that ended with a full answer (slip
    /// recoveries are already inside `legit_served`). 1.0 when none were
    /// sent.
    pub fn served_fraction(&self) -> f64 {
        if self.legit_sent == 0 {
            1.0
        } else {
            self.legit_served as f64 / self.legit_sent as f64
        }
    }

    /// Fraction of attack queries the limiter refused a full answer
    /// (slipped or dropped). 0.0 when the epoch saw no attack.
    pub fn attack_suppressed_fraction(&self) -> f64 {
        if self.attack_sent == 0 {
            0.0
        } else {
            (self.attack_slipped + self.attack_dropped) as f64 / self.attack_sent as f64
        }
    }
}

/// The flood diff of one attack run: every epoch's benign service
/// quality and attack suppression, with the quiet epochs as the
/// baseline the flood epochs are judged against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FloodDiffReport {
    /// Epochs in timeline order (flood windows cut the run, so quiet
    /// and attack epochs alternate).
    pub epochs: Vec<FloodEpoch>,
}

impl FloodDiffReport {
    /// The first attack-free epoch — the no-attack baseline the paper's
    /// "legit p99 ≤ 2× baseline" criterion compares against.
    pub fn baseline(&self) -> Option<&FloodEpoch> {
        self.epochs.iter().find(|e| e.attack_sent == 0)
    }

    /// Worst benign p99 across attack epochs, as a ratio over the
    /// baseline epoch's p99. `None` without both a baseline (with a
    /// nonzero p99) and at least one attack epoch.
    pub fn worst_flood_p99_ratio(&self) -> Option<f64> {
        let base = self.baseline()?.legit_p99_ns;
        if base == 0 {
            return None;
        }
        self.epochs
            .iter()
            .filter(|e| e.attack_sent > 0)
            .map(|e| e.legit_p99_ns as f64 / base as f64)
            .max_by(f64::total_cmp)
    }

    /// Lowest benign served fraction across attack epochs (1.0 if the
    /// run had no attack epochs).
    pub fn worst_flood_served_fraction(&self) -> f64 {
        self.epochs
            .iter()
            .filter(|e| e.attack_sent > 0)
            .map(|e| e.served_fraction())
            .min_by(f64::total_cmp)
            .unwrap_or(1.0)
    }

    /// Render the diff table: one row per epoch.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Flood diff report ({} epochs)", self.epochs.len());
        let _ = writeln!(
            out,
            "{:<22} {:>14} {:>8} {:>7} {:>6} {:>10} {:>10} {:>10} {:>9}",
            "epoch",
            "window ms",
            "legit",
            "served%",
            "slip",
            "p50 ns",
            "p99 ns",
            "attack",
            "suppr.%"
        );
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "{:<22} {:>14} {:>8} {:>7.2} {:>6} {:>10} {:>10} {:>10} {:>9.2}",
                e.label,
                format!("[{},{})", e.start_ms, e.end_ms),
                e.legit_sent,
                e.served_fraction() * 100.0,
                e.legit_slipped,
                e.legit_p50_ns,
                e.legit_p99_ns,
                e.attack_sent,
                e.attack_suppressed_fraction() * 100.0,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::anycast::SiteId;
    use vantage::population::VpId;
    use vantage::records::Target;
    use vantage::{World, WorldBuildConfig};

    fn probe(
        time: u32,
        vp: u32,
        letter: RootLetter,
        site: Option<u32>,
        rtt: Option<f64>,
        family: Family,
    ) -> ProbeRecord {
        ProbeRecord {
            time,
            vp: VpId(vp),
            target: Target {
                letter,
                b_phase: rss::BRootPhase::Old,
            },
            family,
            site: site.map(SiteId),
            rtt_ms: rtt,
            second_to_last_hop: None,
            identity: None,
        }
    }

    #[test]
    fn catchment_shift_is_total_variation() {
        let world = World::build(&WorldBuildConfig::tiny());
        let letter = RootLetter::D;
        let mk = |sites: &[u32]| {
            let probes: Vec<ProbeRecord> = sites
                .iter()
                .map(|&s| probe(0, 0, letter, Some(s), Some(10.0), Family::V4))
                .collect();
            EpochStats::compute("e", letter, &world.population, &probes, 0, 100)
        };
        let a = mk(&[1, 1, 2, 2]);
        let same = mk(&[1, 2, 1, 2]);
        let half = mk(&[1, 1, 3, 3]);
        let disjoint = mk(&[4, 4, 5, 5]);
        assert!(a.catchment_shift(&same).abs() < 1e-12);
        assert!((a.catchment_shift(&half) - 0.5).abs() < 1e-12);
        assert!((a.catchment_shift(&disjoint) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_aggregate_loss_and_rtt() {
        let world = World::build(&WorldBuildConfig::tiny());
        let letter = RootLetter::A;
        let probes = vec![
            probe(0, 0, letter, Some(1), Some(10.0), Family::V4),
            probe(0, 0, letter, Some(1), Some(30.0), Family::V4),
            probe(0, 0, letter, None, None, Family::V4),
            // Other letters must be ignored.
            probe(0, 0, RootLetter::B, Some(9), Some(99.0), Family::V4),
        ];
        let e = EpochStats::compute("e", letter, &world.population, &probes, 0, 100);
        assert_eq!(e.probe_count, 3);
        assert!((e.loss - 1.0 / 3.0).abs() < 1e-12);
        let region = world.population.get(VpId(0)).region;
        assert_eq!(e.rtt_mean(region, Family::V4), Some(20.0));
        assert_eq!(e.rtt_global_mean(Family::V4), Some(20.0));
        assert_eq!(e.rtt_mean(region, Family::V6), None);
    }

    #[test]
    fn report_renders_one_row_per_epoch() {
        let world = World::build(&WorldBuildConfig::tiny());
        let letter = RootLetter::C;
        let probes = vec![probe(0, 0, letter, Some(1), Some(10.0), Family::V4)];
        let e = EpochStats::compute("baseline", letter, &world.population, &probes, 0, 100);
        let mut during = e.clone();
        during.label = "during".into();
        let report = EpochDiffReport {
            letter,
            epochs: vec![e, during],
        };
        let rendered = report.render();
        assert!(rendered.contains("baseline"));
        assert!(rendered.contains("during"));
        assert_eq!(rendered.lines().count(), 4);
    }

    fn flood_epoch(label: &str, attack_sent: u64, p99: u64) -> FloodEpoch {
        FloodEpoch {
            label: label.into(),
            start_ms: 0,
            end_ms: 1000,
            legit_sent: 100,
            legit_served: 99,
            legit_slipped: 2,
            legit_slip_recovered: 2,
            legit_dropped: 1,
            legit_p50_ns: 500,
            legit_p99_ns: p99,
            attack_sent,
            attack_passed: attack_sent / 10,
            attack_slipped: attack_sent / 2,
            attack_dropped: attack_sent - attack_sent / 10 - attack_sent / 2,
        }
    }

    #[test]
    fn flood_fractions_count_slip_recoveries_as_served() {
        let e = flood_epoch("flood", 1000, 900);
        assert!((e.served_fraction() - 0.99).abs() < 1e-12);
        assert!((e.attack_suppressed_fraction() - 0.9).abs() < 1e-12);
        // An empty epoch is vacuously healthy on both axes.
        let empty = FloodEpoch::default();
        assert_eq!(empty.served_fraction(), 1.0);
        assert_eq!(empty.attack_suppressed_fraction(), 0.0);
    }

    #[test]
    fn flood_report_compares_attack_epochs_to_the_quiet_baseline() {
        let report = FloodDiffReport {
            epochs: vec![
                flood_epoch("quiet", 0, 600),
                flood_epoch("flood", 1000, 900),
                flood_epoch("quiet", 0, 650),
                flood_epoch("storm", 500, 1500),
            ],
        };
        assert_eq!(report.baseline().unwrap().legit_p99_ns, 600);
        assert!((report.worst_flood_p99_ratio().unwrap() - 2.5).abs() < 1e-12);
        assert!((report.worst_flood_served_fraction() - 0.99).abs() < 1e-12);
        let rendered = report.render();
        assert_eq!(rendered.lines().count(), 6);
        assert!(rendered.contains("storm"));
        // A run with no attack epochs has no ratio but a perfect floor.
        let quiet = FloodDiffReport {
            epochs: vec![flood_epoch("quiet", 0, 600)],
        };
        assert_eq!(quiet.worst_flood_p99_ratio(), None);
        assert_eq!(quiet.worst_flood_served_fraction(), 1.0);
    }
}
