//! CSV export of figure data series.
//!
//! The text renderers summarize; plotting the paper's figures needs the
//! underlying series. Each exporter emits one tidy CSV (header + rows,
//! RFC 4180-style quoting not needed — all fields are numeric or simple
//! tokens) matching the corresponding figure's axes.

use crate::clients::ClientAnalysis;
use crate::colocation::ColocationResult;
use crate::distance::DistanceResult;
use crate::rtt::RttByRegion;
use crate::stability::StabilityResult;
use crate::traffic::{BKey, BRootShift};
use netgeo::Region;
use netsim::Family;
use vantage::population::Population;

/// Figure 3: one row per (target, family, changes) eCDF point.
pub fn stability_csv(result: &StabilityResult) -> String {
    let mut out = String::from("target,family,changes,cdf\n");
    for s in &result.series {
        for (v, c) in s.ecdf.values.iter().zip(&s.ecdf.cdf) {
            out.push_str(&format!(
                "{},{},{},{}\n",
                s.target.label(),
                s.family.label(),
                v,
                c
            ));
        }
    }
    out
}

/// Figure 4: one row per (region, family, reduced_redundancy) histogram bin.
pub fn colocation_csv(result: &ColocationResult, population: &Population) -> String {
    let hist = result.histogram_by_region(population);
    let mut out = String::from("region,family,reduced,vps\n");
    for region in Region::ALL {
        for (fi, family) in Family::BOTH.iter().enumerate() {
            for (reduced, count) in hist[region.index()][fi].iter().enumerate() {
                if *count > 0 {
                    out.push_str(&format!(
                        "{},{},{},{}\n",
                        region.name().replace(' ', "_"),
                        family.label(),
                        reduced,
                        count
                    ));
                }
            }
        }
    }
    out
}

/// Figure 5: one row per request (optionally subsampled to `max_rows`).
pub fn distance_csv(result: &DistanceResult, max_rows: usize) -> String {
    let mut out = String::from("target,family,closest_global_km,actual_km\n");
    let step = (result.points.len() / max_rows.max(1)).max(1);
    for p in result.points.iter().step_by(step) {
        out.push_str(&format!(
            "{},{},{:.1},{:.1}\n",
            result.target.label(),
            result.family.label(),
            p.closest_global_km,
            p.actual_km
        ));
    }
    out
}

/// Figure 6/14/15: one row per (region, target, family) summary.
pub fn rtt_csv(result: &RttByRegion) -> String {
    let mut out =
        String::from("region,target,family,n,mean_ms,median_ms,p25_ms,p75_ms,min_ms,max_ms\n");
    for region in Region::ALL {
        for target in &result.targets {
            for family in Family::BOTH {
                if let Some(s) = result.get(region, *target, family) {
                    out.push_str(&format!(
                        "{},{},{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
                        region.name().replace(' ', "_"),
                        target.label(),
                        family.label(),
                        s.n,
                        s.mean,
                        s.median,
                        s.p25,
                        s.p75,
                        s.min,
                        s.max
                    ));
                }
            }
        }
    }
    out
}

/// Figures 7/9: one row per (day, hour, key) share.
pub fn broot_shift_csv(shift: &BRootShift) -> String {
    let mut out = String::from("day,hour,key,share\n");
    for ((day, hour), shares) in &shift.series.buckets {
        for key in [BKey::V4New, BKey::V4Old, BKey::V6New, BKey::V6Old] {
            if let Some(share) = shares.get(&key) {
                out.push_str(&format!(
                    "{},{},{},{:.6}\n",
                    day.0,
                    hour.map(|h| h.to_string()).unwrap_or_default(),
                    key.label(),
                    share
                ));
            }
        }
    }
    out
}

/// Figure 8: one row per (target, family, flows) curve point.
pub fn clients_csv(analysis: &ClientAnalysis) -> String {
    let mut out = String::from("target,family,flows_per_client,cum_fraction,clients_per_day\n");
    for c in &analysis.curves {
        for (flows, frac) in &c.curve {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.1}\n",
                c.target.label(),
                c.family.label(),
                flows,
                frac,
                c.mean_clients_per_day
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_crypto::validity::timestamp_from_ymd as ts;
    use roots_core_free::build_small_records;

    /// A tiny helper world without depending on roots-core (which would be
    /// a dependency cycle): run the vantage engine directly.
    mod roots_core_free {
        use vantage::records::ProbeRecord;
        use vantage::{
            MeasurementConfig, MeasurementEngine, Schedule, VecSink, World, WorldBuildConfig,
        };

        pub struct SmallRecords {
            pub world: World,
            pub probes: Vec<ProbeRecord>,
        }

        pub fn build_small_records() -> SmallRecords {
            let world = World::build(&WorldBuildConfig::tiny());
            let engine = MeasurementEngine::new(
                &world,
                MeasurementConfig {
                    schedule: Schedule::subsampled(400),
                    ..Default::default()
                },
            );
            let mut sink = VecSink::default();
            engine.run(&mut sink);
            SmallRecords {
                world,
                probes: sink.probes,
            }
        }
    }

    fn csv_well_formed(csv: &str, columns: usize) {
        let mut lines = csv.lines();
        let header = lines.next().expect("has header");
        assert_eq!(header.split(',').count(), columns, "header: {header}");
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), columns, "row: {line}");
            rows += 1;
        }
        assert!(rows > 0, "no data rows");
    }

    #[test]
    fn stability_csv_well_formed() {
        let r = build_small_records();
        let result = crate::stability::StabilityResult::compute(&r.probes);
        csv_well_formed(&stability_csv(&result), 4);
    }

    #[test]
    fn colocation_csv_well_formed() {
        let r = build_small_records();
        let result = crate::colocation::ColocationResult::compute(&r.probes);
        csv_well_formed(&colocation_csv(&result, &r.world.population), 4);
    }

    #[test]
    fn distance_csv_respects_max_rows() {
        let r = build_small_records();
        let result = crate::distance::DistanceResult::compute(
            &r.world.catalog,
            &r.world.population,
            &r.probes,
            vantage::records::Target {
                letter: rss::RootLetter::K,
                b_phase: rss::BRootPhase::Old,
            },
            Family::V4,
        );
        let csv = distance_csv(&result, 50);
        csv_well_formed(&csv, 4);
        assert!(csv.lines().count() <= 102);
    }

    #[test]
    fn rtt_csv_well_formed() {
        let r = build_small_records();
        let result = crate::rtt::RttByRegion::compute(&r.world.population, &r.probes);
        csv_well_formed(&rtt_csv(&result), 10);
    }

    #[test]
    fn traffic_and_clients_csv_well_formed() {
        let mut cfg = traces::gen::TraceConfig::isp(3);
        cfg.population.clients_per_family = 80;
        let flows =
            traces::gen::generate_flows(&cfg, &[traces::gen::ObservationWindow::isp_windows()[1]]);
        let shift = crate::traffic::BRootShift::compute(&flows);
        csv_well_formed(&broot_shift_csv(&shift), 4);
        let clients = crate::clients::ClientAnalysis::compute(
            &flows,
            traces::flows::DayBucket::of(ts("20240205000000").unwrap()),
            traces::flows::DayBucket::of(ts("20240304000000").unwrap()),
        );
        csv_well_formed(&clients_csv(&clients), 5);
    }
}
