//! Site coverage (§4.2): match observed instance identifiers back to the
//! catalog and report, per letter, how many global/local sites the vantage
//! points observed — worldwide (Table 1) and per region (Table 4); the
//! per-site observed/unobserved lists back Figures 1 and 11.

use netgeo::Region;
use netsim::anycast::{SiteId, SiteScope};
use rss::catalog::RootCatalog;
use rss::RootLetter;
use std::collections::{HashMap, HashSet};
use vantage::records::ProbeRecord;

/// One row of coverage counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageRow {
    pub global_sites: u32,
    pub global_covered: u32,
    pub local_sites: u32,
    pub local_covered: u32,
}

impl CoverageRow {
    /// Total sites.
    pub fn total_sites(&self) -> u32 {
        self.global_sites + self.local_sites
    }

    /// Total covered.
    pub fn total_covered(&self) -> u32 {
        self.global_covered + self.local_covered
    }

    /// Coverage percentage for globals, `None` when no global sites.
    pub fn global_pct(&self) -> Option<f64> {
        pct(self.global_covered, self.global_sites)
    }

    /// Coverage percentage for locals.
    pub fn local_pct(&self) -> Option<f64> {
        pct(self.local_covered, self.local_sites)
    }

    /// Coverage percentage overall.
    pub fn total_pct(&self) -> Option<f64> {
        pct(self.total_covered(), self.total_sites())
    }
}

fn pct(cov: u32, total: u32) -> Option<f64> {
    if total == 0 {
        None
    } else {
        Some(cov as f64 * 100.0 / total as f64)
    }
}

/// Full coverage report: worldwide and per region, plus identifier-mapping
/// statistics and per-site observation flags.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Worldwide rows, indexed by letter.
    pub worldwide: [CoverageRow; 13],
    /// Per-region rows `[region][letter]`.
    pub per_region: [[CoverageRow; 13]; 6],
    /// Identifiers observed in total.
    pub observed_identifiers: usize,
    /// Identifiers that mapped to a catalog site.
    pub mapped_identifiers: usize,
    /// Observed flags per (letter, site id) — Figure 1/11 raw data.
    pub observed_sites: HashSet<(RootLetter, SiteId)>,
}

impl CoverageReport {
    /// Match every probe's observed identity against the catalog.
    pub fn compute(catalog: &RootCatalog, probes: &[ProbeRecord]) -> CoverageReport {
        let mut distinct_ids: HashMap<(RootLetter, String), ()> = HashMap::new();
        let mut observed_sites: HashSet<(RootLetter, SiteId)> = HashSet::new();
        // Collect distinct (letter, identifier) pairs first — mapping work
        // is per distinct identifier, as in the paper (1,604 observed ids).
        for p in probes {
            if let Some(id) = &p.identity {
                distinct_ids
                    .entry((p.target.letter, id.clone()))
                    .or_insert(());
            }
            // The probe knows the true site; coverage "via identifier" is
            // what the paper measures, so only mapped identifiers count.
        }
        let mut mapped = 0;
        for (letter, id) in distinct_ids.keys() {
            if let Some(site) = catalog.map_identifier(*letter, id) {
                mapped += 1;
                observed_sites.insert((*letter, site.site_id));
                // IATA-fallback letters are metro-granular: mark every site
                // of the letter in that metro observed (indistinguishable).
                if !letter.identifiers_mappable() {
                    for s in catalog.sites_of(*letter) {
                        if s.iata == site.iata {
                            observed_sites.insert((*letter, s.site_id));
                        }
                    }
                }
            }
        }

        let mut worldwide = [CoverageRow::default(); 13];
        let mut per_region = [[CoverageRow::default(); 13]; 6];
        for site in &catalog.sites {
            let li = site.letter.index();
            let ri = site.region.index();
            let covered = observed_sites.contains(&(site.letter, site.site_id));
            let (w, r) = (&mut worldwide[li], &mut per_region[ri][li]);
            match site.scope {
                SiteScope::Global => {
                    w.global_sites += 1;
                    r.global_sites += 1;
                    if covered {
                        w.global_covered += 1;
                        r.global_covered += 1;
                    }
                }
                SiteScope::Local => {
                    w.local_sites += 1;
                    r.local_sites += 1;
                    if covered {
                        w.local_covered += 1;
                        r.local_covered += 1;
                    }
                }
            }
        }
        CoverageReport {
            worldwide,
            per_region,
            observed_identifiers: distinct_ids.len(),
            mapped_identifiers: mapped,
            observed_sites,
        }
    }

    /// Render the Table 1 equivalent (worldwide coverage).
    pub fn render_table1(&self) -> String {
        let mut out = String::from(
            "Table 1: Coverage of root sites (worldwide)\n\
             Root | Glob# Cov %Cov | Loc# Cov %Cov | Tot# Cov %Cov\n",
        );
        for letter in RootLetter::ALL {
            let row = &self.worldwide[letter.index()];
            out.push_str(&format!(
                "  {}  | {:4} {:4} {} | {:4} {:4} {} | {:4} {:4} {}\n",
                letter.ch(),
                row.global_sites,
                row.global_covered,
                fmt_pct(row.global_pct()),
                row.local_sites,
                row.local_covered,
                fmt_pct(row.local_pct()),
                row.total_sites(),
                row.total_covered(),
                fmt_pct(row.total_pct()),
            ));
        }
        out.push_str(&format!(
            "identifiers observed: {}, mapped: {}\n",
            self.observed_identifiers, self.mapped_identifiers
        ));
        out
    }

    /// Render the Table 4 equivalent (per-region coverage).
    pub fn render_table4(&self) -> String {
        let mut out = String::from("Table 4: Coverage of root sites per region\n");
        for region in Region::ALL {
            out.push_str(&format!("-- {region} --\n"));
            for letter in RootLetter::ALL {
                let row = &self.per_region[region.index()][letter.index()];
                if row.total_sites() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {} | global {:3}/{:3} {} | local {:3}/{:3} {}\n",
                    letter.ch(),
                    row.global_covered,
                    row.global_sites,
                    fmt_pct(row.global_pct()),
                    row.local_covered,
                    row.local_sites,
                    fmt_pct(row.local_pct()),
                ));
            }
        }
        out
    }

    /// Figure 1b / Figure 11 data: per-site (city, scope, observed) rows
    /// for one letter.
    pub fn site_map(&self, catalog: &RootCatalog, letter: RootLetter) -> Vec<SiteMapEntry> {
        catalog
            .sites_of(letter)
            .map(|s| SiteMapEntry {
                city: s.city.name,
                region: s.region,
                scope: s.scope,
                observed: self.observed_sites.contains(&(letter, s.site_id)),
            })
            .collect()
    }
}

/// One dot on the Figure 1/11 coverage maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteMapEntry {
    pub city: &'static str,
    pub region: Region,
    pub scope: SiteScope,
    pub observed: bool,
}

fn fmt_pct(p: Option<f64>) -> String {
    match p {
        Some(v) => format!("{v:5.1}%"),
        None => "    -".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage::{
        MeasurementConfig, MeasurementEngine, Schedule, VecSink, World, WorldBuildConfig,
    };

    fn run_small() -> (World, Vec<ProbeRecord>) {
        let world = World::build(&WorldBuildConfig::tiny());
        let cfg = MeasurementConfig {
            schedule: Schedule::subsampled(100),
            ..Default::default()
        };
        let engine = MeasurementEngine::new(&world, cfg);
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        (world, sink.probes)
    }

    #[test]
    fn coverage_counts_are_consistent() {
        let (world, probes) = run_small();
        let report = CoverageReport::compute(&world.catalog, &probes);
        for letter in RootLetter::ALL {
            let row = &report.worldwide[letter.index()];
            assert!(row.global_covered <= row.global_sites, "{letter}");
            assert!(row.local_covered <= row.local_sites, "{letter}");
            // Region rows sum to worldwide.
            let mut sum = CoverageRow::default();
            for region in Region::ALL {
                let r = &report.per_region[region.index()][letter.index()];
                sum.global_sites += r.global_sites;
                sum.global_covered += r.global_covered;
                sum.local_sites += r.local_sites;
                sum.local_covered += r.local_covered;
            }
            assert_eq!(sum, *row, "{letter}");
        }
    }

    #[test]
    fn some_sites_observed_and_some_not() {
        let (world, probes) = run_small();
        let report = CoverageReport::compute(&world.catalog, &probes);
        let covered: u32 = report.worldwide.iter().map(|r| r.total_covered()).sum();
        let total: u32 = report.worldwide.iter().map(|r| r.total_sites()).sum();
        assert!(covered > 0, "nothing covered");
        assert!(
            covered < total,
            "everything covered — local sites should hide"
        );
    }

    #[test]
    fn global_coverage_beats_local() {
        // The paper's headline: good global coverage, partial local.
        let (world, probes) = run_small();
        let report = CoverageReport::compute(&world.catalog, &probes);
        let mut g_cov = 0u32;
        let mut g_tot = 0u32;
        let mut l_cov = 0u32;
        let mut l_tot = 0u32;
        for row in &report.worldwide {
            g_cov += row.global_covered;
            g_tot += row.global_sites;
            l_cov += row.local_covered;
            l_tot += row.local_sites;
        }
        let g = g_cov as f64 / g_tot as f64;
        let l = l_cov as f64 / l_tot.max(1) as f64;
        assert!(g > l, "global {g:.2} should exceed local {l:.2}");
    }

    #[test]
    fn renderers_produce_all_letters() {
        let (world, probes) = run_small();
        let report = CoverageReport::compute(&world.catalog, &probes);
        let t1 = report.render_table1();
        for l in RootLetter::ALL {
            assert!(t1.contains(&format!("  {}  |", l.ch())), "missing {l}");
        }
        let t4 = report.render_table4();
        assert!(t4.contains("Europe"));
    }

    #[test]
    fn site_map_lists_every_site() {
        let (world, probes) = run_small();
        let report = CoverageReport::compute(&world.catalog, &probes);
        for letter in RootLetter::ALL {
            let map = report.site_map(&world.catalog, letter);
            assert_eq!(map.len(), world.catalog.sites_of(letter).count());
        }
    }

    #[test]
    fn empty_probes_zero_coverage() {
        let world = World::build(&WorldBuildConfig::tiny());
        let report = CoverageReport::compute(&world.catalog, &[]);
        assert_eq!(report.observed_identifiers, 0);
        for row in &report.worldwide {
            assert_eq!(row.total_covered(), 0);
        }
    }
}
