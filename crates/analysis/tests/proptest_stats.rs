//! Property-based tests for the statistics helpers the figures rely on.

use analysis::stats::{mean, percentile, sorted, std_dev, DistSummary, Ecdf};
use proptest::prelude::*;

proptest! {
    #[test]
    fn percentile_within_sample_bounds(mut v in proptest::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..=1.0) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = percentile(&v, p).unwrap();
        prop_assert!(q >= v[0] && q <= *v.last().unwrap());
    }

    #[test]
    fn percentile_monotone_in_p(v in proptest::collection::vec(-1e6f64..1e6, 1..200), p1 in 0.0f64..=1.0, p2 in 0.0f64..=1.0) {
        let s = sorted(v);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&s, lo).unwrap() <= percentile(&s, hi).unwrap() + 1e-9);
    }

    #[test]
    fn mean_between_min_and_max(v in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let m = mean(&v).unwrap();
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn std_dev_nonnegative(v in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        prop_assert!(std_dev(&v).unwrap() >= 0.0);
    }

    #[test]
    fn ecdf_monotone_and_normalized(v in proptest::collection::vec(0u64..10_000, 1..300)) {
        let e = Ecdf::from_samples(v.clone());
        prop_assert_eq!(e.n, v.len());
        for w in e.cdf.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!((e.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        // at() agrees with direct counting at an arbitrary probe point.
        let x = v[0];
        let direct = v.iter().filter(|&&s| s <= x).count() as f64 / v.len() as f64;
        prop_assert!((e.at(x) - direct).abs() < 1e-12);
    }

    #[test]
    fn ecdf_ccdf_complementary(v in proptest::collection::vec(0u64..1000, 1..100), x in 0u64..1000) {
        let e = Ecdf::from_samples(v);
        prop_assert!((e.at(x) + e.ccdf(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_orders_quartiles(v in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = DistSummary::from_samples(v).unwrap();
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
    }

    #[test]
    fn ecdf_median_is_a_median(v in proptest::collection::vec(0u64..1000, 1..200)) {
        let e = Ecdf::from_samples(v.clone());
        let m = e.median().unwrap();
        let at_most = v.iter().filter(|&&s| s <= m).count() as f64 / v.len() as f64;
        prop_assert!(at_most >= 0.5);
    }
}
