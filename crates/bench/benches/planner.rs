//! Planner benchmarks: per-candidate evaluation cost through one reusable
//! context, a small batch through the worker pool, and full-sweep
//! throughput — 1000 candidates across 4 workers, published into
//! `BENCH_results.json` as `planner/eval_batch/qps` (candidates per
//! second, higher-better) and gated by `bench_guard`.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use planner::{evaluate_batch, generate, scores_fingerprint, EvalContext, MoveSetConfig};
use std::hint::black_box;
use std::time::Instant;
use vantage::{World, WorldBuildConfig};

fn bench_eval(c: &mut Criterion) {
    let world = World::build(&WorldBuildConfig::tiny());
    let cfg = MoveSetConfig::default();
    let plans = generate(&world, &cfg);
    let mut group = c.benchmark_group("planner");
    group.sample_size(20);
    // The unit of work a sweep worker repeats: apply → propagate → sweep
    // → score → revert, cycling through the generated move sets.
    group.bench_function("eval_candidate", |b| {
        let mut ctx = EvalContext::new(&world, cfg.letter, None);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % plans.len();
            black_box(ctx.evaluate(&plans[i]).churn)
        })
    });
    // A small batch end-to-end: context build, chunked workers, ordered
    // merge, fingerprint.
    group.bench_function("eval_batch_64", |b| {
        b.iter(|| {
            black_box(scores_fingerprint(&evaluate_batch(
                &world,
                cfg.letter,
                &plans[..64],
                4,
                None,
            )))
        })
    });
    group.finish();

    // Full-sweep throughput, the number the issue tracks: candidates per
    // second over the whole seeded 1000-candidate batch.
    let t = Instant::now();
    let scores = evaluate_batch(&world, cfg.letter, &plans, 4, None);
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(scores.len(), plans.len());
    let qps = plans.len() as f64 / secs;
    record_metric("planner/eval_batch/qps", qps);
    println!(
        "planner/eval_batch: {} candidates in {secs:.2} s ({qps:.0}/s)",
        plans.len()
    );
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
