//! Virtual-clock benchmarks: the shared [`simclock::ClockHandle`] sits on
//! the fault-transport hot path (every exchange reads it; blocking
//! clients advance it), so its read/advance costs must stay at
//! plain-atomic scale. The scheduler bench covers the discrete-event
//! queue end to end: schedule 1 000 keyed events in reverse time order,
//! then drain them — heap churn, tie-break ordering, and the firing
//! trace all included.

use criterion::{criterion_group, criterion_main, Criterion};
use simclock::{ClockHandle, Scheduler};
use std::hint::black_box;

fn bench_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("simclock");
    // Single-digit-nanosecond atomics; same reasoning as the cached
    // rootd serves — let the calibration loop run long enough that the
    // measurement is not timer noise.
    group.sample_size(200_000);
    let clock = ClockHandle::new();
    group.bench_function("clock_now", |b| b.iter(|| black_box(clock.now_ms())));
    group.bench_function("clock_advance", |b| {
        b.iter(|| black_box(clock.advance(black_box(1))))
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("simclock");
    group.sample_size(200);
    group.bench_function("schedule_fire_1k", |b| {
        b.iter(|| {
            let mut s = Scheduler::new(7);
            // Reverse time order with scrambled keys: the worst case for
            // the heap and the case where tie-breaking actually runs.
            for i in 0..1_000u64 {
                s.schedule_keyed(1_000 - i, i ^ 0x2a, "evt", |_| {});
            }
            assert_eq!(s.run_until_idle(), 1_000);
            black_box(s.now_ms())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_clock, bench_scheduler);
criterion_main!(benches);
