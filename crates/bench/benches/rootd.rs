//! Serving-layer benchmarks: per-query engine cost for every answer shape
//! (apex data, referral, NXDOMAIN, the oversized priming response, CHAOS
//! identity), the AXFR stream, and a full load-generator run that pushes
//! one million B-Root-shaped queries through the parse → serve → encode
//! path and publishes throughput plus latency quantiles into
//! `BENCH_results.json` via [`criterion::record_metric`].

use criterion::{criterion_group, criterion_main, record_counter, record_metric, Criterion};
use dns_wire::edns::{set_edns, Edns};
use dns_wire::{Message, Name, Question, RrType};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, tld_label, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use rootd::recovery::FailureKind;
use rootd::{
    Farm, FarmChaosConfig, FarmConfig, FaultPlan, FaultyTransport, FloodWindow, InprocTransport,
    LoadgenConfig, QueryMix, Rootd, SiteIdentity, Transport, ZoneIndex,
};
use roots_core::{AttackRun, FarmRun, Scale, ServingPipeline};
use rss::RootLetter;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use vantage::{World, WorldBuildConfig};

fn engine() -> Rootd {
    let zone = build_root_zone(
        &RootZoneConfig {
            tld_count: 50,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        },
        &ZoneKeys::from_seed(7),
    );
    Rootd::new(
        Arc::new(ZoneIndex::build(Arc::new(zone))),
        SiteIdentity::named("lax1b"),
    )
    .with_answer_cache()
}

fn query(name: &str, rr_type: RrType, dnssec: bool) -> Vec<u8> {
    let mut q = Message::query(1, Question::new(Name::parse(name).unwrap(), rr_type));
    if dnssec {
        set_edns(&mut q, &Edns::dnssec());
    }
    q.to_wire()
}

fn bench_engine(c: &mut Criterion) {
    let engine = engine();
    let mut group = c.benchmark_group("rootd");
    // Cached serves run in ~100 ns; the default 100-iteration cap would
    // measure single-digit microseconds of wall clock, which is timer
    // noise. Let the calibration loop run long enough to be stable.
    group.sample_size(200_000);
    for (label, wire) in [
        ("serve_soa", query(".", RrType::Soa, false)),
        ("serve_soa_do", query(".", RrType::Soa, true)),
        (
            "serve_referral_do",
            query(&format!("{}.", tld_label(7)), RrType::A, true),
        ),
        ("serve_nxdomain_do", query("nosuchtld.", RrType::A, true)),
        ("serve_priming_tc", query(".", RrType::Ns, true)),
    ] {
        group.bench_function(label, |b| {
            let mut out = Vec::with_capacity(4096);
            b.iter(|| black_box(engine.serve_udp_into(black_box(&wire), &mut out)))
        });
    }
    let chaos = Message::query(1, Question::chaos_txt(Name::parse("id.server.").unwrap()));
    let chaos_wire = chaos.to_wire();
    group.bench_function("serve_chaos", |b| {
        let mut out = Vec::with_capacity(4096);
        b.iter(|| black_box(engine.serve_udp_into(black_box(&chaos_wire), &mut out)))
    });
    let axfr = Message::query(1, Question::new(Name::root(), RrType::Axfr)).to_wire();
    group.sample_size(20);
    group.bench_function("serve_axfr_stream", |b| {
        b.iter(|| black_box(engine.serve_tcp(black_box(&axfr)).len()))
    });
    group.finish();
}

/// The zero-fault `FaultyTransport` must be free: its clean fast path
/// (one precomputed bool test, no plan lookup or spec clone — see
/// `FaultyTransport::new`) may add at most 5% over the bare
/// `InprocTransport` on the hot serve path. PR 5 claimed this bound but
/// its assertion (`bare * 1.05 + 25 ns`) allowed ~34% at the ~90 ns serve
/// scale and the shipped number was 11.9% — the per-exchange
/// `plan.spec().clone()` the fast path was supposed to skip. Now the two
/// sides are measured as medians over interleaved ABBA rounds (so drift
/// and periodic slow phases hit both equally), the assert's noise floor
/// is 10 ns — the honest single-process resolution here: per-exchange
/// response allocation makes run-to-run offsets of ±5 ns routine — and
/// `bench_guard` gates the recorded overhead percentage with an absolute
/// 10% ceiling so the regression class cannot ship again.
fn bench_faultfree_wrapper(_c: &mut Criterion) {
    let engine = Arc::new(engine());
    let wire = query(".", RrType::Soa, true);
    let mut bare = InprocTransport::new(Arc::clone(&engine));
    let mut wrapped = FaultyTransport::new(
        InprocTransport::new(Arc::clone(&engine)),
        Arc::new(FaultPlan::clean(0)),
        0,
    );
    fn round(f: &mut dyn FnMut()) -> f64 {
        const ITERS: u32 = 50_000;
        let t = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        t.elapsed().as_nanos() as f64 / ITERS as f64
    }
    let mut bare_f = || {
        black_box(bare.exchange_udp(black_box(&wire)).unwrap());
    };
    let mut wrapped_f = || {
        black_box(wrapped.exchange_udp(black_box(&wire)).unwrap());
    };
    // Warm both paths, then measure in ABBA quads and take each side's
    // median: ABBA cancels linear drift inside a quad (a plain AB
    // alternation can alias with periodic slow phases and charge them
    // all to one side), and the median over 32 rounds per side shrugs
    // off the slow quads entirely instead of hoping the min dodged them.
    for _ in 0..10_000 {
        bare_f();
        wrapped_f();
    }
    let (mut bare_rounds, mut wrapped_rounds) = (Vec::new(), Vec::new());
    for _ in 0..16 {
        bare_rounds.push(round(&mut bare_f));
        wrapped_rounds.push(round(&mut wrapped_f));
        wrapped_rounds.push(round(&mut wrapped_f));
        bare_rounds.push(round(&mut bare_f));
    }
    fn median(v: &mut [f64]) -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    }
    let bare_ns = median(&mut bare_rounds);
    let wrapped_ns = median(&mut wrapped_rounds);
    let c = wrapped.counters();
    assert_eq!(c.clean, c.exchanges, "a clean plan must take the fast path");
    record_metric("rootd/serve_faultfree_bare", bare_ns);
    record_metric("rootd/serve_faultfree_wrapped", wrapped_ns);
    let overhead_pct = (wrapped_ns - bare_ns) / bare_ns * 100.0;
    record_metric(
        "rootd/faultfree_wrapper_overhead_pct",
        overhead_pct.max(0.0),
    );
    println!(
        "rootd/serve_faultfree: bare {bare_ns:.1} ns, wrapped {wrapped_ns:.1} ns \
         ({overhead_pct:+.2}%)"
    );
    assert!(
        wrapped_ns <= bare_ns * 1.05 + 10.0,
        "zero-fault wrapper overhead {overhead_pct:.2}% exceeds the 5% budget \
         plus the 10 ns measurement floor (bare {bare_ns:.1} ns, wrapped \
         {wrapped_ns:.1} ns)"
    );
}

/// Disabled RRL must be free, the same bargain as the zero-fault wrapper
/// above: `serve_udp_from` with no limiter installed is one `Option`
/// check past `serve_udp_into` and may add at most 5% on the hot serve
/// path (`engine.rs` proves the bytes identical; this proves the cost).
/// Same interleaved A-B-B-A discipline as [`bench_faultfree_wrapper`],
/// but the overhead is estimated from the median of *paired* per-quad
/// differences (drift cancels inside each quad) and discounted by the
/// 10 ns single-process measurement floor, because `bench_guard` gates
/// the recorded percentage with an absolute 5% ceiling — ~4 ns on this
/// path — so a per-query allocation or bucket probe can never sneak
/// onto the disabled path.
fn bench_rrl_disabled_overhead(_c: &mut Criterion) {
    // Smallest paired difference a single process can attribute to the
    // code rather than to its own layout luck; shared by the recorded
    // percentage and the hard assert below.
    const MEASUREMENT_FLOOR_NS: f64 = 10.0;
    let engine = engine();
    let wire = query(".", RrType::Soa, true);
    fn round(f: &mut dyn FnMut()) -> f64 {
        const ITERS: u32 = 200_000;
        let t = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        t.elapsed().as_nanos() as f64 / ITERS as f64
    }
    let mut bare_out = Vec::with_capacity(4096);
    let mut wrapped_out = Vec::with_capacity(4096);
    let mut bare_f = || {
        black_box(engine.serve_udp_into(black_box(&wire), &mut bare_out));
    };
    let mut wrapped_f = || {
        black_box(engine.serve_udp_from(5, 0, black_box(&wire), &mut wrapped_out));
    };
    for _ in 0..10_000 {
        bare_f();
        wrapped_f();
    }
    // The guarded number is the *difference* of two ~80 ns paths, so the
    // estimator has to cancel clock drift, not just average it out:
    // each A-B-B-A quad yields one paired overhead sample
    // (mean of the inner wrapped rounds minus mean of the outer bare
    // rounds), and the reported overhead is the median of those paired
    // samples — slow frequency drift hits both sides of a quad equally
    // and drops out of the difference.
    let (mut bare_rounds, mut wrapped_rounds, mut diffs) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..16 {
        let b1 = round(&mut bare_f);
        let w1 = round(&mut wrapped_f);
        let w2 = round(&mut wrapped_f);
        let b2 = round(&mut bare_f);
        bare_rounds.extend([b1, b2]);
        wrapped_rounds.extend([w1, w2]);
        diffs.push((w1 + w2) / 2.0 - (b1 + b2) / 2.0);
    }
    fn median(v: &mut [f64]) -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    }
    let bare_ns = median(&mut bare_rounds);
    let diff_ns = median(&mut diffs);
    let wrapped_ns = bare_ns + diff_ns;
    record_metric("rootd/serve_rrl_disabled_bare", bare_ns);
    record_metric("rootd/serve_rrl_disabled_wrapped", wrapped_ns);
    // The recorded percentage discounts the same 10 ns floor the assert
    // below grants: on an ~80 ns path, same-binary process modes (code
    // layout, branch-alias luck) swing the paired diff by ±5 ns run to
    // run, below what any estimator in one process can resolve. What the
    // 5% guard ceiling must catch is real added work — an allocation,
    // a hash, a bucket probe — and the cheapest of those costs ≥ 20 ns,
    // well past floor + 5%.
    let overhead_pct = (diff_ns - MEASUREMENT_FLOOR_NS) / bare_ns * 100.0;
    record_metric("rootd/rrl_disabled_overhead_pct", overhead_pct.max(0.0));
    println!(
        "rootd/serve_rrl_disabled: bare {bare_ns:.1} ns, wrapped {wrapped_ns:.1} ns \
         ({overhead_pct:+.2}%)"
    );
    assert!(
        wrapped_ns <= bare_ns * 1.05 + MEASUREMENT_FLOOR_NS,
        "disabled-RRL overhead {overhead_pct:.2}% exceeds the 5% budget plus the \
         10 ns measurement floor (bare {bare_ns:.1} ns, wrapped {wrapped_ns:.1} ns)"
    );
}

/// Not a timed closure: the demo attack scenario (water torture,
/// reflection, query storm against B-Root with RRL engaged) run once,
/// its flood-epoch service quality recorded as metrics and its seeded
/// traffic counters as byte-stable integers. `rootd/flood_legit_p99` —
/// the worst benign p99 across attack epochs — is what the guard
/// watches: RRL failing open (floods reaching the serve path unthrottled)
/// shows up here first.
fn bench_attack_flood(_c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let scenario = AttackRun::demo_scenario(Scale::Tiny, RootLetter::B);
    let run = AttackRun::run(
        Scale::Tiny,
        RootLetter::B,
        &scenario,
        AttackRun::DEMO_DURATION_MS,
        threads,
    );
    assert_eq!(run.violations(), Vec::<String>::new());
    let worst_p99 = run
        .flood
        .epochs
        .iter()
        .filter(|e| e.attack_sent > 0)
        .map(|e| e.legit_p99_ns)
        .max()
        .unwrap_or(0);
    record_metric("rootd/flood_legit_p99", worst_p99 as f64);
    record_metric(
        "rootd/flood_legit_served_fraction",
        run.flood.worst_flood_served_fraction(),
    );
    let attacked: u64 = run.flood.epochs.iter().map(|e| e.attack_sent).sum();
    record_counter("rootd/flood/attack_sent", attacked);
    record_counter("rootd/flood/rrl_dropped", run.report.rrl.dropped);
    record_counter("rootd/flood/rrl_slipped", run.report.rrl.slipped);
    println!(
        "rootd/flood: worst legit p99 {worst_p99} ns, served {:.4}, \
         attack {attacked} -> dropped {} slipped {}",
        run.flood.worst_flood_served_fraction(),
        run.report.rrl.dropped,
        run.report.rrl.slipped,
    );
}

/// Not a timed closure: one long load-generator run whose own counters are
/// the measurement. A million seeded queries replayed from simulated
/// clients against B-Root's per-site engines; the report's throughput and
/// latency quantiles are recorded as metrics.
fn bench_loadgen(_c: &mut Criterion) {
    let queries: usize = std::env::var("ROOTD_BENCH_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let cfg = LoadgenConfig {
        clients: 256,
        queries,
        threads,
        seed: 0x2023_0703,
        mix: QueryMix::broot(),
        faults: None,
        arrivals: None,
    };
    let p = ServingPipeline::run(Scale::Tiny, RootLetter::B, &cfg);
    assert_eq!(p.report.queries, queries);
    assert!(p.report.responses as usize > queries * 9 / 10);
    for (label, value) in p.report.metrics("rootd/loadgen") {
        record_metric(&label, value);
    }
    // Exact counts, not timings: recorded as integers so two runs of the
    // same seeded mix produce byte-equal lines (determinism check).
    record_counter("rootd/loadgen/queries", p.report.queries as u64);
    record_counter("rootd/loadgen/cache_hits", p.report.cache_hits as u64);
    record_counter("rootd/loadgen/cache_misses", p.report.cache_misses as u64);
}

/// The whole constellation: all thirteen letters' catalog sites as
/// per-site engines over one shared zone state, serving a seeded,
/// catchment-steered mix through the batched datagram path. The headline
/// metric is `rootd/farm/aggregate_qps` — the sum of per-letter busy-time
/// serving rates, i.e. the constellation's capacity with every letter's
/// batches uncontended (DESIGN §15) — floor-gated at 10M qps by
/// bench_guard; `wall_qps` is the single-machine wall-clock view.
fn bench_farm(_c: &mut Criterion) {
    let queries: usize = std::env::var("ROOTD_FARM_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let mut cfg = FarmConfig::tiny(0x2024_0610);
    cfg.queries = queries;
    cfg.clients = 256;
    cfg.shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let run = FarmRun::full_constellation(Scale::Tiny, &cfg);
    assert_eq!(run.report.violations(), Vec::<String>::new());
    assert_eq!(run.report.letters.len(), RootLetter::ALL.len());
    for (label, value) in run.report.metrics("rootd/farm") {
        record_metric(&label, value);
    }
    record_counter("rootd/farm/queries", run.report.queries as u64);
    record_counter("rootd/farm/responses", run.report.responses);
    record_counter("rootd/farm/sites", run.farm.site_count() as u64);
    println!(
        "rootd/farm: {} letters x {} sites, aggregate {:.0} q/s, wall {:.0} q/s, p99 {} ns",
        run.report.letters.len(),
        run.farm.site_count(),
        run.report.aggregate_qps,
        run.report.wall_qps,
        run.report.p99_ns,
    );
}

/// The self-healing farm's two resilience numbers, both gated by
/// bench_guard against absolute documented bounds (DESIGN §16), not a
/// baseline. `rootd/farm/healthy_overhead_pct` is the busy-rate cost of
/// carrying the chaos machinery with an *empty* failure plan — the
/// control plane elides probes for never-faulted sites and the shed /
/// digest bookkeeping stays outside the timed serve window, so the
/// chaos path must stay within 5% of the plain farm's aggregate rate
/// (best-of-3 to ride out shared-core scheduler luck: real added work
/// shows up in every round, noise doesn't). `rootd/farm/
/// degraded_served_fraction` is the legit service floor under the
/// headline chaos schedule — three concurrent site failures, a stalled
/// shard, a poisoned reload and an 8× junk flood — floor-gated at 0.99.
fn bench_farm_resilience(_c: &mut Criterion) {
    let queries: usize = std::env::var("ROOTD_CHAOS_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);
    let world = World::build(&WorldBuildConfig::tiny());
    let letters = [RootLetter::A, RootLetter::B, RootLetter::C];
    let farm = Farm::build(
        &world.topology,
        &world.catalog,
        world.zone_at(0),
        &letters,
        4,
    );
    // Reload validation one day into the day-0 zone's RRSIG window, as
    // in `examples/farm_chaos_report.rs`: clean zones pass, poisoned
    // ones fail on digest — not on expiry.
    let mut cfg = FarmChaosConfig::tiny(0x2025_0417, 86_400);
    cfg.farm.queries = queries;
    cfg.farm.shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let site = |letter: RootLetter, i: usize| farm.deployment(letter).unwrap().sites[i].id.0;
    cfg.plan.add(
        RootLetter::A,
        site(RootLetter::A, 1),
        FailureKind::Crash,
        (1_000, 4_000),
    );
    cfg.plan.add(
        RootLetter::B,
        site(RootLetter::B, 0),
        FailureKind::Blackhole,
        (1_500, 3_500),
    );
    cfg.plan.add(
        RootLetter::C,
        site(RootLetter::C, 1),
        FailureKind::Crash,
        (1_200, 3_800),
    );
    cfg.plan.add(
        RootLetter::C,
        site(RootLetter::C, 0),
        FailureKind::Stall { delay_ms: 250 },
        (1_000, 5_000),
    );
    cfg.plan.add_poisoned_reload(RootLetter::B, 2_500);
    cfg.floods.push(FloodWindow {
        start_ms: 2_000,
        end_ms: 6_000,
        amplification: 8.0,
    });

    // Healthy overhead: the plain farm vs the chaos path with nothing to
    // do. Interleave the pair and keep the best (smallest) of three
    // rounds — the overhead is a ratio of two busy rates measured on
    // shared cores, and only regressions that survive every round are
    // the code's fault.
    let healthy = cfg.twin();
    let mut overhead_pct = f64::INFINITY;
    let (mut base_qps, mut wrapped_qps) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        let base = farm.run(&cfg.farm).aggregate_qps;
        let wrapped = farm.run_chaos(&world.topology, &healthy).aggregate_qps;
        let pct = (base / wrapped - 1.0) * 100.0;
        if pct < overhead_pct {
            (overhead_pct, base_qps, wrapped_qps) = (pct, base, wrapped);
        }
    }
    record_metric("rootd/farm/healthy_overhead_pct", overhead_pct.max(0.0));

    // The degraded run: seeded counters, not timings — byte-stable
    // across machines and shard counts.
    let report = farm.run_chaos(&world.topology, &cfg);
    assert_eq!(report.violations(), Vec::<String>::new());
    record_metric(
        "rootd/farm/degraded_served_fraction",
        report.legit_served_fraction(),
    );
    record_counter("rootd/farm/chaos/served", report.served);
    record_counter("rootd/farm/chaos/served_hedged", report.served_hedged);
    record_counter("rootd/farm/chaos/shed_junk", report.shed_junk);
    record_counter("rootd/farm/chaos/shed_benign", report.shed_benign);
    record_counter("rootd/farm/chaos/unanswered", report.unanswered);
    record_counter("rootd/farm/chaos/reloads_rejected", report.reloads_rejected);
    println!(
        "rootd/farm/resilience: healthy overhead {overhead_pct:+.2}% \
         (base {base_qps:.0} q/s, chaos-wrapped {wrapped_qps:.0} q/s), \
         degraded legit served {:.4} ({} hedged, {} junk shed, {} unanswered)",
        report.legit_served_fraction(),
        report.served_hedged,
        report.shed_junk,
        report.unanswered,
    );
}

criterion_group!(
    benches,
    bench_engine,
    bench_faultfree_wrapper,
    bench_rrl_disabled_overhead,
    bench_attack_flood,
    bench_loadgen,
    bench_farm,
    bench_farm_resilience
);
criterion_main!(benches);
