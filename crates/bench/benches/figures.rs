//! One benchmark per paper figure: each measures the analysis pass that
//! regenerates the figure's data series from the shared record streams.

use analysis::clients::ClientAnalysis;
use analysis::colocation::ColocationResult;
use analysis::distance::DistanceResult;
use analysis::rtt::RttByRegion;
use analysis::stability::StabilityResult;
use analysis::traffic::{all_roots_series, BRootShift};
use criterion::{criterion_group, criterion_main, Criterion};
use dns_crypto::validity::timestamp_from_ymd as ts;
use netsim::Family;
use roots_core::{Pipeline, Scale};
use rss::{BRootPhase, RootLetter};
use std::hint::black_box;
use traces::flows::DayBucket;
use vantage::records::Target;

fn pipeline() -> &'static Pipeline {
    Pipeline::shared(Scale::Tiny)
}

fn bench_fig1_fig11_coverage_maps(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig1_fig11_site_maps", |b| {
        b.iter(|| {
            let report = analysis::coverage::CoverageReport::compute(&p.world.catalog, &p.probes);
            for letter in RootLetter::ALL {
                black_box(report.site_map(&p.world.catalog, letter));
            }
        })
    });
}

fn bench_fig2_schedule(c: &mut Criterion) {
    c.bench_function("fig2_timeline", |b| {
        b.iter(|| black_box(vantage::Schedule::default().round_count()))
    });
}

fn bench_fig3_stability(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig3_change_ecdf", |b| {
        b.iter(|| black_box(StabilityResult::compute(black_box(&p.probes))))
    });
}

fn bench_fig4_colocation(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig4_reduced_redundancy", |b| {
        b.iter(|| {
            let r = ColocationResult::compute(black_box(&p.probes));
            black_box(r.histogram_by_region(&p.world.population))
        })
    });
}

fn bench_fig5_distance(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig5_distance_inflation", |b| {
        b.iter(|| {
            for letter in [RootLetter::B, RootLetter::M] {
                for family in Family::BOTH {
                    black_box(DistanceResult::compute(
                        &p.world.catalog,
                        &p.world.population,
                        &p.probes,
                        Target {
                            letter,
                            b_phase: BRootPhase::Old,
                        },
                        family,
                    ));
                }
            }
        })
    });
}

fn bench_fig6_rtt(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig6_rtt_by_region", |b| {
        b.iter(|| {
            black_box(RttByRegion::compute(
                &p.world.population,
                black_box(&p.probes),
            ))
        })
    });
}

fn bench_fig7_isp_shift(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig7_isp_broot_shift", |b| {
        b.iter(|| {
            let shift = BRootShift::compute(black_box(&p.isp_flows));
            black_box(shift.in_family_shift(
                Family::V6,
                DayBucket::of(ts("20240205000000").unwrap()),
                DayBucket::of(ts("20240304000000").unwrap()),
            ))
        })
    });
}

fn bench_fig8_clients(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig8_client_curves", |b| {
        b.iter(|| {
            black_box(ClientAnalysis::compute(
                black_box(&p.isp_flows),
                DayBucket::of(ts("20240205000000").unwrap()),
                DayBucket::of(ts("20240304000000").unwrap()),
            ))
        })
    });
}

fn bench_fig9_ixp_shift(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig9_ixp_broot_shift", |b| {
        b.iter(|| {
            for flows in [&p.ixp_flows_na, &p.ixp_flows_eu] {
                let shift = BRootShift::compute(black_box(flows));
                black_box(shift.in_family_shift(
                    Family::V6,
                    DayBucket::of(ts("20231128000000").unwrap()),
                    DayBucket::of(ts("20231228000000").unwrap()),
                ));
            }
        })
    });
}

fn bench_fig10_bitflip(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig10_bitflip_report", |b| {
        b.iter(|| black_box(roots_core::experiments::run_one(p, "fig10").unwrap()))
    });
}

fn bench_fig12_fig13_all_roots(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("fig12_fig13_all_roots_series", |b| {
        b.iter(|| {
            black_box(all_roots_series(black_box(&p.isp_flows)));
            black_box(all_roots_series(black_box(&p.ixp_flows_eu)));
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig1_fig11_coverage_maps,
        bench_fig2_schedule,
        bench_fig3_stability,
        bench_fig4_colocation,
        bench_fig5_distance,
        bench_fig6_rtt,
        bench_fig7_isp_shift,
        bench_fig8_clients,
        bench_fig9_ixp_shift,
        bench_fig10_bitflip,
        bench_fig12_fig13_all_roots
);
criterion_main!(figures);
