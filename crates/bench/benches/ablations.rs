//! Ablation benchmarks for the design choices DESIGN.md §4 calls out:
//!
//! * name compression on/off (size and speed);
//! * ZONEMD over pre-sorted vs unsorted zones (the canonical-sort cost);
//! * churn model Markov vs i.i.d. (drives the Figure 3 tails);
//! * traceroute missing-hop rate sweep (co-location is a lower bound —
//!   the sweep shows monotone under-counting).

use analysis::colocation::ColocationResult;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use dns_zone::zonemd::compute_zonemd;
use netsim::churn::{ChurnModel, FlipModel};
use netsim::routing::propagate;
use netsim::{Family, SimRng, Topology, TopologyConfig};
use rss::catalog::{RootCatalog, WorldConfig};
use rss::RootLetter;
use std::hint::black_box;
use vantage::{MeasurementConfig, MeasurementEngine, Schedule, VecSink, World, WorldBuildConfig};

fn bench_compression_ablation(c: &mut Criterion) {
    let zone = build_root_zone(
        &RootZoneConfig {
            tld_count: 25,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        },
        &ZoneKeys::from_seed(1),
    );
    let msgs = dns_zone::axfr::serve_axfr(&zone, 1, 100).unwrap();
    let msg = &msgs[0];
    // Report the size difference once (visible in bench logs).
    let with = msg.to_wire().len();
    let without = msg.to_wire_uncompressed().len();
    eprintln!(
        "ablation: AXFR message {with} bytes compressed vs {without} uncompressed \
         ({:.1}% saved)",
        (1.0 - with as f64 / without as f64) * 100.0
    );
    let mut group = c.benchmark_group("ablation_compression");
    group.bench_function("encode_compressed", |b| b.iter(|| black_box(msg.to_wire())));
    group.bench_function("encode_uncompressed", |b| {
        b.iter(|| black_box(msg.to_wire_uncompressed()))
    });
    group.finish();
}

fn bench_zonemd_sort_ablation(c: &mut Criterion) {
    // The digest must canonical-sort its input; a pre-sorted zone shows the
    // incremental cost of sorting inside the digest pass.
    let keys = ZoneKeys::from_seed(2);
    let unsorted = build_root_zone(
        &RootZoneConfig {
            tld_count: 50,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        },
        &keys,
    );
    let mut presorted = dns_zone::Zone::new(unsorted.origin().clone());
    for rec in unsorted.canonical_records() {
        presorted.push(rec.clone()).unwrap();
    }
    let mut group = c.benchmark_group("ablation_zonemd_sort");
    group.sample_size(20);
    group.bench_function("digest_unsorted_zone", |b| {
        b.iter(|| black_box(compute_zonemd(&unsorted, dns_crypto::DigestAlg::Sha384).unwrap()))
    });
    group.bench_function("digest_presorted_zone", |b| {
        b.iter(|| black_box(compute_zonemd(&presorted, dns_crypto::DigestAlg::Sha384).unwrap()))
    });
    group.finish();
}

fn bench_churn_model_ablation(c: &mut Criterion) {
    let mut topology = Topology::generate(&TopologyConfig::default());
    let catalog = RootCatalog::build(&mut topology, &WorldConfig::default());
    let table = propagate(&topology, catalog.deployment(RootLetter::G), Family::V4);
    let asns: Vec<netsim::AsId> = topology.nodes().iter().map(|n| n.id).take(200).collect();
    let mut group = c.benchmark_group("ablation_churn_model");
    for (name, model) in [("markov", FlipModel::Markov), ("iid", FlipModel::Iid)] {
        let churn = ChurnModel {
            model,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("step_1000_rounds", name),
            &churn,
            |b, churn| {
                b.iter(|| {
                    let mut rng = SimRng::new(7);
                    let mut total_changes = 0u64;
                    for &asn in &asns {
                        let mut state = churn.initial();
                        let mut prev = None;
                        for _ in 0..1000 {
                            let cur = churn.step(&table, asn, &mut state, &mut rng);
                            if cur != prev {
                                total_changes += 1;
                            }
                            prev = cur;
                        }
                    }
                    black_box(total_changes)
                })
            },
        );
    }
    group.finish();
}

fn bench_missing_hop_sweep(c: &mut Criterion) {
    // Sweep the missing-hop probability and report the measured co-location
    // fraction — demonstrating the lower-bound property §5 relies on.
    let world = World::build(&WorldBuildConfig::tiny());
    let mut group = c.benchmark_group("ablation_missing_hops");
    group.sample_size(10);
    for miss in [0.0, 0.1, 0.3] {
        let engine = MeasurementEngine::new(
            &world,
            MeasurementConfig {
                schedule: Schedule::subsampled(800),
                missing_hop_prob: miss,
                ..Default::default()
            },
        );
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        let frac = ColocationResult::compute(&sink.probes).fraction_with_colocation(2);
        eprintln!("ablation: missing_hop_prob={miss} -> colocation fraction {frac:.3}");
        group.bench_with_input(
            BenchmarkId::new("measure_and_analyze", format!("{miss}")),
            &miss,
            |b, &miss| {
                b.iter(|| {
                    let engine = MeasurementEngine::new(
                        &world,
                        MeasurementConfig {
                            schedule: Schedule::subsampled(2000),
                            missing_hop_prob: miss,
                            ..Default::default()
                        },
                    );
                    let mut sink = VecSink::default();
                    engine.run(&mut sink);
                    black_box(ColocationResult::compute(&sink.probes).fraction_with_colocation(2))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets =
        bench_compression_ablation,
        bench_zonemd_sort_ablation,
        bench_churn_model_ablation,
        bench_missing_hop_sweep
);
criterion_main!(ablations);
