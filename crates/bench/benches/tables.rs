//! One benchmark per paper table: measures the analysis pass that
//! regenerates the table from a shared measurement (the measurement itself
//! is set up once, outside the timed region).

use analysis::coverage::CoverageReport;
use analysis::zonemd_pipeline::validate_transfers;
use criterion::{criterion_group, criterion_main, Criterion};
use roots_core::{Pipeline, Scale};
use std::hint::black_box;

fn pipeline() -> &'static Pipeline {
    Pipeline::shared(Scale::Tiny)
}

fn bench_table1(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("table1_worldwide_coverage", |b| {
        b.iter(|| {
            let report = CoverageReport::compute(&p.world.catalog, black_box(&p.probes));
            black_box(report.render_table1())
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("table2_zonemd_validation", |b| {
        b.iter(|| {
            let table = validate_transfers(&p.world, black_box(&p.transfers));
            black_box(table.render())
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("table3_vp_distribution", |b| {
        b.iter(|| black_box(roots_core::experiments::run_one(p, "table3").unwrap()))
    });
}

fn bench_table4(c: &mut Criterion) {
    let p = pipeline();
    c.bench_function("table4_per_region_coverage", |b| {
        b.iter(|| {
            let report = CoverageReport::compute(&p.world.catalog, black_box(&p.probes));
            black_box(report.render_table4())
        })
    });
}

criterion_group!(
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_table4
);
criterion_main!(tables);
