//! Microbenchmarks for the protocol substrates: SHA-2 throughput, wire
//! codec, ZONEMD digesting, signing, AXFR framing and route propagation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dns_crypto::{Sha256, Sha384};
use dns_wire::{Message, Name, Question, RrType};
use dns_zone::axfr::{assemble_axfr, serve_axfr};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::{sign_zone, SigningConfig, ZoneKeys};
use dns_zone::zonemd::compute_zonemd;
use netsim::routing::propagate;
use netsim::{Family, Topology, TopologyConfig};
use rss::catalog::{RootCatalog, WorldConfig};
use rss::RootLetter;
use std::hint::black_box;

fn bench_sha(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha2");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| black_box(Sha256::digest(d)))
        });
        group.bench_with_input(BenchmarkId::new("sha384", size), &data, |b, d| {
            b.iter(|| black_box(Sha384::digest(d)))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let zone = build_root_zone(
        &RootZoneConfig {
            tld_count: 25,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        },
        &ZoneKeys::from_seed(1),
    );
    let msgs = serve_axfr(&zone, 1, 100).unwrap();
    let msg = &msgs[0];
    let wire = msg.to_wire();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode_axfr_message", |b| {
        b.iter(|| black_box(msg.to_wire()))
    });
    group.bench_function("decode_axfr_message", |b| {
        b.iter(|| black_box(Message::from_wire(&wire).unwrap()))
    });
    let q = Message::query(1, Question::new(Name::root(), RrType::Soa));
    group.bench_function("encode_query", |b| b.iter(|| black_box(q.to_wire())));
    group.finish();
}

fn bench_zone_ops(c: &mut Criterion) {
    let keys = ZoneKeys::from_seed(2);
    let cfg = RootZoneConfig {
        tld_count: 50,
        rollout: RolloutPhase::Validating,
        ..Default::default()
    };
    let zone = build_root_zone(&cfg, &keys);
    let mut group = c.benchmark_group("zone");
    group.sample_size(20);
    group.bench_function("build_signed_zone_50tlds", |b| {
        b.iter(|| black_box(build_root_zone(&cfg, &keys)))
    });
    group.bench_function("zonemd_sha384", |b| {
        b.iter(|| black_box(compute_zonemd(&zone, dns_crypto::DigestAlg::Sha384).unwrap()))
    });
    group.bench_function("resign_zone", |b| {
        b.iter_batched(
            || zone.clone(),
            |mut z| {
                sign_zone(
                    &mut z,
                    &keys,
                    &SigningConfig {
                        inception: 1,
                        expiration: 2,
                        dnskey_ttl: 172800,
                        nsec_ttl: 86400,
                    },
                );
                black_box(z)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("axfr_serve_and_assemble", |b| {
        b.iter(|| {
            let msgs = serve_axfr(&zone, 1, 100).unwrap();
            black_box(assemble_axfr(&msgs, &Name::root()).unwrap())
        })
    });
    group.finish();
}

fn bench_tcp_framing(c: &mut Criterion) {
    let zone = build_root_zone(
        &RootZoneConfig {
            tld_count: 25,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        },
        &ZoneKeys::from_seed(3),
    );
    let msgs = serve_axfr(&zone, 1, 100).unwrap();
    let stream = dns_wire::tcp::frame_stream(&msgs).unwrap();
    let mut group = c.benchmark_group("tcp");
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.bench_function("frame_axfr_stream", |b| {
        b.iter(|| black_box(dns_wire::tcp::frame_stream(&msgs).unwrap()))
    });
    group.bench_function("deframe_axfr_stream", |b| {
        b.iter(|| black_box(dns_wire::tcp::deframe_stream(&stream).unwrap()))
    });
    group.finish();
}

fn bench_localroot_refresh(c: &mut Criterion) {
    use localroot::{LocalRoot, UpstreamSet, ValidationPolicy};
    use rss::{RootServer, ServerBehavior};
    use std::sync::Arc;
    let inception = 1_701_820_800;
    let mk_zone = |serial: u32| {
        build_root_zone(
            &RootZoneConfig {
                serial,
                tld_count: 25,
                inception,
                expiration: inception + 14 * 86400,
                rollout: RolloutPhase::Validating,
            },
            &ZoneKeys::from_seed(4),
        )
    };
    let upstreams = UpstreamSet {
        servers: vec![(
            RootLetter::A,
            RootServer {
                letter: RootLetter::A,
                identity: None,
                zone: Arc::new(mk_zone(2023120600)),
                behavior: ServerBehavior::default(),
            },
        )],
    };
    let mut group = c.benchmark_group("localroot");
    group.sample_size(20);
    group.bench_function("refresh_transfer_validate", |b| {
        b.iter(|| {
            let mut lr = LocalRoot::new(ValidationPolicy::strict());
            black_box(lr.refresh(&upstreams, inception + 60).unwrap())
        })
    });
    group.finish();
}

fn bench_rng_derivation(c: &mut Criterion) {
    // The per-probe stream derivation is the innermost loop of the whole
    // measurement (VPs × targets × families × rounds ≈ 10^8 at paper
    // scale). Contrast the old string-context path — which allocated and
    // formatted a key per probe — with the integer-tuple derivation the
    // engine now uses.
    use netsim::SimRng;
    let root = SimRng::new(42).derive("measurement");
    let mut group = c.benchmark_group("rng_derivation");
    group.bench_function("derive_format_string", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let mut rng = root.derive(&format!("probe/{}/{}/{}/{}", i % 675, i % 14, i % 2, i));
            black_box(rng.next_u64())
        })
    });
    group.bench_function("derive_ids", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let mut rng = root.derive_ids(&[i % 675, i % 14, i % 2, i]);
            black_box(rng.next_u64())
        })
    });
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut topology = Topology::generate(&TopologyConfig::default());
    let catalog = RootCatalog::build(&mut topology, &WorldConfig::default());
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    for letter in [RootLetter::B, RootLetter::F] {
        let d = catalog.deployment(letter);
        group.bench_function(format!("propagate_{}_v4", letter.ch()), |b| {
            b.iter(|| black_box(propagate(&topology, d, Family::V4)))
        });
    }
    group.finish();
}

criterion_group!(
    micro,
    bench_sha,
    bench_codec,
    bench_zone_ops,
    bench_tcp_framing,
    bench_localroot_refresh,
    bench_rng_derivation,
    bench_routing
);
criterion_main!(micro);
