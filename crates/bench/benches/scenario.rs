//! Scenario-engine microbenchmarks: the cost of applying and reverting
//! change events against a built world (each outage/restore pays one
//! letter routing recomputation; a link failure pays all thirteen), plus
//! a full zero-round engine pass (pure apply/revert lifecycle).

use criterion::{criterion_group, criterion_main, Criterion};
use rss::RootLetter;
use scenario::{catalog, EventKind, Scenario, ScenarioConfig, ScenarioEngine, ScenarioEvent};
use std::hint::black_box;
use vantage::{MeasurementConfig, Schedule, World, WorldBuildConfig, MEASUREMENT_START};

fn bench_apply_revert(c: &mut Criterion) {
    let mut world = World::build(&WorldBuildConfig::tiny());
    let site = world.attracting_sites(RootLetter::D, netsim::Family::V4)[0];
    let mut group = c.benchmark_group("scenario");
    group.sample_size(20);
    group.bench_function("outage_apply_revert", |b| {
        b.iter(|| {
            assert!(world.withdraw_site(RootLetter::D, site));
            assert!(world.restore_site(RootLetter::D, site));
            black_box(world.routing_hash(RootLetter::D))
        })
    });
    let a = world.topology.nodes()[0].id;
    let peer = world.topology.links(a)[0].to;
    group.bench_function("link_failure_apply_revert", |b| {
        b.iter(|| {
            let prior = world.topology.disable_link(a, peer).unwrap();
            world.recompute_all();
            world.topology.set_link_carriage(a, peer, prior.0, prior.1);
            world.recompute_all();
            black_box(world.routing_hash(RootLetter::A))
        })
    });
    group.finish();
}

fn bench_engine_lifecycle(c: &mut Criterion) {
    // A zero-round schedule isolates the engine's epoch bookkeeping:
    // init holds, apply, revert, teardown — no probing.
    let mut world = World::build(&WorldBuildConfig::tiny());
    let site = world.attracting_sites(RootLetter::D, netsim::Family::V4)[0];
    let scenario = Scenario::new(
        "bench",
        1,
        vec![ScenarioEvent {
            at: MEASUREMENT_START,
            until: None,
            kind: EventKind::SiteOutage {
                letter: RootLetter::D,
                site,
            },
        }],
    )
    .unwrap();
    let engine = ScenarioEngine::new(ScenarioConfig {
        base: MeasurementConfig {
            schedule: Schedule {
                start: MEASUREMENT_START,
                end: MEASUREMENT_START,
                ..Default::default()
            },
            ..Default::default()
        },
        burst_half_width: 0,
        workers: 1,
    });
    let mut group = c.benchmark_group("scenario");
    group.sample_size(20);
    group.bench_function("engine_zero_round_lifecycle", |b| {
        b.iter(|| black_box(engine.run(&mut world, &scenario).epochs.len()))
    });
    group.bench_function("builtin_demo_timeline_build", |b| {
        b.iter(|| black_box(catalog::outage_renumber_flap().events().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_apply_revert, bench_engine_lifecycle);
criterion_main!(benches);
