//! Bench regression guard: compare a fresh `BENCH_results.json` against a
//! committed baseline and fail CI when a guarded metric regressed by more
//! than 25%.
//!
//! Only allowlisted keys are guarded — the hot serve path
//! (`rootd/serve_*`), the codec microbenches (`codec/*`), and the
//! load-generator throughput (`rootd/loadgen/qps`) — because those are
//! the numbers this repo optimizes deliberately; everything else in the
//! results file is trajectory data and may drift with the model. Keys
//! containing `qps` are higher-is-better (fail when `new < old × 0.75`);
//! everything else is nanoseconds, lower-is-better (fail when
//! `new > max(old × 1.25, old + 250 ns)` — the absolute floor keeps
//! scheduler/timer jitter on sub-100 ns cached serves from tripping the
//! gate while still catching a slide back toward the microsecond-scale
//! uncached path). A guarded baseline key missing from the fresh run
//! also fails: a bench silently disappearing is a regression too.
//!
//! Usage: `bench_guard <baseline.json> <fresh.json>`

use std::process::ExitCode;

/// Guarded-key allowlist: exact labels and label prefixes. The
/// fault-free wrapper key also matches the `rootd/serve_` prefix; it is
/// listed explicitly because the <5% wrapper-overhead claim depends on
/// this exact label staying guarded even if the prefix list changes.
const EXACT: &[&str] = &["rootd/loadgen/qps", "rootd/serve_faultfree_wrapped"];
const PREFIXES: &[&str] = &["rootd/serve_", "codec/"];

/// Allowed relative regression before the guard fails.
const TOLERANCE: f64 = 0.25;

/// Absolute slack for lower-is-better (nanosecond) keys: deltas smaller
/// than this are measurement noise on ~100 ns benches, not regressions.
const NOISE_FLOOR_NS: f64 = 250.0;

fn guarded(label: &str) -> bool {
    EXACT.contains(&label) || PREFIXES.iter().any(|p| label.starts_with(p))
}

/// One comparison verdict for a guarded key.
enum Verdict {
    Ok,
    Missing,
    Regressed { allowed: f64 },
}

fn compare(label: &str, old: f64, new: Option<f64>) -> Verdict {
    let Some(new) = new else {
        return Verdict::Missing;
    };
    let higher_better = label.contains("qps");
    if higher_better {
        let floor = old * (1.0 - TOLERANCE);
        if new < floor {
            return Verdict::Regressed { allowed: floor };
        }
    } else {
        let ceiling = (old * (1.0 + TOLERANCE)).max(old + NOISE_FLOOR_NS);
        if new > ceiling {
            return Verdict::Regressed { allowed: ceiling };
        }
    }
    Verdict::Ok
}

fn run(baseline: &str, fresh: &str) -> Result<(), Vec<String>> {
    let old = criterion::parse_results(baseline);
    let new = criterion::parse_results(fresh);
    let lookup = |label: &str| new.iter().find(|(l, _)| l == label).map(|&(_, v)| v);

    let mut failures = Vec::new();
    let mut checked = 0usize;
    for (label, old_value) in old.iter().filter(|(l, _)| guarded(l)) {
        checked += 1;
        match compare(label, *old_value, lookup(label)) {
            Verdict::Ok => {}
            Verdict::Missing => {
                failures.push(format!(
                    "{label}: present in baseline, missing from fresh run"
                ));
            }
            Verdict::Regressed { allowed } => {
                let dir = if label.contains("qps") { "min" } else { "max" };
                failures.push(format!(
                    "{label}: {old_value:.1} -> {:.1} ({dir} allowed {allowed:.1})",
                    lookup(label).unwrap()
                ));
            }
        }
    }
    println!(
        "bench_guard: {checked} guarded keys checked, {} regressed",
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_guard <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    match run(&read(baseline_path), &read(fresh_path)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            for f in &failures {
                eprintln!("bench_guard: REGRESSION {f}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(pairs: &[(&str, f64)]) -> String {
        let mut s = String::from("{\n");
        for (label, v) in pairs {
            s.push_str(&format!("  \"{label}\": {v:.1},\n"));
        }
        s.push_str("}\n");
        s
    }

    #[test]
    fn qps_is_higher_better_and_ns_is_lower_better() {
        let base = json(&[("rootd/loadgen/qps", 10000.0), ("rootd/serve_soa", 2000.0)]);
        // Faster serve + higher qps: fine.
        assert!(run(
            &base,
            &json(&[("rootd/loadgen/qps", 50000.0), ("rootd/serve_soa", 100.0)])
        )
        .is_ok());
        // qps dropped below 75% of baseline: regression.
        let r = run(
            &base,
            &json(&[("rootd/loadgen/qps", 7000.0), ("rootd/serve_soa", 2000.0)]),
        );
        assert_eq!(r.unwrap_err().len(), 1);
        // serve time grew past 125% of baseline: regression.
        let r = run(
            &base,
            &json(&[("rootd/loadgen/qps", 10000.0), ("rootd/serve_soa", 2600.0)]),
        );
        assert_eq!(r.unwrap_err().len(), 1);
        // Within tolerance both ways: fine.
        assert!(run(
            &base,
            &json(&[("rootd/loadgen/qps", 8000.0), ("rootd/serve_soa", 2400.0)])
        )
        .is_ok());
    }

    #[test]
    fn nanosecond_jitter_stays_under_the_noise_floor() {
        // A 65 ns bench wobbling to 160 ns is timer noise, not a
        // regression — the absolute floor absorbs it.
        let base = json(&[("rootd/serve_soa", 65.0)]);
        assert!(run(&base, &json(&[("rootd/serve_soa", 160.0)])).is_ok());
        // Sliding back toward the microsecond-scale uncached path is not.
        let r = run(&base, &json(&[("rootd/serve_soa", 900.0)]));
        assert_eq!(r.unwrap_err().len(), 1);
    }

    #[test]
    fn unguarded_keys_never_fail_and_missing_guarded_keys_do() {
        let base = json(&[("zone/build", 1000.0), ("rootd/serve_chaos", 50.0)]);
        // zone/build tanking is ignored (not allowlisted)...
        assert!(run(
            &base,
            &json(&[("zone/build", 9999.0), ("rootd/serve_chaos", 50.0)])
        )
        .is_ok());
        // ...but a guarded key vanishing fails.
        let r = run(&base, &json(&[("zone/build", 1000.0)]));
        let errs = r.unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("missing"));
    }
}
