//! Bench regression guard: compare a fresh `BENCH_results.json` against a
//! committed baseline and fail CI when a guarded metric regressed by more
//! than 25%.
//!
//! Only allowlisted keys are guarded — the hot serve path
//! (`rootd/serve_*`), the codec microbenches (`codec/*`), the virtual
//! clock (`simclock/*`), the load-generator throughput
//! (`rootd/loadgen/qps`), and the planner's sweep throughput
//! (`planner/eval_batch/qps`) — because those are the numbers this repo
//! optimizes deliberately; everything else in the results file is
//! trajectory data and may drift with the model. Keys
//! containing `qps` are higher-is-better (fail when `new < old × 0.75`);
//! everything else is nanoseconds, lower-is-better (fail when
//! `new > max(old × 1.25, old + 250 ns)` — the absolute floor keeps
//! scheduler/timer jitter on sub-100 ns cached serves from tripping the
//! gate while still catching a slide back toward the microsecond-scale
//! uncached path). A guarded baseline key missing from the fresh run
//! also fails: a bench silently disappearing is a regression too.
//!
//! A second class of keys ([`ABS_CEILING`]) is gated against an
//! *absolute* documented bound instead of the baseline, so a bad
//! committed baseline can never grandfather a violation.
//!
//! Usage: `bench_guard <baseline.json> <fresh.json>`

use std::process::ExitCode;

/// Guarded-key allowlist: exact labels and label prefixes. The
/// fault-free wrapper key also matches the `rootd/serve_` prefix; it is
/// listed explicitly because the <5% wrapper-overhead claim depends on
/// this exact label staying guarded even if the prefix list changes.
const EXACT: &[&str] = &[
    "rootd/loadgen/qps",
    "rootd/serve_faultfree_wrapped",
    "rootd/flood_legit_p99",
    "planner/eval_batch/qps",
    "rootd/farm/aggregate_qps",
    "rootd/farm/p99_ns",
];
const PREFIXES: &[&str] = &["rootd/serve_", "codec/", "simclock/"];

/// Keys gated by an *absolute* ceiling instead of a baseline diff —
/// documented bounds, not trajectories. The fault-free wrapper's clean
/// fast path is asserted at ≤5% inside the bench itself (interleaved
/// measurement); the guard's cross-run ceiling adds slack for one-shot
/// CI timer variance while still catching the 11.9%-class regression
/// (a per-exchange plan lookup/clone sneaking back onto the hot path).
/// The disabled-RRL wrapper gets the tighter documented 5% bound: it is
/// a single `Option` check past `serve_udp_into` (no plan, no clone, no
/// bucket probe), and the bench records the median of paired ABBA-quad
/// differences discounted by its 10 ns single-process measurement floor
/// — so the percentage only moves when real work (an allocation, a
/// hash, a probe — all ≥ 20 ns) lands on the disabled path, not on
/// per-process code-layout luck.
/// The chaos wrapper joins the same bargain: with an empty failure plan
/// the self-healing farm (health timelines, steering epochs, shed
/// draws) must serve within 5% of the plain farm's aggregate busy rate.
/// The bench records the best of three interleaved rounds, so the
/// ceiling only trips on work that shows up in every round — a per-query
/// table rebuild or health lookup on the hot path, not scheduler luck.
const ABS_CEILING: &[(&str, f64)] = &[
    ("rootd/faultfree_wrapper_overhead_pct", 10.0),
    ("rootd/rrl_disabled_overhead_pct", 5.0),
    ("rootd/farm/healthy_overhead_pct", 5.0),
];

/// Keys gated by an *absolute* floor — documented lower bounds the fresh
/// run must clear regardless of the baseline. The serving farm's
/// aggregate busy-rate capacity (sum of per-letter serving rates, DESIGN
/// §15) is the headline claim of the constellation work: 10M+ qps. Like
/// [`ABS_CEILING`], a bad committed baseline can never grandfather a
/// shortfall, and the key may not silently vanish once the baseline has
/// it.
/// The degraded-service floor is seeded counters, not a timing: under
/// the headline chaos schedule (three concurrent site failures, a
/// stalled shard, a poisoned reload, an 8× junk flood — DESIGN §16) at
/// least 99% of legitimate queries must still get an answer, on any
/// machine, at any shard count.
const ABS_FLOOR: &[(&str, f64)] = &[
    ("rootd/farm/aggregate_qps", 10_000_000.0),
    ("rootd/farm/degraded_served_fraction", 0.99),
];

/// Allowed relative regression before the guard fails.
const TOLERANCE: f64 = 0.25;

/// Per-key tolerance overrides. The AXFR benches time multi-hundred-µs
/// allocation-heavy message streams, and on shared single-core CI
/// hardware their per-process timing is bimodal (±50–70% swings from
/// allocator/page-layout luck, observed across back-to-back runs of an
/// identical binary). A 25% gate on those keys flakes; a 2× ceiling
/// still catches real blowups (an accidental quadratic re-encode) while
/// riding out the fast/slow process modes.
const WIDE: &[(&str, f64)] = &[
    ("rootd/serve_axfr_stream", 1.0),
    ("codec/encode_axfr_message", 1.0),
    ("codec/decode_axfr_message", 1.0),
    // A wall-time quantile read from a log-bucketed histogram under a
    // multithreaded flood: adjacent buckets sit ~40% apart and scheduler
    // jitter spans ~3× across healthy runs, so the cross-run ceiling is
    // 4×. The tight invariant (attack-epoch p99 ≤ 2× the in-run quiet
    // baseline) is asserted inside the bench itself on every run; this
    // gate only has to catch RRL failing open, which pushes legit p99 an
    // order of magnitude.
    ("rootd/flood_legit_p99", 3.0),
    // Wall-clock throughput of a 4-worker sweep on shared CI cores:
    // contention swings it well past the 25% default, so the floor is
    // 2× down — still far above the order-of-magnitude collapse that an
    // accidental per-candidate world rebuild or a lost worker would cause.
    ("planner/eval_batch/qps", 0.5),
    // The farm's aggregate busy-rate sums 13 per-letter rates measured on
    // shared CI cores, and its batch-amortised p99 rides the same
    // log-bucketed histogram as the flood quantile: both swing well past
    // 25% run to run. The 10M-qps claim itself is held by the ABS_FLOOR
    // gate, so the baseline diff only has to catch collapses.
    ("rootd/farm/aggregate_qps", 0.5),
    ("rootd/farm/p99_ns", 3.0),
    // Wall-clock throughput of the 1M-query loadgen run: on the shared
    // single-core CI box, back-to-back runs of an identical binary swing
    // 1.8–2.8M q/s (±35%) with scheduler/noisy-neighbor luck, so the 25%
    // default flakes on a perfectly healthy tree. 2× down still catches
    // the 257k-class collapse (losing the answer cache) immediately.
    ("rootd/loadgen/qps", 0.5),
];

/// Absolute slack for lower-is-better (nanosecond) keys: deltas smaller
/// than this are measurement noise on ~100 ns benches, not regressions.
const NOISE_FLOOR_NS: f64 = 250.0;

fn guarded(label: &str) -> bool {
    EXACT.contains(&label) || PREFIXES.iter().any(|p| label.starts_with(p))
}

/// One comparison verdict for a guarded key.
enum Verdict {
    Ok,
    Missing,
    Regressed { allowed: f64 },
}

fn compare(label: &str, old: f64, new: Option<f64>) -> Verdict {
    let Some(new) = new else {
        return Verdict::Missing;
    };
    let tolerance = WIDE
        .iter()
        .find(|(l, _)| *l == label)
        .map(|&(_, t)| t)
        .unwrap_or(TOLERANCE);
    let higher_better = label.contains("qps");
    if higher_better {
        let floor = old * (1.0 - tolerance);
        if new < floor {
            return Verdict::Regressed { allowed: floor };
        }
    } else {
        let ceiling = (old * (1.0 + tolerance)).max(old + NOISE_FLOOR_NS);
        if new > ceiling {
            return Verdict::Regressed { allowed: ceiling };
        }
    }
    Verdict::Ok
}

fn run(baseline: &str, fresh: &str) -> Result<(), Vec<String>> {
    let old = criterion::parse_results(baseline);
    let new = criterion::parse_results(fresh);
    let lookup = |label: &str| new.iter().find(|(l, _)| l == label).map(|&(_, v)| v);

    let mut failures = Vec::new();
    let mut checked = 0usize;
    for (label, old_value) in old.iter().filter(|(l, _)| guarded(l)) {
        checked += 1;
        match compare(label, *old_value, lookup(label)) {
            Verdict::Ok => {}
            Verdict::Missing => {
                failures.push(format!(
                    "{label}: present in baseline, missing from fresh run"
                ));
            }
            Verdict::Regressed { allowed } => {
                let dir = if label.contains("qps") { "min" } else { "max" };
                failures.push(format!(
                    "{label}: {old_value:.1} -> {:.1} ({dir} allowed {allowed:.1})",
                    lookup(label).unwrap()
                ));
            }
        }
    }
    // Absolute ceilings: the fresh value must stay under the documented
    // bound regardless of what the baseline recorded (a bad committed
    // baseline must not grandfather a violation — exactly how the 11.9%
    // wrapper overhead shipped under a claimed 5% bound). Missing from
    // the fresh run fails only if the baseline had it, same as above.
    for &(label, ceiling) in ABS_CEILING {
        let in_baseline = old.iter().any(|(l, _)| l == label);
        checked += 1;
        match lookup(label) {
            Some(new) if new > ceiling => {
                failures.push(format!(
                    "{label}: {new:.1} exceeds absolute ceiling {ceiling:.1}"
                ));
            }
            None if in_baseline => {
                failures.push(format!(
                    "{label}: present in baseline, missing from fresh run"
                ));
            }
            _ => {}
        }
    }
    // Absolute floors: the mirror image for higher-is-better capacity
    // claims (the farm's 10M+ aggregate qps). Same missing-key rule.
    for &(label, floor) in ABS_FLOOR {
        let in_baseline = old.iter().any(|(l, _)| l == label);
        checked += 1;
        match lookup(label) {
            Some(new) if new < floor => {
                failures.push(format!(
                    "{label}: {new:.1} falls short of absolute floor {floor:.1}"
                ));
            }
            None if in_baseline => {
                failures.push(format!(
                    "{label}: present in baseline, missing from fresh run"
                ));
            }
            _ => {}
        }
    }
    println!(
        "bench_guard: {checked} guarded keys checked, {} regressed",
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: bench_guard <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_guard: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    match run(&read(baseline_path), &read(fresh_path)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            for f in &failures {
                eprintln!("bench_guard: REGRESSION {f}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(pairs: &[(&str, f64)]) -> String {
        let mut s = String::from("{\n");
        for (label, v) in pairs {
            s.push_str(&format!("  \"{label}\": {v:.1},\n"));
        }
        s.push_str("}\n");
        s
    }

    #[test]
    fn qps_is_higher_better_and_ns_is_lower_better() {
        let base = json(&[("rootd/loadgen/qps", 10000.0), ("rootd/serve_soa", 2000.0)]);
        // Faster serve + higher qps: fine.
        assert!(run(
            &base,
            &json(&[("rootd/loadgen/qps", 50000.0), ("rootd/serve_soa", 100.0)])
        )
        .is_ok());
        // qps dropped below the loadgen key's wide 2×-down floor:
        // regression (a 30% dip alone rides the single-core noise band).
        let r = run(
            &base,
            &json(&[("rootd/loadgen/qps", 4000.0), ("rootd/serve_soa", 2000.0)]),
        );
        assert_eq!(r.unwrap_err().len(), 1);
        assert!(run(
            &base,
            &json(&[("rootd/loadgen/qps", 7000.0), ("rootd/serve_soa", 2000.0)])
        )
        .is_ok());
        // serve time grew past 125% of baseline: regression.
        let r = run(
            &base,
            &json(&[("rootd/loadgen/qps", 10000.0), ("rootd/serve_soa", 2600.0)]),
        );
        assert_eq!(r.unwrap_err().len(), 1);
        // Within tolerance both ways: fine.
        assert!(run(
            &base,
            &json(&[("rootd/loadgen/qps", 8000.0), ("rootd/serve_soa", 2400.0)])
        )
        .is_ok());
    }

    #[test]
    fn nanosecond_jitter_stays_under_the_noise_floor() {
        // A 65 ns bench wobbling to 160 ns is timer noise, not a
        // regression — the absolute floor absorbs it.
        let base = json(&[("rootd/serve_soa", 65.0)]);
        assert!(run(&base, &json(&[("rootd/serve_soa", 160.0)])).is_ok());
        // Sliding back toward the microsecond-scale uncached path is not.
        let r = run(&base, &json(&[("rootd/serve_soa", 900.0)]));
        assert_eq!(r.unwrap_err().len(), 1);
    }

    #[test]
    fn axfr_keys_get_the_wide_ceiling_but_still_fail_on_blowups() {
        let base = json(&[("rootd/serve_axfr_stream", 500_000.0)]);
        // +57% (the observed bimodal slow mode): tolerated.
        assert!(run(&base, &json(&[("rootd/serve_axfr_stream", 787_000.0)])).is_ok());
        // Past 2×: a real regression.
        let r = run(&base, &json(&[("rootd/serve_axfr_stream", 1_100_000.0)]));
        assert_eq!(r.unwrap_err().len(), 1);
    }

    #[test]
    fn absolute_ceiling_ignores_the_baseline() {
        let key = "rootd/faultfree_wrapper_overhead_pct";
        // A bad committed baseline (the shipped 11.9%) must not
        // grandfather a fresh violation.
        let bad_base = json(&[(key, 11.9)]);
        let r = run(&bad_base, &json(&[(key, 11.9)]));
        let errs = r.unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("absolute ceiling"));
        // Under the ceiling passes no matter what the baseline said.
        assert!(run(&bad_base, &json(&[(key, 3.0)])).is_ok());
        // Key vanishing from the fresh run fails when the baseline had it...
        let r = run(&json(&[(key, 3.0)]), &json(&[("codec/parse", 100.0)]));
        let errs = r.unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("missing"));
        // ...but a baseline that never had it doesn't demand it.
        assert!(run(&json(&[("zone/build", 1.0)]), &json(&[("zone/build", 1.0)])).is_ok());
    }

    #[test]
    fn rrl_gates_cover_the_disabled_wrapper_and_the_flood_quantile() {
        // The disabled-RRL overhead is ceiling-gated at 5% regardless of
        // the baseline.
        let key = "rootd/rrl_disabled_overhead_pct";
        let r = run(&json(&[(key, 1.0)]), &json(&[(key, 7.5)]));
        let errs = r.unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("absolute ceiling"));
        assert!(run(&json(&[(key, 1.0)]), &json(&[(key, 4.9)])).is_ok());
        // The flood p99 rides the wide ceiling (log-bucket jumps plus
        // flood-scheduler jitter) but a fail-open blowup past 4× still
        // trips, and the key may not silently vanish.
        let p99 = "rootd/flood_legit_p99";
        let base = json(&[(p99, 5_000.0)]);
        assert!(run(&base, &json(&[(p99, 9_000.0)])).is_ok());
        assert!(run(&base, &json(&[(p99, 18_000.0)])).is_ok());
        assert_eq!(run(&base, &json(&[(p99, 60_000.0)])).unwrap_err().len(), 1);
        assert_eq!(
            run(&base, &json(&[("zone/build", 1.0)])).unwrap_err().len(),
            1
        );
    }

    #[test]
    fn farm_aggregate_is_floor_gated_at_ten_million_qps() {
        let key = "rootd/farm/aggregate_qps";
        // Clearing the floor passes, however modest the baseline was.
        assert!(run(&json(&[(key, 12_000_000.0)]), &json(&[(key, 11_000_000.0)])).is_ok());
        // Falling short of 10M fails even when the baseline already did —
        // a bad committed baseline cannot grandfather a shortfall.
        let r = run(&json(&[(key, 9_000_000.0)]), &json(&[(key, 9_500_000.0)]));
        let errs = r.unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("absolute floor"));
        // A collapse trips both the floor and the (wide, 50%) baseline
        // diff; the key vanishing fails too.
        let r = run(&json(&[(key, 50_000_000.0)]), &json(&[(key, 8_000_000.0)]));
        assert_eq!(r.unwrap_err().len(), 2);
        let r = run(&json(&[(key, 50_000_000.0)]), &json(&[("zone/build", 1.0)]));
        assert_eq!(r.unwrap_err().len(), 2);
        // A baseline that never had the key does not demand it.
        assert!(run(&json(&[("zone/build", 1.0)]), &json(&[("zone/build", 1.0)])).is_ok());
    }

    #[test]
    fn farm_p99_rides_the_wide_ceiling() {
        let key = "rootd/farm/p99_ns";
        let base = json(&[(key, 300.0)]);
        // Log-bucket + scheduler jitter within 4×: tolerated (the 250 ns
        // noise floor also applies at this scale).
        assert!(run(&base, &json(&[(key, 1_100.0)])).is_ok());
        // An order-of-magnitude slide to the uncached path is not.
        assert_eq!(run(&base, &json(&[(key, 3_000.0)])).unwrap_err().len(), 1);
    }

    #[test]
    fn farm_resilience_gates_ignore_the_baseline() {
        // The healthy chaos-wrapper overhead is ceiling-gated at 5%
        // regardless of what the baseline recorded.
        let key = "rootd/farm/healthy_overhead_pct";
        let r = run(&json(&[(key, 1.0)]), &json(&[(key, 6.2)]));
        let errs = r.unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("absolute ceiling"));
        assert!(run(&json(&[(key, 6.2)]), &json(&[(key, 3.0)])).is_ok());
        // The degraded service floor holds at 0.99 even when a bad
        // committed baseline already fell short, and the key may not
        // silently vanish once the baseline has it.
        let floor = "rootd/farm/degraded_served_fraction";
        let r = run(&json(&[(floor, 0.9)]), &json(&[(floor, 0.9)]));
        let errs = r.unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("absolute floor"));
        assert!(run(&json(&[(floor, 0.9)]), &json(&[(floor, 1.0)])).is_ok());
        let r = run(&json(&[(floor, 1.0)]), &json(&[("zone/build", 1.0)]));
        let errs = r.unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("missing"));
    }

    #[test]
    fn unguarded_keys_never_fail_and_missing_guarded_keys_do() {
        let base = json(&[("zone/build", 1000.0), ("rootd/serve_chaos", 50.0)]);
        // zone/build tanking is ignored (not allowlisted)...
        assert!(run(
            &base,
            &json(&[("zone/build", 9999.0), ("rootd/serve_chaos", 50.0)])
        )
        .is_ok());
        // ...but a guarded key vanishing fails.
        let r = run(&base, &json(&[("zone/build", 1000.0)]));
        let errs = r.unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("missing"));
    }
}
