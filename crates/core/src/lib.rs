//! `roots-core`: the public facade of the *roots-go-deep* reproduction.
//!
//! Ties the substrate crates together into an end-to-end pipeline:
//!
//! ```text
//! World::build ──▶ MeasurementEngine ──▶ ProbeRecord / TransferRecord ─┐
//! TraceConfig  ──▶ generate_flows    ──▶ FlowObservation ─────────────┤
//!                                                                     ▼
//!                                 analysis::* ──▶ tables & figures (text)
//! ```
//!
//! The [`experiments`] registry maps every table and figure of the paper to
//! a runnable experiment; [`Pipeline`] executes the shared measurement once
//! and hands the record streams to each experiment. [`scale`] provides
//! laptop-to-paper sizing presets.
//!
//! # Quickstart
//!
//! ```
//! use roots_core::{Scale, Pipeline};
//!
//! let pipeline = Pipeline::run(Scale::Tiny);
//! let table1 = roots_core::experiments::run_one(&pipeline, "table1").unwrap();
//! assert!(table1.contains("Table 1"));
//! ```

pub mod experiments;
pub mod farm;
pub mod pipeline;
pub mod planning;
pub mod scale;
pub mod scenarios;
pub mod serving;

pub use farm::{FarmChaosRun, FarmRun};
pub use pipeline::Pipeline;
pub use planning::PlannerRun;
pub use scale::Scale;
pub use scenarios::ScenarioPipeline;
pub use serving::{AttackRun, ClockChaosRun, ServingPipeline};
