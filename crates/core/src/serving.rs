//! The serving layer wired into the core facade.
//!
//! [`ServingPipeline`] builds a scale's world, stands up one root letter's
//! anycast fleet as wire-level [`rootd`] engines (one per catalog site,
//! sharing a precompiled zone index), and drives a seeded, B-Root-shaped
//! query load through the full parse → serve → encode path. The resulting
//! [`LoadReport`] is what the `rootd_demo` registry entry and
//! `examples/rootd_bench.rs` render.
//!
//! [`ClockChaosRun`] is the virtual-time composition of the whole stack:
//! one scenario's change events, the serving fleet under load, and a
//! localroot refresh client, co-executed on a single [`simclock`] axis
//! (see DESIGN §12 and `examples/clock_chaos_demo.rs`).

use crate::scale::Scale;
use localroot::{upstream_transport, LocalRoot, RefreshOutcome, ValidationPolicy};
use rootd::loadgen::{self, SiteFleet};
use rootd::{ArrivalSchedule, FaultyTransport, InprocTransport, LoadReport, LoadgenConfig};
use rss::{RootLetter, RootServer};
use scenario::{EventKind, Scenario, ScenarioEvent};
use simclock::{ClockHandle, TimeAxis};
use std::sync::{Arc, OnceLock};
use vantage::World;

/// One letter's serving fleet under generated load.
pub struct ServingPipeline {
    pub scale: Scale,
    pub letter: RootLetter,
    pub fleet: SiteFleet,
    pub report: LoadReport,
}

impl ServingPipeline {
    /// Build the scale's world, index its day-0 zone, and run `cfg`'s load
    /// against `letter`'s per-site engines.
    pub fn run(scale: Scale, letter: RootLetter, cfg: &LoadgenConfig) -> ServingPipeline {
        let world = World::build(&scale.world());
        let zone = world.zone_at(0);
        let fleet = SiteFleet::build(&world.topology, &world.catalog, letter, zone);
        let report = loadgen::run(&fleet, cfg);
        ServingPipeline {
            scale,
            letter,
            fleet,
            report,
        }
    }

    /// The built-in demo: B-Root's fleet at `Tiny` scale under a short
    /// seeded load, built once per process.
    pub fn shared_demo() -> &'static ServingPipeline {
        static DEMO: OnceLock<ServingPipeline> = OnceLock::new();
        DEMO.get_or_init(|| {
            ServingPipeline::run(
                Scale::Tiny,
                RootLetter::B,
                &LoadgenConfig {
                    queries: 20_000,
                    ..LoadgenConfig::tiny(0x2023_0703)
                },
            )
        })
    }

    fn header(&self) -> String {
        format!(
            "Serving layer: {}.root at {:?} scale — {} anycast sites\n",
            self.letter.ch(),
            self.scale,
            self.fleet.site_count(),
        )
    }

    /// Render the run for the examples: counters plus wall-clock
    /// throughput and latency quantiles.
    pub fn render(&self) -> String {
        self.header() + &self.report.render()
    }

    /// Render for the experiment registry: the seeded, machine-independent
    /// counters only, so the registry's output stays byte-identical across
    /// runs (timing numbers live in `cargo bench` / `rootd_bench`).
    pub fn render_deterministic(&self) -> String {
        self.header() + &self.report.render_counts()
    }
}

/// The refresh client's upstream letters in the clock-chaos demo.
pub const CHAOS_UPSTREAMS: [RootLetter; 3] = [RootLetter::A, RootLetter::B, RootLetter::C];

/// One scenario, one clock: the serving fleet under load, the scenario's
/// fault windows, and a localroot refresh client, co-executed on a single
/// virtual-time axis.
///
/// The three time consumers share the [`TimeAxis`] anchored at the
/// scale's schedule start:
///
/// * the scenario's wire-visible events become *windowed* fault specs —
///   [`scenario::fault_plan_on_clock`] for the client seat the refresh
///   client sits in, [`scenario::fault_plan_for_fleet`] for the serving
///   letter's per-site transports;
/// * the load generator pins every query attempt to its scheduled
///   arrival instant (one query per virtual ms), so event windows hit
///   exactly the queries that arrive inside them, on any worker count;
/// * the refresh client advances a shared [`ClockHandle`] through its
///   timeouts and backoffs, so *waiting* carries it across the same
///   windows the load generator's queries are falling into — riding out
///   a bounded blackhole purely by backing off.
pub struct ClockChaosRun {
    pub axis: TimeAxis,
    /// The serving fleet's report under the scenario's outage windows.
    pub load: LoadReport,
    /// The refresh client's outcome (errors stringified so replays
    /// compare with `==`).
    pub refresh: Result<RefreshOutcome, String>,
    pub refresh_metrics: localroot::Metrics,
    /// Backoff waits taken on the shared clock, as `(start_ms, wait_ms)`.
    pub backoff_log: Vec<(u64, u64)>,
    /// Where the shared clock ended after the refresh cycle.
    pub clock_ms: u64,
    /// Whether the refreshed copy is fresh at the clock's final wall time.
    pub serving: bool,
}

impl ClockChaosRun {
    /// Run `scenario` against `letter`'s fleet (serving side) and the
    /// [`CHAOS_UPSTREAMS`] (refresh side), everything on one axis.
    pub fn run(
        scale: Scale,
        letter: RootLetter,
        scenario: &Scenario,
        queries: usize,
        threads: usize,
    ) -> ClockChaosRun {
        let axis = TimeAxis::anchored_at(scale.schedule().start);
        let world = World::build(&scale.world());
        let zone = world.zone_at(axis.base_s);

        // Serving side: the fleet's plan keys outage windows by site id;
        // arrivals pin each query attempt to its virtual instant.
        let fleet_plan =
            scenario::fault_plan_for_fleet(scenario, letter, axis).with_timeout_ms(200);
        let fleet = SiteFleet::build(&world.topology, &world.catalog, letter, Arc::clone(&zone));
        let load = loadgen::run(
            &fleet,
            &LoadgenConfig {
                queries,
                threads,
                faults: Some(fleet_plan),
                arrivals: Some(ArrivalSchedule {
                    start_ms: 0,
                    interarrival_ms: 1,
                }),
                ..LoadgenConfig::tiny(0x2023_0703)
            },
        );

        // Refresh side: the client-seat plan keys the same windows by
        // upstream letter; all transports share one clock the client
        // advances by sleeping through backoffs.
        let plan = Arc::new(scenario::fault_plan_on_clock(scenario, axis).with_timeout_ms(200));
        let clock = ClockHandle::new();
        let mut upstreams: Vec<(RootLetter, FaultyTransport<InprocTransport>)> = CHAOS_UPSTREAMS
            .into_iter()
            .map(|l| {
                let server = RootServer {
                    letter: l,
                    identity: Some(format!("{}1.clock-chaos", l.ch())),
                    zone: Arc::clone(&zone),
                    behavior: Default::default(),
                };
                (
                    l,
                    FaultyTransport::new(
                        upstream_transport(&server),
                        Arc::clone(&plan),
                        l.index() as u64,
                    )
                    .with_clock(clock.clone()),
                )
            })
            .collect();
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        lr.retry.attempts = 6;
        let refresh = lr
            .refresh_on_clock(&mut upstreams, &clock, axis)
            .map_err(|e| e.to_string());
        let serving = lr.is_serving(axis.now_wall(&clock));
        ClockChaosRun {
            axis,
            load,
            refresh,
            refresh_metrics: lr.metrics,
            backoff_log: lr.backoff_log,
            clock_ms: clock.now_ms(),
            serving,
        }
    }

    /// The built-in demo scenario: every refresh upstream goes dark for
    /// the first five virtual seconds — a blackhole bounded in *time*,
    /// which backoff on the shared clock can ride out. The serving
    /// `letter`'s outage event carries its fleet's first real site id, so
    /// the same window also swallows that site's queries.
    pub fn demo_scenario(scale: Scale, letter: RootLetter) -> Scenario {
        let world = World::build(&scale.world());
        let dark_site = world
            .catalog
            .sites_of(letter)
            .next()
            .map(|s| s.site_id)
            .expect("serving letter has at least one site");
        let t0 = scale.schedule().start;
        let events = CHAOS_UPSTREAMS
            .into_iter()
            .map(|l| ScenarioEvent {
                at: t0,
                until: Some(t0 + 5),
                kind: EventKind::SiteOutage {
                    letter: l,
                    site: if l == letter {
                        dark_site
                    } else {
                        netsim::anycast::SiteId(0)
                    },
                },
            })
            .collect();
        Scenario::new("clock-blackhole", 0x5eed_c10c, events).expect("demo scenario is well-formed")
    }

    /// Deterministic digest for replay comparison: every seeded counter,
    /// none of the wall-clock timings.
    pub fn fingerprint(&self) -> String {
        format!(
            "load[responses={} timeouts={} retries={} unanswered={} faults={}] \
             refresh[{:?} retries={} timeouts={} backoff_ms={}] \
             backoffs={:?} clock={}ms serving={}",
            self.load.responses,
            self.load.timeouts,
            self.load.retries,
            self.load.unanswered,
            self.load.fault_counters.total_faults(),
            self.refresh,
            self.refresh_metrics.retries,
            self.refresh_metrics.timeouts,
            self.refresh_metrics.backoff_ms_total,
            self.backoff_log,
            self.clock_ms,
            self.serving,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_pipeline_serves_the_load() {
        let p = ServingPipeline::shared_demo();
        assert_eq!(p.report.queries, 20_000);
        // Every parseable query gets an answer through the wire path.
        assert!(p.report.responses > 19_000);
        assert!(p.report.nxdomain > 0);
        assert!(p.report.referrals > 0);
        assert!(p.report.p50_ns <= p.report.p99_ns);
        // The fleet serves from the precompiled answer cache; every query
        // is classified as a hit or a miss, and the seeded counters are
        // part of the registry's deterministic rendering.
        assert_eq!(p.report.cache_hits + p.report.cache_misses, 20_000);
        assert!(p.report.cache_hits > p.report.cache_misses);
        assert!(p.render_deterministic().contains("cache hits"));
        let rendered = p.render();
        assert!(rendered.contains("latency p99"));
    }

    #[test]
    fn clock_chaos_interleaves_and_replays_bit_identically() {
        let scenario = ClockChaosRun::demo_scenario(Scale::Tiny, RootLetter::B);
        let a = ClockChaosRun::run(Scale::Tiny, RootLetter::B, &scenario, 8_000, 2);
        // The refresh client rode out the [0, 5000) ms blackhole purely
        // by backing off on the shared clock.
        assert!(matches!(a.refresh, Ok(RefreshOutcome::Updated { .. })));
        assert!(a.clock_ms >= 5_000, "clock = {} ms", a.clock_ms);
        assert!(a.refresh_metrics.timeouts > 0);
        assert!(!a.backoff_log.is_empty());
        assert!(a.serving);
        // The same outage window cost the serving fleet client-visible
        // faults: queries that arrived inside it hit dead air.
        assert!(a.load.timeouts > 0);
        assert!(a.load.fault_counters.blackholed > 0);
        assert!(a.load.responses > 0);
        // Bit-identical replay — same run, and a different loadgen worker
        // count (arrival pinning makes partitioning invisible).
        let b = ClockChaosRun::run(Scale::Tiny, RootLetter::B, &scenario, 8_000, 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ClockChaosRun::run(Scale::Tiny, RootLetter::B, &scenario, 8_000, 5);
        assert_eq!(a.fingerprint(), c.fingerprint());
    }
}
