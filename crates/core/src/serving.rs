//! The serving layer wired into the core facade.
//!
//! [`ServingPipeline`] builds a scale's world, stands up one root letter's
//! anycast fleet as wire-level [`rootd`] engines (one per catalog site,
//! sharing a precompiled zone index), and drives a seeded, B-Root-shaped
//! query load through the full parse → serve → encode path. The resulting
//! [`LoadReport`] is what the `rootd_demo` registry entry and
//! `examples/rootd_bench.rs` render.

use crate::scale::Scale;
use rootd::loadgen::{self, SiteFleet};
use rootd::{LoadReport, LoadgenConfig};
use rss::RootLetter;
use std::sync::OnceLock;
use vantage::World;

/// One letter's serving fleet under generated load.
pub struct ServingPipeline {
    pub scale: Scale,
    pub letter: RootLetter,
    pub fleet: SiteFleet,
    pub report: LoadReport,
}

impl ServingPipeline {
    /// Build the scale's world, index its day-0 zone, and run `cfg`'s load
    /// against `letter`'s per-site engines.
    pub fn run(scale: Scale, letter: RootLetter, cfg: &LoadgenConfig) -> ServingPipeline {
        let world = World::build(&scale.world());
        let zone = world.zone_at(0);
        let fleet = SiteFleet::build(&world.topology, &world.catalog, letter, zone);
        let report = loadgen::run(&fleet, cfg);
        ServingPipeline {
            scale,
            letter,
            fleet,
            report,
        }
    }

    /// The built-in demo: B-Root's fleet at `Tiny` scale under a short
    /// seeded load, built once per process.
    pub fn shared_demo() -> &'static ServingPipeline {
        static DEMO: OnceLock<ServingPipeline> = OnceLock::new();
        DEMO.get_or_init(|| {
            ServingPipeline::run(
                Scale::Tiny,
                RootLetter::B,
                &LoadgenConfig {
                    queries: 20_000,
                    ..LoadgenConfig::tiny(0x2023_0703)
                },
            )
        })
    }

    fn header(&self) -> String {
        format!(
            "Serving layer: {}.root at {:?} scale — {} anycast sites\n",
            self.letter.ch(),
            self.scale,
            self.fleet.site_count(),
        )
    }

    /// Render the run for the examples: counters plus wall-clock
    /// throughput and latency quantiles.
    pub fn render(&self) -> String {
        self.header() + &self.report.render()
    }

    /// Render for the experiment registry: the seeded, machine-independent
    /// counters only, so the registry's output stays byte-identical across
    /// runs (timing numbers live in `cargo bench` / `rootd_bench`).
    pub fn render_deterministic(&self) -> String {
        self.header() + &self.report.render_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_pipeline_serves_the_load() {
        let p = ServingPipeline::shared_demo();
        assert_eq!(p.report.queries, 20_000);
        // Every parseable query gets an answer through the wire path.
        assert!(p.report.responses > 19_000);
        assert!(p.report.nxdomain > 0);
        assert!(p.report.referrals > 0);
        assert!(p.report.p50_ns <= p.report.p99_ns);
        // The fleet serves from the precompiled answer cache; every query
        // is classified as a hit or a miss, and the seeded counters are
        // part of the registry's deterministic rendering.
        assert_eq!(p.report.cache_hits + p.report.cache_misses, 20_000);
        assert!(p.report.cache_hits > p.report.cache_misses);
        assert!(p.render_deterministic().contains("cache hits"));
        let rendered = p.render();
        assert!(rendered.contains("latency p99"));
    }
}
