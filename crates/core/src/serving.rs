//! The serving layer wired into the core facade.
//!
//! [`ServingPipeline`] builds a scale's world, stands up one root letter's
//! anycast fleet as wire-level [`rootd`] engines (one per catalog site,
//! sharing a precompiled zone index), and drives a seeded, B-Root-shaped
//! query load through the full parse → serve → encode path. The resulting
//! [`LoadReport`] is what the `rootd_demo` registry entry and
//! `examples/rootd_bench.rs` render.
//!
//! [`ClockChaosRun`] is the virtual-time composition of the whole stack:
//! one scenario's change events, the serving fleet under load, and a
//! localroot refresh client, co-executed on a single [`simclock`] axis
//! (see DESIGN §12 and `examples/clock_chaos_demo.rs`).

use crate::scale::Scale;
use analysis::{FloodDiffReport, FloodEpoch};
use localroot::{upstream_transport, LocalRoot, RefreshOutcome, ValidationPolicy};
use netsim::types::Tier;
use rootd::loadgen::{self, SiteFleet};
use rootd::{
    attack, ArrivalSchedule, AttackConfig, AttackReport, FaultyTransport, InprocTransport,
    LoadReport, LoadgenConfig,
};
use rss::{RootLetter, RootServer};
use scenario::{EventKind, Scenario, ScenarioEvent};
use simclock::{ClockHandle, TimeAxis};
use std::sync::{Arc, OnceLock};
use vantage::World;

/// One letter's serving fleet under generated load.
pub struct ServingPipeline {
    pub scale: Scale,
    pub letter: RootLetter,
    pub fleet: SiteFleet,
    pub report: LoadReport,
}

impl ServingPipeline {
    /// Build the scale's world, index its day-0 zone, and run `cfg`'s load
    /// against `letter`'s per-site engines.
    pub fn run(scale: Scale, letter: RootLetter, cfg: &LoadgenConfig) -> ServingPipeline {
        let world = World::build(&scale.world());
        let zone = world.zone_at(0);
        let fleet = SiteFleet::build(&world.topology, &world.catalog, letter, zone);
        let report = loadgen::run(&fleet, cfg);
        ServingPipeline {
            scale,
            letter,
            fleet,
            report,
        }
    }

    /// The built-in demo: B-Root's fleet at `Tiny` scale under a short
    /// seeded load, built once per process.
    pub fn shared_demo() -> &'static ServingPipeline {
        static DEMO: OnceLock<ServingPipeline> = OnceLock::new();
        DEMO.get_or_init(|| {
            ServingPipeline::run(
                Scale::Tiny,
                RootLetter::B,
                &LoadgenConfig {
                    queries: 20_000,
                    ..LoadgenConfig::tiny(0x2023_0703)
                },
            )
        })
    }

    fn header(&self) -> String {
        format!(
            "Serving layer: {}.root at {:?} scale — {} anycast sites\n",
            self.letter.ch(),
            self.scale,
            self.fleet.site_count(),
        )
    }

    /// Render the run for the examples: counters plus wall-clock
    /// throughput and latency quantiles.
    pub fn render(&self) -> String {
        self.header() + &self.report.render()
    }

    /// Render for the experiment registry: the seeded, machine-independent
    /// counters only, so the registry's output stays byte-identical across
    /// runs (timing numbers live in `cargo bench` / `rootd_bench`).
    pub fn render_deterministic(&self) -> String {
        self.header() + &self.report.render_counts()
    }
}

/// The refresh client's upstream letters in the clock-chaos demo.
pub const CHAOS_UPSTREAMS: [RootLetter; 3] = [RootLetter::A, RootLetter::B, RootLetter::C];

/// One scenario, one clock: the serving fleet under load, the scenario's
/// fault windows, and a localroot refresh client, co-executed on a single
/// virtual-time axis.
///
/// The three time consumers share the [`TimeAxis`] anchored at the
/// scale's schedule start:
///
/// * the scenario's wire-visible events become *windowed* fault specs —
///   [`scenario::fault_plan_on_clock`] for the client seat the refresh
///   client sits in, [`scenario::fault_plan_for_fleet`] for the serving
///   letter's per-site transports;
/// * the load generator pins every query attempt to its scheduled
///   arrival instant (one query per virtual ms), so event windows hit
///   exactly the queries that arrive inside them, on any worker count;
/// * the refresh client advances a shared [`ClockHandle`] through its
///   timeouts and backoffs, so *waiting* carries it across the same
///   windows the load generator's queries are falling into — riding out
///   a bounded blackhole purely by backing off.
pub struct ClockChaosRun {
    pub axis: TimeAxis,
    /// The serving fleet's report under the scenario's outage windows.
    pub load: LoadReport,
    /// The refresh client's outcome (errors stringified so replays
    /// compare with `==`).
    pub refresh: Result<RefreshOutcome, String>,
    pub refresh_metrics: localroot::Metrics,
    /// Backoff waits taken on the shared clock, as `(start_ms, wait_ms)`.
    pub backoff_log: Vec<(u64, u64)>,
    /// Where the shared clock ended after the refresh cycle.
    pub clock_ms: u64,
    /// Whether the refreshed copy is fresh at the clock's final wall time.
    pub serving: bool,
}

impl ClockChaosRun {
    /// Run `scenario` against `letter`'s fleet (serving side) and the
    /// [`CHAOS_UPSTREAMS`] (refresh side), everything on one axis.
    pub fn run(
        scale: Scale,
        letter: RootLetter,
        scenario: &Scenario,
        queries: usize,
        threads: usize,
    ) -> ClockChaosRun {
        let axis = TimeAxis::anchored_at(scale.schedule().start);
        let world = World::build(&scale.world());
        let zone = world.zone_at(axis.base_s);

        // Serving side: the fleet's plan keys outage windows by site id;
        // arrivals pin each query attempt to its virtual instant.
        let fleet_plan =
            scenario::fault_plan_for_fleet(scenario, letter, axis).with_timeout_ms(200);
        let fleet = SiteFleet::build(&world.topology, &world.catalog, letter, Arc::clone(&zone));
        let load = loadgen::run(
            &fleet,
            &LoadgenConfig {
                queries,
                threads,
                faults: Some(fleet_plan),
                arrivals: Some(ArrivalSchedule {
                    start_ms: 0,
                    interarrival_ms: 1,
                }),
                ..LoadgenConfig::tiny(0x2023_0703)
            },
        );

        // Refresh side: the client-seat plan keys the same windows by
        // upstream letter; all transports share one clock the client
        // advances by sleeping through backoffs.
        let plan = Arc::new(scenario::fault_plan_on_clock(scenario, axis).with_timeout_ms(200));
        let clock = ClockHandle::new();
        let mut upstreams: Vec<(RootLetter, FaultyTransport<InprocTransport>)> = CHAOS_UPSTREAMS
            .into_iter()
            .map(|l| {
                let server = RootServer {
                    letter: l,
                    identity: Some(format!("{}1.clock-chaos", l.ch())),
                    zone: Arc::clone(&zone),
                    behavior: Default::default(),
                };
                (
                    l,
                    FaultyTransport::new(
                        upstream_transport(&server),
                        Arc::clone(&plan),
                        l.index() as u64,
                    )
                    .with_clock(clock.clone()),
                )
            })
            .collect();
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        lr.retry.attempts = 6;
        let refresh = lr
            .refresh_on_clock(&mut upstreams, &clock, axis)
            .map_err(|e| e.to_string());
        let serving = lr.is_serving(axis.now_wall(&clock));
        ClockChaosRun {
            axis,
            load,
            refresh,
            refresh_metrics: lr.metrics,
            backoff_log: lr.backoff_log,
            clock_ms: clock.now_ms(),
            serving,
        }
    }

    /// The built-in demo scenario: every refresh upstream goes dark for
    /// the first five virtual seconds — a blackhole bounded in *time*,
    /// which backoff on the shared clock can ride out. The serving
    /// `letter`'s outage event carries its fleet's first real site id, so
    /// the same window also swallows that site's queries.
    pub fn demo_scenario(scale: Scale, letter: RootLetter) -> Scenario {
        let world = World::build(&scale.world());
        let dark_site = world
            .catalog
            .sites_of(letter)
            .next()
            .map(|s| s.site_id)
            .expect("serving letter has at least one site");
        let t0 = scale.schedule().start;
        let events = CHAOS_UPSTREAMS
            .into_iter()
            .map(|l| ScenarioEvent {
                at: t0,
                until: Some(t0 + 5),
                kind: EventKind::SiteOutage {
                    letter: l,
                    site: if l == letter {
                        dark_site
                    } else {
                        netsim::anycast::SiteId(0)
                    },
                },
            })
            .collect();
        Scenario::new("clock-blackhole", 0x5eed_c10c, events).expect("demo scenario is well-formed")
    }

    /// Deterministic digest for replay comparison: every seeded counter,
    /// none of the wall-clock timings.
    pub fn fingerprint(&self) -> String {
        format!(
            "load[responses={} timeouts={} retries={} unanswered={} faults={}] \
             refresh[{:?} retries={} timeouts={} backoff_ms={}] \
             backoffs={:?} clock={}ms serving={}",
            self.load.responses,
            self.load.timeouts,
            self.load.retries,
            self.load.unanswered,
            self.load.fault_counters.total_faults(),
            self.refresh,
            self.refresh_metrics.retries,
            self.refresh_metrics.timeouts,
            self.refresh_metrics.backoff_ms_total,
            self.backoff_log,
            self.clock_ms,
            self.serving,
        )
    }
}

/// One scenario's adversarial-traffic windows driven against one letter's
/// fleet with response-rate limiting engaged: the traffic-side sibling of
/// [`ClockChaosRun`], on the same anchored [`TimeAxis`].
///
/// The scenario's attack events project to a `rootd`
/// [`rootd::AttackPlan`] via [`scenario::attack_plan_on_clock`]; the
/// attack engine interleaves benign load with the plan's flood windows on
/// the virtual clock and verifies every delivered benign answer against
/// an unlimited twin engine. The per-epoch traffic counters become an
/// [`analysis::FloodDiffReport`] — the before/during/after diff of what
/// the flood did to legitimate clients.
pub struct AttackRun {
    pub axis: TimeAxis,
    /// The attack engine's full report (per-epoch traffic, RRL counters,
    /// hottest buckets, verification mismatches).
    pub report: AttackReport,
    /// The same epochs as an analysis-layer diff table.
    pub flood: FloodDiffReport,
}

impl AttackRun {
    /// Run `scenario`'s attack windows against `letter`'s fleet for
    /// `duration_ms` virtual ms on `threads` workers, RRL enabled.
    pub fn run(
        scale: Scale,
        letter: RootLetter,
        scenario: &Scenario,
        duration_ms: u64,
        threads: usize,
    ) -> AttackRun {
        let axis = TimeAxis::anchored_at(scale.schedule().start);
        let world = World::build(&scale.world());
        let zone = world.zone_at(axis.base_s);
        let fleet = SiteFleet::build(&world.topology, &world.catalog, letter, zone);
        let plan = scenario::attack_plan_on_clock(scenario, letter, axis);
        let cfg = AttackConfig {
            threads,
            ..AttackConfig::tiny(0x2023_0703, duration_ms, plan)
        };
        let report = attack::run(&fleet, &cfg);
        let flood = FloodDiffReport {
            epochs: report
                .epochs
                .iter()
                .map(|e| FloodEpoch {
                    label: e.label.clone(),
                    start_ms: e.start_ms,
                    end_ms: e.end_ms,
                    legit_sent: e.legit_sent,
                    legit_served: e.legit_served,
                    legit_slipped: e.legit_slipped,
                    legit_slip_recovered: e.legit_slip_recovered,
                    legit_dropped: e.legit_dropped,
                    legit_p50_ns: e.legit_p50_ns,
                    legit_p99_ns: e.legit_p99_ns,
                    attack_sent: e.attack_sent,
                    attack_passed: e.attack_passed,
                    attack_slipped: e.attack_slipped,
                    attack_dropped: e.attack_dropped,
                })
                .collect(),
        };
        AttackRun {
            axis,
            report,
            flood,
        }
    }

    /// The built-in demo scenario: a ×10 water-torture flood two virtual
    /// seconds in, then a reflection burst spoofing a real stub client,
    /// then that client flooding on its own behalf — three attack shapes
    /// back to back inside a 12-second run, with quiet epochs between.
    pub fn demo_scenario(scale: Scale, letter: RootLetter) -> Scenario {
        let world = World::build(&scale.world());
        let victim = world
            .topology
            .nodes()
            .iter()
            .find(|n| n.tier == Tier::Stub)
            .map(|n| n.id)
            .expect("topology has stub clients");
        let t0 = scale.schedule().start;
        let events = vec![
            ScenarioEvent {
                at: t0 + 2,
                until: Some(t0 + 6),
                kind: EventKind::AttackFlood {
                    letter,
                    intensity: 10,
                },
            },
            ScenarioEvent {
                at: t0 + 8,
                until: Some(t0 + 10),
                kind: EventKind::ReflectionBurst {
                    letter,
                    victim,
                    intensity: 10,
                },
            },
            ScenarioEvent {
                at: t0 + 10,
                until: Some(t0 + 11),
                kind: EventKind::QueryStorm {
                    letter,
                    client: victim,
                    intensity: 20,
                },
            },
        ];
        Scenario::new("attack-demo", 0xdd05_5eed, events).expect("demo scenario is well-formed")
    }

    /// The demo run's duration: covers every demo window plus a trailing
    /// quiet second.
    pub const DEMO_DURATION_MS: u64 = 12_000;

    /// Deterministic digest for replay comparison (seeded counters only).
    pub fn fingerprint(&self) -> String {
        self.report.fingerprint()
    }

    /// The run's invariant violations, empty when the paper's resilience
    /// criteria hold: validating clients never got a wrong answer, every
    /// slipped benign query recovered over TCP, benign service stayed
    /// ≥ 99 % served and ≤ 2× baseline p99 through every attack window,
    /// and the limiter actually engaged (the flood was real).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.report.verify_mismatches > 0 {
            v.push(format!(
                "{} delivered answers diverged from the unlimited twin",
                self.report.verify_mismatches
            ));
        }
        for e in &self.flood.epochs {
            if e.legit_slip_recovered != e.legit_slipped {
                v.push(format!(
                    "epoch {}: {} of {} slipped queries failed to recover over TCP",
                    e.label,
                    e.legit_slipped - e.legit_slip_recovered,
                    e.legit_slipped
                ));
            }
        }
        let served = self.flood.worst_flood_served_fraction();
        if served < 0.99 {
            v.push(format!(
                "legit served fraction fell to {served:.4} during an attack epoch"
            ));
        }
        if let (Some(base), Some(ratio)) =
            (self.flood.baseline(), self.flood.worst_flood_p99_ratio())
        {
            let worst = self
                .flood
                .epochs
                .iter()
                .filter(|e| e.attack_sent > 0)
                .map(|e| e.legit_p99_ns)
                .max()
                .unwrap_or(0);
            // The quantiles are measured wall time on a µs-scale serve
            // path, so the 2× ratio alone would trip on scheduler noise;
            // require a real absolute excess too.
            if ratio > 2.0 && worst > base.legit_p99_ns + 200_000 {
                v.push(format!(
                    "legit p99 inflated {ratio:.2}× over the no-attack baseline"
                ));
            }
        }
        let attacked: u64 = self.flood.epochs.iter().map(|e| e.attack_sent).sum();
        let suppressed: u64 = self
            .flood
            .epochs
            .iter()
            .map(|e| e.attack_slipped + e.attack_dropped)
            .sum();
        if attacked > 0 && suppressed * 2 < attacked {
            v.push(format!(
                "limiter refused only {suppressed} of {attacked} attack queries"
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_pipeline_serves_the_load() {
        let p = ServingPipeline::shared_demo();
        assert_eq!(p.report.queries, 20_000);
        // Every parseable query gets an answer through the wire path.
        assert!(p.report.responses > 19_000);
        assert!(p.report.nxdomain > 0);
        assert!(p.report.referrals > 0);
        assert!(p.report.p50_ns <= p.report.p99_ns);
        // The fleet serves from the precompiled answer cache; every query
        // is classified as a hit or a miss, and the seeded counters are
        // part of the registry's deterministic rendering.
        assert_eq!(p.report.cache_hits + p.report.cache_misses, 20_000);
        assert!(p.report.cache_hits > p.report.cache_misses);
        assert!(p.render_deterministic().contains("cache hits"));
        let rendered = p.render();
        assert!(rendered.contains("latency p99"));
    }

    #[test]
    fn clock_chaos_interleaves_and_replays_bit_identically() {
        let scenario = ClockChaosRun::demo_scenario(Scale::Tiny, RootLetter::B);
        let a = ClockChaosRun::run(Scale::Tiny, RootLetter::B, &scenario, 8_000, 2);
        // The refresh client rode out the [0, 5000) ms blackhole purely
        // by backing off on the shared clock.
        assert!(matches!(a.refresh, Ok(RefreshOutcome::Updated { .. })));
        assert!(a.clock_ms >= 5_000, "clock = {} ms", a.clock_ms);
        assert!(a.refresh_metrics.timeouts > 0);
        assert!(!a.backoff_log.is_empty());
        assert!(a.serving);
        // The same outage window cost the serving fleet client-visible
        // faults: queries that arrived inside it hit dead air.
        assert!(a.load.timeouts > 0);
        assert!(a.load.fault_counters.blackholed > 0);
        assert!(a.load.responses > 0);
        // Bit-identical replay — same run, and a different loadgen worker
        // count (arrival pinning makes partitioning invisible).
        let b = ClockChaosRun::run(Scale::Tiny, RootLetter::B, &scenario, 8_000, 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ClockChaosRun::run(Scale::Tiny, RootLetter::B, &scenario, 8_000, 5);
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn attack_demo_holds_the_invariants_and_replays_bit_identically() {
        let scenario = AttackRun::demo_scenario(Scale::Tiny, RootLetter::B);
        let a = AttackRun::run(
            Scale::Tiny,
            RootLetter::B,
            &scenario,
            AttackRun::DEMO_DURATION_MS,
            2,
        );
        // The demo's three windows cut the run into alternating quiet and
        // attack epochs, and the flood view mirrors the engine's epochs.
        // quiet | flood | quiet | reflect | storm | quiet.
        assert_eq!(a.flood.epochs.len(), 6);
        assert_eq!(a.flood.epochs.len(), a.report.epochs.len());
        assert!(a.flood.baseline().is_some());
        assert!(a.report.rrl.dropped > 0);
        assert_eq!(a.violations(), Vec::<String>::new());
        // Bit-identical replay on a different worker count.
        let b = AttackRun::run(
            Scale::Tiny,
            RootLetter::B,
            &scenario,
            AttackRun::DEMO_DURATION_MS,
            5,
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
