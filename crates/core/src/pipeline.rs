//! The shared pipeline: build the world, run the active measurement once,
//! synthesize the passive traces once, and hand the record streams to the
//! experiments.

use crate::scale::Scale;
use netgeo::Region;
use traces::flows::FlowObservation;
use traces::gen::{generate_flows, ObservationWindow, TraceConfig};
use vantage::records::{ProbeRecord, TransferRecord};
use vantage::{MeasurementConfig, MeasurementEngine, World};

/// All data an experiment might need.
pub struct Pipeline {
    pub scale: Scale,
    pub world: World,
    pub probes: Vec<ProbeRecord>,
    pub transfers: Vec<TransferRecord>,
    /// ISP-DNS-1 stand-in flows.
    pub isp_flows: Vec<FlowObservation>,
    /// IXP-DNS-1 stand-in flows, per covered region.
    pub ixp_flows_eu: Vec<FlowObservation>,
    pub ixp_flows_na: Vec<FlowObservation>,
}

impl Pipeline {
    /// Run everything at `scale`. Deterministic for a given scale.
    pub fn run(scale: Scale) -> Pipeline {
        let world = World::build(&scale.world());
        let config = MeasurementConfig {
            schedule: scale.schedule(),
            ..Default::default()
        };
        let engine = MeasurementEngine::new(&world, config.clone());
        let mut sink = engine.run_parallel(scale.workers());

        // Subsampled schedules can skip the short stale-site windows
        // entirely; cover them at full resolution (like the paper's 15-min
        // bursts did around the events it targeted), unless the main
        // schedule already runs unsubsampled.
        if config.schedule.subsample > 1 {
            for window in &config.stale_windows {
                let focused = MeasurementConfig {
                    schedule: vantage::Schedule {
                        start: window.from,
                        end: window.until,
                        subsample: 1,
                        ..config.schedule.clone()
                    },
                    ..config.clone()
                };
                let extra = MeasurementEngine::new(&world, focused).run_parallel(1);
                sink.probes.extend(extra.probes);
                sink.transfers.extend(extra.transfers);
            }
        }

        let mut isp_cfg = TraceConfig::isp(world.seed());
        isp_cfg.population.clients_per_family = scale.trace_clients();
        let isp_flows = generate_flows(&isp_cfg, &ObservationWindow::isp_windows());

        let mut eu_cfg = TraceConfig::ixp(Region::Europe, world.seed() ^ 1);
        eu_cfg.population.clients_per_family = scale.trace_clients();
        let ixp_flows_eu = generate_flows(&eu_cfg, &ObservationWindow::ixp_windows());

        let mut na_cfg = TraceConfig::ixp(Region::NorthAmerica, world.seed() ^ 2);
        na_cfg.population.clients_per_family = scale.trace_clients();
        let ixp_flows_na = generate_flows(&na_cfg, &ObservationWindow::ixp_windows());

        Pipeline {
            scale,
            world,
            probes: sink.probes,
            transfers: sink.transfers,
            isp_flows,
            ixp_flows_eu,
            ixp_flows_na,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_produces_all_streams() {
        let p = Pipeline::run(Scale::Tiny);
        assert!(!p.probes.is_empty());
        assert!(!p.transfers.is_empty());
        assert!(!p.isp_flows.is_empty());
        assert!(!p.ixp_flows_eu.is_empty());
        assert!(!p.ixp_flows_na.is_empty());
    }
}
