//! The shared pipeline: build the world, run the active measurement once,
//! synthesize the passive traces once, and hand the record streams to the
//! experiments.

use crate::scale::Scale;
use netgeo::Region;
use std::collections::HashSet;
use std::sync::OnceLock;
use traces::flows::FlowObservation;
use traces::gen::{generate_flows, ObservationWindow, TraceConfig};
use vantage::records::{ProbeRecord, TransferRecord};
use vantage::{MeasurementConfig, MeasurementEngine, Round, Schedule, World};

/// All data an experiment might need.
pub struct Pipeline {
    pub scale: Scale,
    pub world: World,
    pub probes: Vec<ProbeRecord>,
    pub transfers: Vec<TransferRecord>,
    /// ISP-DNS-1 stand-in flows.
    pub isp_flows: Vec<FlowObservation>,
    /// IXP-DNS-1 stand-in flows, per covered region.
    pub ixp_flows_eu: Vec<FlowObservation>,
    pub ixp_flows_na: Vec<FlowObservation>,
}

impl Pipeline {
    /// Run everything at `scale`. Deterministic for a given scale: the
    /// active measurement and the three passive trace syntheses run
    /// concurrently (they share nothing but the seed), and within the
    /// measurement each worker owns a disjoint VP range, so concurrency
    /// only changes wall-clock time, never the records.
    pub fn run(scale: Scale) -> Pipeline {
        let world = World::build(&scale.world());
        let config = MeasurementConfig {
            schedule: scale.schedule(),
            ..Default::default()
        };
        let engine = MeasurementEngine::new(&world, config.clone());

        let seed = world.seed();
        let clients = scale.trace_clients();
        let trace = |cfg: &mut TraceConfig, windows: &[ObservationWindow]| {
            cfg.population.clients_per_family = clients;
            generate_flows(cfg, windows)
        };
        let (mut sink, isp_flows, ixp_flows_eu, ixp_flows_na) = crossbeam::scope(|s| {
            let isp = s.spawn(move |_| {
                trace(
                    &mut TraceConfig::isp(seed),
                    &ObservationWindow::isp_windows(),
                )
            });
            let eu = s.spawn(move |_| {
                trace(
                    &mut TraceConfig::ixp(Region::Europe, seed ^ 1),
                    &ObservationWindow::ixp_windows(),
                )
            });
            let na = s.spawn(move |_| {
                trace(
                    &mut TraceConfig::ixp(Region::NorthAmerica, seed ^ 2),
                    &ObservationWindow::ixp_windows(),
                )
            });
            // The measurement keeps the current thread busy while the
            // three trace generators run on their own threads.
            let sink = engine.run_parallel(scale.workers());
            (
                sink,
                isp.join().expect("isp trace generation panicked"),
                eu.join().expect("ixp-eu trace generation panicked"),
                na.join().expect("ixp-na trace generation panicked"),
            )
        })
        .expect("pipeline scope panicked");

        // Subsampled schedules can skip the short stale-site windows
        // entirely; cover them at full resolution (like the paper's 15-min
        // bursts did around the events it targeted), unless the main
        // schedule already runs unsubsampled. Rounds the main schedule
        // already executed are skipped: re-measuring them would duplicate
        // (vp, time, target, family) observations downstream.
        if config.schedule.subsample > 1 {
            let mut covered: HashSet<u32> = config.schedule.rounds().map(|r| r.time).collect();
            for window in &config.stale_windows {
                let rounds = focused_rounds(&config.schedule, window.from, window.until, &covered);
                if rounds.is_empty() {
                    continue;
                }
                // Windows could overlap; never re-measure a round twice.
                covered.extend(rounds.iter().map(|r| r.time));
                let extra = engine.run_rounds_parallel(&rounds, scale.workers());
                sink.probes.extend(extra.probes);
                sink.transfers.extend(extra.transfers);
            }
        }

        Pipeline {
            scale,
            world,
            probes: sink.probes,
            transfers: sink.transfers,
            isp_flows,
            ixp_flows_eu,
            ixp_flows_na,
        }
    }

    /// The virtual-time axis this pipeline's records live on: wall-clock
    /// second `schedule.start` is virtual t = 0 ms. Round times, scenario
    /// epochs ([`scenario::ScenarioEngine::time_axis`]) and transport
    /// fault windows all project through the same anchor, so "when" means
    /// one thing across the measurement, the change events, and the wire
    /// (DESIGN §12).
    pub fn time_axis(&self) -> simclock::TimeAxis {
        simclock::TimeAxis::anchored_at(self.scale.schedule().start)
    }

    /// The memoized pipeline for `scale`: built once per process, shared
    /// by every caller. Tests, examples and benches all read the same
    /// record streams, so rebuilding the world per call site only burned
    /// CPU — [`Pipeline::run`] stays available for callers that need a
    /// private instance (e.g. to compare two fresh runs).
    pub fn shared(scale: Scale) -> &'static Pipeline {
        static TINY: OnceLock<Pipeline> = OnceLock::new();
        static SMALL: OnceLock<Pipeline> = OnceLock::new();
        static PAPER: OnceLock<Pipeline> = OnceLock::new();
        let cell = match scale {
            Scale::Tiny => &TINY,
            Scale::Small => &SMALL,
            Scale::Paper => &PAPER,
        };
        cell.get_or_init(|| Pipeline::run(scale))
    }
}

/// The full-resolution rounds inside `[from, until)` that the (subsampled)
/// main schedule did not already execute.
fn focused_rounds(main: &Schedule, from: u32, until: u32, covered: &HashSet<u32>) -> Vec<Round> {
    let full = Schedule {
        start: from,
        end: until,
        subsample: 1,
        ..main.clone()
    };
    full.rounds()
        .filter(|r| !covered.contains(&r.time))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_produces_all_streams() {
        let p = Pipeline::shared(Scale::Tiny);
        assert!(!p.probes.is_empty());
        assert!(!p.transfers.is_empty());
        assert!(!p.isp_flows.is_empty());
        assert!(!p.ixp_flows_eu.is_empty());
        assert!(!p.ixp_flows_na.is_empty());
    }

    #[test]
    fn shared_is_memoized() {
        let a: *const Pipeline = Pipeline::shared(Scale::Tiny);
        let b: *const Pipeline = Pipeline::shared(Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn no_duplicate_probe_observations() {
        // The stale-window re-runs must skip rounds the subsampled main
        // schedule already executed; a duplicate (vp, time, target,
        // family) key would double-count the observation downstream.
        let p = Pipeline::shared(Scale::Tiny);
        let mut keys: Vec<_> = p
            .probes
            .iter()
            .map(|r| (r.vp, r.time, r.target, r.family))
            .collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(
            keys.len(),
            total,
            "{} duplicate probe keys",
            total - keys.len()
        );
    }

    #[test]
    fn pipeline_and_scenario_engine_share_one_time_axis() {
        let p = Pipeline::shared(Scale::Tiny);
        let axis = p.time_axis();
        let schedule = Scale::Tiny.schedule();
        // The anchor is the schedule start: round times project onto
        // non-negative virtual ms, one second per 1000 ms.
        assert_eq!(axis.wall_to_ms(schedule.start), 0);
        assert_eq!(axis.wall_to_ms(schedule.start + 7), 7_000);
        // The scenario engine, configured for the same scale, lands on
        // the identical axis — epochs and fault windows agree on t = 0.
        let engine = scenario::ScenarioEngine::new(scenario::ScenarioConfig {
            base: vantage::MeasurementConfig {
                schedule,
                ..Default::default()
            },
            ..Default::default()
        });
        assert_eq!(engine.time_axis(), axis);
    }

    #[test]
    fn focused_rounds_skip_covered_times() {
        // A barely-subsampled main schedule executes rounds inside any
        // stale window; the focused re-run must exclude exactly those.
        let main = Schedule::subsampled(2);
        let windows = MeasurementConfig::default().stale_windows;
        let (from, until) = (windows[0].from, windows[0].until);
        let covered: HashSet<u32> = main.rounds().map(|r| r.time).collect();
        let covered_in_window = covered.iter().filter(|&&t| t >= from && t < until).count();
        assert!(
            covered_in_window > 0,
            "main schedule misses the window entirely"
        );
        let focused = focused_rounds(&main, from, until, &covered);
        assert!(!focused.is_empty());
        for r in &focused {
            assert!(r.time >= from && r.time < until);
            assert!(!covered.contains(&r.time), "round {} re-measured", r.time);
        }
        // Union covers the window's full-resolution grid.
        let full = Schedule {
            start: from,
            end: until,
            subsample: 1,
            ..main.clone()
        };
        assert_eq!(
            focused.len() + covered_in_window,
            full.round_count(),
            "focused ∪ covered must equal the full-resolution window"
        );
    }
}
