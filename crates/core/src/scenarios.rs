//! Scenario runs at pipeline scale: the change-event engine wired into the
//! core facade.
//!
//! [`ScenarioPipeline`] is the scenario-driven sibling of
//! [`Pipeline`](crate::Pipeline): it
//! builds the same world for a [`Scale`], drives it through a
//! [`scenario::Scenario`] with the [`scenario::ScenarioEngine`], and keeps
//! the per-epoch record streams for diff reports.

use crate::scale::Scale;
use analysis::epochs::EpochDiffReport;
use rss::RootLetter;
use scenario::{epoch_diff, Scenario, ScenarioConfig, ScenarioEngine, ScenarioRun};
use std::sync::OnceLock;
use vantage::{MeasurementConfig, World};

pub use scenario::catalog;

/// A world driven through one scenario at a given scale.
pub struct ScenarioPipeline {
    pub scale: Scale,
    pub world: World,
    pub run: ScenarioRun,
}

impl ScenarioPipeline {
    /// Build the scale's world and drive it through `scenario`.
    pub fn run(scale: Scale, scenario: &Scenario) -> ScenarioPipeline {
        let mut world = World::build(&scale.world());
        let engine = ScenarioEngine::new(ScenarioConfig {
            base: MeasurementConfig {
                schedule: scale.schedule(),
                ..Default::default()
            },
            workers: scale.workers(),
            ..Default::default()
        });
        let run = engine.run(&mut world, scenario);
        ScenarioPipeline { scale, world, run }
    }

    /// The built-in demo (outage → renumbering → flap burst) at `Tiny`
    /// scale, built once per process.
    pub fn shared_demo() -> &'static ScenarioPipeline {
        static DEMO: OnceLock<ScenarioPipeline> = OnceLock::new();
        DEMO.get_or_init(|| ScenarioPipeline::run(Scale::Tiny, &catalog::outage_renumber_flap()))
    }

    /// Per-epoch diff report for one letter.
    pub fn report(&self, letter: RootLetter) -> EpochDiffReport {
        epoch_diff(&self.run, letter, &self.world.population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_pipeline_produces_epoch_reports() {
        let p = ScenarioPipeline::shared_demo();
        // outage window adds 2 cuts, renumbering 1, flap window 2 ⇒ 6 epochs.
        assert_eq!(p.run.epochs.len(), 6);
        let d = p.report(RootLetter::D);
        assert_eq!(d.epochs.len(), 6);
        let rendered = d.render();
        assert!(rendered.contains("outage(d/0)"));
    }
}
