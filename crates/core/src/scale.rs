//! Sizing presets: how much of the paper's scale to simulate.
//!
//! The paper's raw dataset (7.7 B queries over 174 days from 675 VPs) is a
//! product of *time × VPs × targets*. All analyses are shape-stable under
//! temporal subsampling (they aggregate per VP or per day), so the presets
//! trade the round interval — not the VP population or the deployment
//! shapes — for runtime.

use netsim::TopologyConfig;
use rss::catalog::WorldConfig;
use vantage::population::PopulationConfig;
use vantage::{Schedule, WorldBuildConfig};

/// Simulation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Miniature world, heavily subsampled schedule. Seconds. For tests.
    Tiny,
    /// Full VP population and deployments, ~2-hourly rounds. Tens of
    /// seconds. For examples and benches.
    Small,
    /// Full VP population, 30/15-minute rounds as in the paper. Minutes to
    /// tens of minutes; produces the full-size record streams.
    Paper,
}

impl Scale {
    /// World construction parameters for this scale.
    pub fn world(self) -> WorldBuildConfig {
        match self {
            Scale::Tiny => WorldBuildConfig::tiny(),
            Scale::Small | Scale::Paper => WorldBuildConfig {
                topology: TopologyConfig::default(),
                catalog: WorldConfig::default(),
                population: PopulationConfig::default(),
                zone_tlds: 25,
                seed: 0x2023_0703,
            },
        }
    }

    /// Measurement schedule for this scale.
    pub fn schedule(self) -> Schedule {
        match self {
            Scale::Tiny => Schedule::subsampled(400),
            Scale::Small => Schedule::subsampled(48),
            Scale::Paper => Schedule::default(),
        }
    }

    /// Passive-trace client population per family.
    pub fn trace_clients(self) -> usize {
        match self {
            Scale::Tiny => 300,
            Scale::Small => 1500,
            Scale::Paper => 4000,
        }
    }

    /// Worker threads for the parallel measurement run.
    pub fn workers(self) -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_ordered_by_density() {
        assert!(Scale::Tiny.schedule().round_count() < Scale::Small.schedule().round_count());
        assert!(Scale::Small.schedule().round_count() < Scale::Paper.schedule().round_count());
    }

    #[test]
    fn paper_scale_uses_full_resolution() {
        assert_eq!(Scale::Paper.schedule().subsample, 1);
        assert_eq!(Scale::Paper.world().population.per_region[2], 435);
    }

    #[test]
    fn tiny_world_is_small() {
        let tiny = Scale::Tiny.world();
        let full = Scale::Paper.world();
        assert!(tiny.catalog.site_scale < full.catalog.site_scale);
    }

    #[test]
    fn workers_positive() {
        assert!(Scale::Small.workers() >= 1);
    }
}
