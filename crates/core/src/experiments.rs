//! The experiment registry: one entry per table and figure of the paper.
//!
//! Each experiment consumes the shared [`Pipeline`] streams and renders a
//! text artefact mirroring its paper counterpart. `EXPERIMENTS.md` in the
//! repository root records the paper-vs-measured comparison for every id.

use crate::pipeline::Pipeline;
use analysis::clients::ClientAnalysis;
use analysis::colocation::ColocationResult;
use analysis::coverage::CoverageReport;
use analysis::distance::DistanceResult;
use analysis::rtt::RttByRegion;
use analysis::stability::StabilityResult;
use analysis::traffic::{all_roots_series, render_all_roots, BRootShift};
use analysis::zonemd_pipeline::{bitflip_report, validate_transfers};
use dns_crypto::validity::timestamp_from_ymd as ts;
use netgeo::Region;
use netsim::Family;
use rss::{BRootPhase, RootLetter};
use traces::flows::DayBucket;
use vantage::records::{Target, TransferFault};

/// One registered experiment.
pub struct Experiment {
    /// Stable id (`table1`, `fig3`, …).
    pub id: &'static str,
    /// Which paper artefact it regenerates.
    pub paper_ref: &'static str,
    /// Runner.
    pub run: fn(&Pipeline) -> String,
}

/// All experiments, paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            paper_ref: "Table 1: coverage of root sites (worldwide)",
            run: |p| coverage(p).render_table1(),
        },
        Experiment {
            id: "table2",
            paper_ref: "Table 2: ZONEMD validation errors for zones from AXFRs",
            run: |p| validate_transfers(&p.world, &p.transfers).render(),
        },
        Experiment {
            id: "table3",
            paper_ref: "Table 3: distribution of vantage points per region",
            run: table3,
        },
        Experiment {
            id: "table4",
            paper_ref: "Table 4: coverage of root sites per region",
            run: |p| coverage(p).render_table4(),
        },
        Experiment {
            id: "fig1",
            paper_ref: "Figure 1: VP locations and f.root instance coverage",
            run: fig1,
        },
        Experiment {
            id: "fig2",
            paper_ref: "Figure 2: measurement timeline and root zone events",
            run: fig2,
        },
        Experiment {
            id: "fig3",
            paper_ref: "Figure 3: complementary eCDF of change events for {b,g}.root",
            run: fig3,
        },
        Experiment {
            id: "fig4",
            paper_ref: "Figure 4: reduced redundancy due to shared last hop",
            run: |p| ColocationResult::compute(&p.probes).render_fig4(&p.world.population),
        },
        Experiment {
            id: "fig5",
            paper_ref: "Figure 5: distance per request from VPs to root sites",
            run: fig5,
        },
        Experiment {
            id: "fig6",
            paper_ref: "Figure 6: RTTs of requests by continent",
            run: |p| {
                RttByRegion::compute(&p.world.population, &p.probes).render_fig6(&[
                    Region::Africa,
                    Region::SouthAmerica,
                    Region::NorthAmerica,
                    Region::Europe,
                ])
            },
        },
        Experiment {
            id: "fig7",
            paper_ref: "Figure 7: ISP traffic to b.root before/after change",
            run: fig7,
        },
        Experiment {
            id: "fig8",
            paper_ref: "Figure 8: ISP mean # of unique client subnets per day",
            run: fig8,
        },
        Experiment {
            id: "fig9",
            paper_ref: "Figure 9: IXP IPv6 traffic to b.root (NA vs EU)",
            run: fig9,
        },
        Experiment {
            id: "fig10",
            paper_ref: "Figure 10: bitflip in RRSIG in zone from AXFR",
            run: fig10,
        },
        Experiment {
            id: "fig11",
            paper_ref: "Figure 11: coverage of root server locations (all letters)",
            run: fig11,
        },
        Experiment {
            id: "fig12",
            paper_ref: "Figure 12: ISP traffic to all roots",
            run: |p| {
                render_all_roots(
                    &all_roots_series(&p.isp_flows),
                    "Figure 12: ISP traffic shares (2024-02-05..2024-03-04)",
                    DayBucket::of(ts("20240205000000").unwrap()),
                    DayBucket::of(ts("20240304000000").unwrap()),
                )
            },
        },
        Experiment {
            id: "fig13",
            paper_ref: "Figure 13: IXP traffic to all roots",
            run: |p| {
                let mut eu = p.ixp_flows_eu.clone();
                eu.extend(p.ixp_flows_na.iter().cloned());
                render_all_roots(
                    &all_roots_series(&eu),
                    "Figure 13: IXP traffic shares (2023-11-01..2023-12-22)",
                    DayBucket::of(ts("20231101000000").unwrap()),
                    DayBucket::of(ts("20231222000000").unwrap()),
                )
            },
        },
        Experiment {
            id: "sec5",
            paper_ref: "§5 headline: co-location prevalence",
            run: sec5,
        },
        Experiment {
            id: "fig14",
            paper_ref: "Figure 14/15: RTTs by continent (all six regions)",
            run: |p| RttByRegion::compute(&p.world.population, &p.probes).render_fig6(&Region::ALL),
        },
        Experiment {
            id: "sec6_paths",
            paper_ref: "§6 extension: routing-information view of v4/v6 asymmetries",
            run: |p| {
                analysis::paths::render_transit_report(
                    &p.world,
                    &[RootLetter::A, RootLetter::I, RootLetter::L],
                )
            },
        },
        Experiment {
            id: "sec7_channels",
            paper_ref: "§7: CZDS and IANA website validation timelines",
            run: sec7_channels,
        },
        Experiment {
            id: "scenario_demo",
            paper_ref: "extension: epoch diffs under injected change events (scenario engine)",
            run: |_| scenario_demo(),
        },
        Experiment {
            id: "rootd_demo",
            paper_ref: "extension: wire-level root serving under B-Root-shaped load (rootd)",
            run: |_| rootd_demo(),
        },
    ]
}

/// The serving-layer demo: B-Root's anycast fleet as wire-level engines
/// under a short seeded load. `Tiny` scale and memoized, like
/// [`scenario_demo`] — the entry demonstrates the serving path, not
/// paper-scale throughput (that is `examples/rootd_bench.rs`).
fn rootd_demo() -> String {
    crate::serving::ServingPipeline::shared_demo().render_deterministic()
}

/// The scenario-engine demo: the built-in outage → renumbering → flap
/// timeline, rendered as per-epoch diff reports for the affected letters.
/// Runs at `Tiny` scale regardless of the pipeline's scale — the section
/// demonstrates the engine, not paper-scale numbers — and is memoized, so
/// repeated registry runs pay for one scenario run.
fn scenario_demo() -> String {
    let p = crate::scenarios::ScenarioPipeline::shared_demo();
    let mut out = format!(
        "Scenario '{}': {} epochs\n",
        p.run.scenario_name,
        p.run.epochs.len()
    );
    for letter in [RootLetter::D, RootLetter::B, RootLetter::G] {
        out.push_str(&p.report(letter).render());
        out.push('\n');
    }
    out
}

fn sec7_channels(p: &Pipeline) -> String {
    use dns_zone::channels::{snapshots, validate_channel, Channel};
    let from = ts("20231201000000").unwrap();
    let until = ts("20231210000000").unwrap();
    let mut out = String::from(
        "§7 distribution channels (window 2023-12-01..2023-12-10, straddling the switch)\n",
    );
    for channel in [Channel::Czds, Channel::IanaWebsite] {
        // The channel snapshots reuse the world's keys so DNSSEC chains
        // match the AXFR-visible zones.
        let snaps = snapshots(channel, from, until, &p.world.keys, 10);
        let report = validate_channel(&snaps);
        out.push_str(&format!(
            "  {:12?}: {:4} files | no-record {:3} unverifiable {:3} validating {:3} invalid {}\n",
            channel,
            report.total,
            report.no_record,
            report.unverifiable,
            report.validating,
            report.invalid,
        ));
    }
    out.push_str("  paper: no issues in CZDS/IANA downloads; validation starts 12-07/12-06\n");
    out
}

/// Run one experiment by id.
pub fn run_one(pipeline: &Pipeline, id: &str) -> Option<String> {
    registry()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(pipeline))
}

/// Run every experiment, concatenating artefacts in registry order.
///
/// Experiments only read the pipeline, so they run concurrently on a
/// worker pool; each worker claims the next unstarted experiment from a
/// shared counter and writes into its own slot, and the slots are joined
/// in registry order afterwards — the output is byte-identical to a
/// serial loop.
pub fn run_all(pipeline: &Pipeline) -> String {
    let experiments = registry();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(experiments.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut sections: Vec<Option<String>> = (0..experiments.len()).map(|_| None).collect();
    let collected: std::sync::Mutex<Vec<(usize, String)>> =
        std::sync::Mutex::new(Vec::with_capacity(experiments.len()));
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(e) = experiments.get(i) else { break };
                let mut section = format!("==== {} [{}] ====\n", e.id, e.paper_ref);
                section.push_str(&(e.run)(pipeline));
                section.push('\n');
                collected.lock().unwrap().push((i, section));
            });
        }
    })
    .expect("experiment worker panicked");
    for (i, section) in collected.into_inner().unwrap() {
        sections[i] = Some(section);
    }
    sections
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

fn coverage(p: &Pipeline) -> CoverageReport {
    CoverageReport::compute(&p.world.catalog, &p.probes)
}

fn table3(p: &Pipeline) -> String {
    let mut out = String::from("Table 3: distribution of vantage points per region\n");
    for region in Region::ALL {
        let vps: Vec<_> = p.world.population.in_region(region).collect();
        let networks: std::collections::HashSet<_> = vps.iter().map(|v| v.asn).collect();
        out.push_str(&format!(
            "  {:13} #VPs {:3}  unique networks {:3}\n",
            region.name(),
            vps.len(),
            networks.len()
        ));
    }
    out.push_str(&format!(
        "  total VPs {} in {} networks\n",
        p.world.population.len(),
        p.world.population.unique_networks()
    ));
    out
}

fn fig1(p: &Pipeline) -> String {
    let report = coverage(p);
    let map = report.site_map(&p.world.catalog, RootLetter::F);
    let observed = map.iter().filter(|e| e.observed).count();
    let mut out = format!(
        "Figure 1: {} VPs; f.root sites observed {}/{}\n",
        p.world.population.len(),
        observed,
        map.len()
    );
    for region in Region::ALL {
        let (obs, tot) = map
            .iter()
            .filter(|e| e.region == region)
            .fold((0, 0), |(o, t), e| (o + e.observed as usize, t + 1));
        out.push_str(&format!(
            "  {:13} {obs}/{tot} f.root sites observed\n",
            region.name()
        ));
    }
    out
}

fn fig2(p: &Pipeline) -> String {
    let s = &MeasurementScheduleView::of(p);
    format!(
        "Figure 2: measurement timeline\n\
         start {}  end {}\n\
         rounds executed: {}\n\
         burst windows (15 min): {}\n\
         ZONEMD added (private alg): 2023-09-13; validates: 2023-12-06\n\
         b.root IP change: 2023-11-27\n",
        dns_crypto::validity::timestamp_to_ymd(s.start),
        dns_crypto::validity::timestamp_to_ymd(s.end),
        s.rounds,
        s.bursts,
    )
}

struct MeasurementScheduleView {
    start: u32,
    end: u32,
    rounds: usize,
    bursts: usize,
}

impl MeasurementScheduleView {
    fn of(p: &Pipeline) -> MeasurementScheduleView {
        let schedule = p.scale.schedule();
        MeasurementScheduleView {
            start: schedule.start,
            end: schedule.end,
            rounds: schedule.round_count(),
            bursts: schedule.burst_windows.len(),
        }
    }
}

fn fig3(p: &Pipeline) -> String {
    let result = StabilityResult::compute(&p.probes);
    result.render_fig3(&[
        Target {
            letter: RootLetter::B,
            b_phase: BRootPhase::Old,
        },
        Target {
            letter: RootLetter::B,
            b_phase: BRootPhase::New,
        },
        Target {
            letter: RootLetter::G,
            b_phase: BRootPhase::Old,
        },
    ])
}

fn fig5(p: &Pipeline) -> String {
    let mut out = String::new();
    for letter in [RootLetter::B, RootLetter::M] {
        for family in Family::BOTH {
            let r = DistanceResult::compute(
                &p.world.catalog,
                &p.world.population,
                &p.probes,
                Target {
                    letter,
                    b_phase: if letter == RootLetter::B {
                        BRootPhase::New
                    } else {
                        BRootPhase::Old
                    },
                },
                family,
            );
            out.push_str(&r.render());
        }
    }
    out
}

fn fig7(p: &Pipeline) -> String {
    let shift = BRootShift::compute(&p.isp_flows);
    let mut out = shift.render(
        "Figure 7a: ISP b.root traffic, pre-change day 2023-10-08",
        DayBucket::of(ts("20231008000000").unwrap()),
        DayBucket::of(ts("20231009000000").unwrap()),
    );
    out.push_str(&shift.render(
        "Figure 7b: ISP b.root traffic, 2024-02-05..2024-03-04",
        DayBucket::of(ts("20240205000000").unwrap()),
        DayBucket::of(ts("20240304000000").unwrap()),
    ));
    out.push_str(&shift.render(
        "Figure 7c: ISP b.root traffic, 2024-04-22..2024-04-29",
        DayBucket::of(ts("20240422000000").unwrap()),
        DayBucket::of(ts("20240429000000").unwrap()),
    ));
    out
}

fn fig8(p: &Pipeline) -> String {
    ClientAnalysis::compute(
        &p.isp_flows,
        DayBucket::of(ts("20240205000000").unwrap()),
        DayBucket::of(ts("20240304000000").unwrap()),
    )
    .render_fig8()
}

fn fig9(p: &Pipeline) -> String {
    let from = DayBucket::of(ts("20231128000000").unwrap());
    let until = DayBucket::of(ts("20231228000000").unwrap());
    let na = BRootShift::compute(&p.ixp_flows_na);
    let eu = BRootShift::compute(&p.ixp_flows_eu);
    let mut out = na.render("Figure 9a: IXP North America (post-change)", from, until);
    out.push_str(&eu.render("Figure 9b: IXP Europe (post-change)", from, until));
    out.push_str(&format!(
        "v6 traffic shifted to new address: NA {:.1}%  EU {:.1}%\n",
        na.in_family_shift(Family::V6, from, until) * 100.0,
        eu.in_family_shift(Family::V6, from, until) * 100.0,
    ));
    out
}

fn fig10(p: &Pipeline) -> String {
    // Find a bitflipped transfer and render the two-line diff.
    let flipped = p
        .transfers
        .iter()
        .find(|t| matches!(t.fault, Some(TransferFault::Bitflip { .. })));
    match flipped {
        Some(t) => match bitflip_report(&p.world, t) {
            Some(report) => format!(
                "Figure 10: bitflip in zone from AXFR (vp{} {} {})\n\
                 reference: {}\n\
                 observed : {}\n",
                t.vp.0,
                t.target.label(),
                t.family.label(),
                report.reference_line,
                report.observed_line
            ),
            None => "Figure 10: bitflip produced a multi-record diff (unexpected)\n".into(),
        },
        None => "Figure 10: no bitflipped transfer occurred in this (subsampled) run; \
             rerun at a larger scale or higher flip rate\n"
            .into(),
    }
}

fn fig11(p: &Pipeline) -> String {
    let report = coverage(p);
    let mut out = String::from("Figure 11: per-letter site coverage\n");
    for letter in RootLetter::ALL {
        let map = report.site_map(&p.world.catalog, letter);
        let observed = map.iter().filter(|e| e.observed).count();
        out.push_str(&format!(
            "  {}: {}/{} sites observed\n",
            letter.label(),
            observed,
            map.len()
        ));
    }
    out
}

fn sec5(p: &Pipeline) -> String {
    let result = ColocationResult::compute(&p.probes);
    format!(
        "§5 takeaway: {:.1}% of VPs observe co-location of >=2 root letters; \
         maximum co-located letters observed: {}\n",
        result.fraction_with_colocation(2) * 100.0,
        result.max_reduced() + 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn pipeline() -> &'static Pipeline {
        Pipeline::shared(Scale::Tiny)
    }

    #[test]
    fn registry_ids_unique_and_complete() {
        let reg = registry();
        let ids: std::collections::HashSet<&str> = reg.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), reg.len());
        for required in [
            "table1", "table2", "table3", "table4", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
        ] {
            assert!(ids.contains(required), "missing {required}");
        }
    }

    #[test]
    fn every_experiment_runs_and_produces_output() {
        let p = pipeline();
        for e in registry() {
            let out = (e.run)(p);
            assert!(!out.is_empty(), "{} empty", e.id);
        }
    }

    #[test]
    fn run_one_and_run_all() {
        let p = pipeline();
        assert!(
            run_one(p, "table3").unwrap().contains("675")
                || run_one(p, "table3").unwrap().contains("total VPs")
        );
        assert!(run_one(p, "nope").is_none());
        let all = run_all(p);
        assert!(all.contains("==== table1"));
        assert!(all.contains("==== fig13"));
    }

    #[test]
    fn run_all_matches_serial_concatenation() {
        // The worker pool must not reorder or interleave sections.
        let p = pipeline();
        let serial: String = registry()
            .iter()
            .map(|e| format!("==== {} [{}] ====\n{}\n", e.id, e.paper_ref, (e.run)(p)))
            .collect();
        assert_eq!(run_all(p), serial);
    }

    #[test]
    fn table3_matches_population() {
        let p = pipeline();
        let out = table3(p);
        assert!(out.contains(&format!("total VPs {}", p.world.population.len())));
    }

    #[test]
    fn sec5_reports_prevalent_colocation() {
        let p = pipeline();
        let out = sec5(p);
        // Co-location must be prevalent in the built world (paper: ~70%).
        let pct: f64 = out
            .split('%')
            .next()
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(pct > 30.0, "co-location fraction too low: {pct}");
    }
}
