//! The full-constellation serving farm wired into the core facade.
//!
//! [`FarmRun`] builds a scale's world, stands up *every* requested root
//! letter's anycast sites as sharded [`rootd`] engines over one shared
//! zone index and zone-only answer cache, steers a seeded query load by
//! each letter's Gao-Rexford catchments, and drives it through the
//! batched-datagram serve path. The resulting [`FarmReport`] is what
//! `examples/farm_report.rs` renders and what the `rootd` bench target
//! records as `rootd/farm/*` (see DESIGN §15).

use crate::scale::Scale;
use rootd::{Farm, FarmChaosConfig, FarmChaosReport, FarmConfig, FarmReport};
use rss::RootLetter;
use vantage::World;

/// The constellation's serving farm under generated, catchment-steered
/// load.
pub struct FarmRun {
    pub scale: Scale,
    pub farm: Farm,
    pub report: FarmReport,
}

impl FarmRun {
    /// Build the scale's world, index its day-0 zone, stand up `letters`'
    /// per-site engines (capped at `max_sites_per_letter`, `usize::MAX`
    /// for the full catalog), and run `cfg`'s load against them.
    pub fn run(
        scale: Scale,
        letters: &[RootLetter],
        max_sites_per_letter: usize,
        cfg: &FarmConfig,
    ) -> FarmRun {
        let world = World::build(&scale.world());
        let zone = world.zone_at(0);
        let farm = Farm::build(
            &world.topology,
            &world.catalog,
            zone,
            letters,
            max_sites_per_letter,
        );
        let report = farm.run(cfg);
        FarmRun {
            scale,
            farm,
            report,
        }
    }

    /// The whole constellation: all thirteen letters, every catalog site.
    pub fn full_constellation(scale: Scale, cfg: &FarmConfig) -> FarmRun {
        FarmRun::run(scale, &RootLetter::ALL, usize::MAX, cfg)
    }

    fn header(&self) -> String {
        format!(
            "Serving farm: {} letters, {} sites at {:?} scale, {} clients\n",
            self.farm.letters().len(),
            self.farm.site_count(),
            self.scale,
            self.farm.client_count(),
        )
    }

    /// Render the run for the examples: counters plus wall-clock and
    /// busy-rate throughput and latency quantiles.
    pub fn render(&self) -> String {
        self.header() + &self.report.render()
    }

    /// Render the seeded, machine-independent counters only — byte-
    /// identical across runs and shard counts (timing numbers live in
    /// `cargo bench` / `examples/farm_report.rs`).
    pub fn render_deterministic(&self) -> String {
        self.header() + &self.report.render_counts()
    }
}

/// A chaos run of the serving farm and its fault-free twin: the same
/// world, the same traffic and the same seeds, with and without the
/// failure schedule — what `examples/farm_chaos_report.rs` renders and
/// the resilience acceptance gates compare.
pub struct FarmChaosRun {
    pub scale: Scale,
    pub farm: Farm,
    pub report: FarmChaosReport,
    pub twin: FarmChaosReport,
}

impl FarmChaosRun {
    /// Build the scale's world and run `cfg`'s failure schedule against
    /// it, plus the fault-free twin. Reload validation is pinned one day
    /// into the world's day-0 zone RRSIG window, so clean zones pass and
    /// poisoned ones fail for the right reason (digest/signature, not
    /// expiry).
    pub fn run(
        scale: Scale,
        letters: &[RootLetter],
        max_sites_per_letter: usize,
        cfg: &FarmChaosConfig,
    ) -> FarmChaosRun {
        let world = World::build(&scale.world());
        let zone = world.zone_at(0);
        let farm = Farm::build(
            &world.topology,
            &world.catalog,
            zone,
            letters,
            max_sites_per_letter,
        );
        let mut cfg = cfg.clone();
        cfg.validate_now_s = 86_400;
        let report = farm.run_chaos(&world.topology, &cfg);
        let twin = farm.run_chaos(&world.topology, &cfg.twin());
        FarmChaosRun {
            scale,
            farm,
            report,
            twin,
        }
    }

    /// Global indices of delivered answers that differ from the twin's
    /// (empty = every answer byte-identical to a healthy farm).
    pub fn twin_mismatches(&self) -> Vec<u64> {
        self.report.diff_twin(&self.twin)
    }

    /// Render the chaos run for the examples.
    pub fn render(&self) -> String {
        format!(
            "Self-healing farm: {} letters, {} sites at {:?} scale, {} clients\n{}",
            self.farm.letters().len(),
            self.farm.site_count(),
            self.scale,
            self.farm.client_count(),
            self.report.render(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_farm_is_healthy_and_replays_bit_identically() {
        let letters = [RootLetter::A, RootLetter::B];
        let mut cfg = FarmConfig::tiny(0x2024_1104);
        cfg.queries = 6_000;
        let run = FarmRun::run(Scale::Tiny, &letters, 4, &cfg);
        assert_eq!(run.report.violations(), Vec::<String>::new());
        assert_eq!(run.report.queries, cfg.queries);
        assert!(run.report.aggregate_qps > 0.0);
        assert!(run.render().contains("aggregate"));

        // Same seed, different shard count: deterministic outputs and the
        // deterministic rendering are identical.
        cfg.shards = 5;
        let replay = FarmRun::run(Scale::Tiny, &letters, 4, &cfg);
        assert_eq!(replay.report.fingerprint(), run.report.fingerprint());
        assert_eq!(
            replay.render_deterministic(),
            run.render_deterministic(),
            "deterministic rendering must not depend on shard count"
        );
    }

    #[test]
    fn demo_chaos_run_survives_failures_with_byte_identical_answers() {
        use rootd::recovery::FailureKind;

        let letters = [RootLetter::A, RootLetter::B];
        let mut cfg = FarmChaosConfig::tiny(0x2025_0103, 0);
        cfg.farm.queries = 5_000;
        // Fail one site per letter mid-run; the facade resolves site ids
        // after the build, so inject by catalog order via a first pass.
        let probe = FarmChaosRun::run(Scale::Tiny, &letters, 4, &cfg);
        let a_site = probe.farm.deployment(RootLetter::A).unwrap().sites[1].id.0;
        let b_site = probe.farm.deployment(RootLetter::B).unwrap().sites[0].id.0;
        cfg.plan
            .add(RootLetter::A, a_site, FailureKind::Crash, (400, 2_000));
        cfg.plan
            .add(RootLetter::B, b_site, FailureKind::Blackhole, (600, 1_800));
        cfg.plan.add_poisoned_reload(RootLetter::B, 900);
        let run = FarmChaosRun::run(Scale::Tiny, &letters, 4, &cfg);
        assert_eq!(run.report.violations(), Vec::<String>::new());
        assert!(run.report.legit_served_fraction() >= 0.99);
        assert_eq!(run.report.reloads_rejected, 1);
        assert_eq!(run.twin_mismatches(), Vec::<u64>::new());
        assert!(run.render().contains("legit served"));
    }
}
