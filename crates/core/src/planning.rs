//! What-if deployment planning at pipeline scale: the batch planner wired
//! into the core facade.
//!
//! [`PlannerRun`] is the planning sibling of
//! [`ScenarioPipeline`](crate::ScenarioPipeline): it builds the same world
//! for a [`Scale`], generates a seeded candidate sweep for one letter,
//! scores it across a worker pool, and keeps the ranked [`SweepReport`].
//! [`PlannerRun::rescore_fingerprint`] re-runs the sweep at any worker
//! count — the fingerprints must match bit-for-bit, which
//! `examples/planner_report.rs` asserts for 1..=5 workers.

use crate::scale::Scale;
use planner::{
    evaluate_batch, generate, scores_fingerprint, CandidatePlan, EvalContext, MoveSetConfig,
    SweepReport, TimelineSpec,
};
use scenario::Scenario;
use vantage::World;

/// A world swept through one batch of candidate deployment changes.
pub struct PlannerRun {
    pub scale: Scale,
    pub world: World,
    /// The generated candidates, id order.
    pub plans: Vec<CandidatePlan>,
    /// Scores + ranking + Pareto frontier.
    pub report: SweepReport,
    /// Scenario timeline the sweep was scored through, if any.
    timeline: Option<(Scenario, u32, u32)>,
}

impl PlannerRun {
    /// Build the scale's world and score `cfg`'s candidate sweep in
    /// steady state across `workers` threads.
    pub fn run(scale: Scale, cfg: &MoveSetConfig, workers: usize) -> PlannerRun {
        Self::build(scale, cfg, workers, None)
    }

    /// Like [`PlannerRun::run`], but additionally scores every candidate
    /// through `scenario`'s epochs between `start` and `end` (simclock-
    /// pinned mode — each score carries its worst epoch).
    pub fn run_through(
        scale: Scale,
        cfg: &MoveSetConfig,
        workers: usize,
        scenario: &Scenario,
        start: u32,
        end: u32,
    ) -> PlannerRun {
        Self::build(scale, cfg, workers, Some((scenario.clone(), start, end)))
    }

    fn build(
        scale: Scale,
        cfg: &MoveSetConfig,
        workers: usize,
        timeline: Option<(Scenario, u32, u32)>,
    ) -> PlannerRun {
        let world = World::build(&scale.world());
        let plans = generate(&world, cfg);
        let spec = timeline.as_ref().map(|(s, start, end)| TimelineSpec {
            scenario: s,
            start: *start,
            end: *end,
        });
        let scores = evaluate_batch(&world, cfg.letter, &plans, workers, spec);
        PlannerRun {
            scale,
            world,
            plans,
            report: SweepReport::build(cfg.letter, scores),
            timeline,
        }
    }

    /// Re-score the whole sweep with `workers` threads and digest it —
    /// the determinism probe: any worker count must reproduce the run's
    /// own [`SweepReport::fingerprint`] scores exactly.
    pub fn rescore_fingerprint(&self, workers: usize) -> u64 {
        let spec = self.timeline.as_ref().map(|(s, start, end)| TimelineSpec {
            scenario: s,
            start: *start,
            end: *end,
        });
        let scores = evaluate_batch(&self.world, self.report.letter, &self.plans, workers, spec);
        scores_fingerprint(&scores)
    }

    /// Fingerprint of this run's own scores (the reference the probe is
    /// compared against).
    pub fn scores_fingerprint(&self) -> u64 {
        scores_fingerprint(&self.report.scores)
    }

    /// A fresh [`EvalContext`] against this run's world, for invariant
    /// checks (baseline match, pristine-revert).
    pub fn context(&self) -> EvalContext<'_> {
        let spec = self.timeline.as_ref().map(|(s, start, end)| TimelineSpec {
            scenario: s,
            start: *start,
            end: *end,
        });
        EvalContext::new(&self.world, self.report.letter, spec)
    }

    /// The frontier + per-region top-`k` tables.
    pub fn render(&self, k: usize) -> String {
        self.report.render(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rss::RootLetter;

    #[test]
    fn tiny_run_ranks_and_reproduces() {
        let run = PlannerRun::run(
            Scale::Tiny,
            &MoveSetConfig {
                count: 40,
                ..Default::default()
            },
            3,
        );
        assert_eq!(run.report.letter, RootLetter::B);
        assert_eq!(run.report.scores.len(), 40);
        assert_eq!(run.report.ranking.len(), 40);
        // The identity candidate rides along as id 0 and scores zero.
        let identity = run.report.score(0).unwrap();
        assert!(identity.delta.is_zero());
        assert_eq!(identity.churn, 0.0);
        // Any worker count reproduces the scores bit-identically.
        assert_eq!(run.rescore_fingerprint(1), run.scores_fingerprint());
        assert_eq!(run.rescore_fingerprint(4), run.scores_fingerprint());
        assert!(run.context().baseline_matches_world());
        assert!(run.render(3).contains("Pareto frontier"));
    }
}
