//! Property-based tests over randomly parameterized topologies: routing
//! invariants must hold for any generated world, not just the default.

use netsim::anycast::{Deployment, FacilityId, Site, SiteId, SiteScope};
use netsim::routing::propagate;
use netsim::types::LearnedFrom;
use netsim::{Family, SimRng, Topology, TopologyConfig};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = TopologyConfig> {
    (
        3usize..10,   // tier1
        2usize..6,    // tier2 per region
        2usize..12,   // stub scale
        0.0f64..0.5,  // v4-only fraction
        0.0f64..0.6,  // open v6 peering
        any::<u64>(), // seed
    )
        .prop_map(|(t1, t2, stubs, v4only, openv6, seed)| TopologyConfig {
            tier1_count: t1,
            tier2_per_region: t2,
            stubs_per_region: [stubs, stubs + 1, stubs * 3, stubs * 2, stubs, stubs + 2],
            v4_only_stub_fraction: v4only,
            open_v6_peering_fraction: openv6,
            seed,
        })
}

fn global_deployment(topology: &Topology, rng_seed: u64, n_sites: usize) -> Deployment {
    let mut rng = SimRng::new(rng_seed);
    let nodes: Vec<netsim::AsId> = topology.nodes().iter().map(|n| n.id).collect();
    let sites = (0..n_sites)
        .map(|i| Site {
            id: SiteId(i as u32),
            facility: FacilityId(i as u32),
            scope: SiteScope::Global,
            origin_as: *rng.pick(&nodes),
            instance_stem: format!("s{i}"),
        })
        .collect();
    Deployment {
        name: "prop".into(),
        sites,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn global_anycast_reaches_every_as_on_v4(cfg in config_strategy(), dseed in any::<u64>()) {
        let topo = Topology::generate(&cfg);
        let d = global_deployment(&topo, dseed, 3);
        let table = propagate(&topo, &d, Family::V4);
        for node in topo.nodes() {
            prop_assert!(table.reachable(node.id), "{} unreachable", node.name);
        }
    }

    #[test]
    fn paths_are_simple_and_valley_free(cfg in config_strategy(), dseed in any::<u64>()) {
        let topo = Topology::generate(&cfg);
        let d = global_deployment(&topo, dseed, 2);
        for family in Family::BOTH {
            let table = propagate(&topo, &d, family);
            for node in topo.nodes() {
                for cand in table.candidates(node.id) {
                    // Simple path (no repeated AS).
                    let mut seen = std::collections::HashSet::new();
                    for hop in &cand.path {
                        prop_assert!(seen.insert(hop.0));
                    }
                    // The origin is path[0].
                    if let Some(first) = cand.path.first() {
                        prop_assert_eq!(
                            *first,
                            d.site(cand.site).origin_as,
                            "path does not start at origin"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_sorted_by_preference(cfg in config_strategy(), dseed in any::<u64>()) {
        let topo = Topology::generate(&cfg);
        let d = global_deployment(&topo, dseed, 3);
        let table = propagate(&topo, &d, Family::V4);
        for node in topo.nodes() {
            let cands = table.candidates(node.id);
            for pair in cands.windows(2) {
                prop_assert!(pair[0].learned_from <= pair[1].learned_from
                    || (pair[0].learned_from == pair[1].learned_from
                        && pair[0].path_len() <= pair[1].path_len() + 1));
            }
        }
    }

    #[test]
    fn v6_reachability_subset_of_v4(cfg in config_strategy(), dseed in any::<u64>()) {
        // Anything unreachable on v4 (nothing) stays consistent; v4-only
        // ASes are never v6-reachable.
        let topo = Topology::generate(&cfg);
        let d = global_deployment(&topo, dseed, 2);
        let v6 = propagate(&topo, &d, Family::V6);
        for node in topo.nodes() {
            if !node.has_v6 {
                prop_assert!(!v6.reachable(node.id));
            }
        }
    }

    #[test]
    fn propagation_deterministic(cfg in config_strategy(), dseed in any::<u64>()) {
        let topo = Topology::generate(&cfg);
        let d = global_deployment(&topo, dseed, 2);
        let a = propagate(&topo, &d, Family::V4);
        let b = propagate(&topo, &d, Family::V4);
        for node in topo.nodes() {
            prop_assert_eq!(a.best(node.id), b.best(node.id));
        }
    }

    #[test]
    fn snapshot_restore_round_trips_routing_hash(
        cfg in config_strategy(),
        dseed in any::<u64>(),
        mutseed in any::<u64>(),
    ) {
        // Any sequence of public topology mutations, once restored from a
        // snapshot, must leave routing bit-identical (per-family route-
        // table fingerprints), not merely reachability-equivalent.
        let mut topo = Topology::generate(&cfg);
        let d = global_deployment(&topo, dseed, 3);
        let before: Vec<u64> = Family::BOTH
            .iter()
            .map(|&f| propagate(&topo, &d, f).fingerprint())
            .collect();
        let snap = topo.snapshot();
        let mut rng = SimRng::new(mutseed);
        for _ in 0..6 {
            let a = netsim::AsId(rng.next_range(topo.len()) as u32);
            match rng.next_range(3) {
                0 => {
                    if let Some(l) = topo.links(a).first() {
                        let b = l.to;
                        topo.disable_link(a, b);
                    }
                }
                1 => {
                    let b = netsim::AsId(rng.next_range(topo.len()) as u32);
                    if a != b && topo.links(a).iter().all(|l| l.to != b) {
                        topo.add_link(a, b, netsim::Relation::Peer, true, true);
                    }
                }
                _ => {
                    if let Some(l) = topo.links(a).first() {
                        let b = l.to;
                        topo.set_link_carriage(a, b, false, true);
                    }
                }
            }
        }
        topo.restore(&snap);
        prop_assert!(snap.matches(&topo));
        let after: Vec<u64> = Family::BOTH
            .iter()
            .map(|&f| propagate(&topo, &d, f).fingerprint())
            .collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn origin_always_selects_itself(cfg in config_strategy(), dseed in any::<u64>()) {
        let topo = Topology::generate(&cfg);
        let d = global_deployment(&topo, dseed, 1);
        let table = propagate(&topo, &d, Family::V4);
        let origin = d.site(SiteId(0)).origin_as;
        let best = table.best(origin).unwrap();
        prop_assert_eq!(best.learned_from, LearnedFrom::Origin);
        prop_assert_eq!(best.path_len(), 1);
    }
}
