//! RTT model: geographic propagation over the AS path, per-hop processing,
//! and round-to-round jitter.
//!
//! The dominant term is fibre propagation over the hop-to-hop great-circle
//! distances (see `netgeo::delay`), which is what makes out-of-continent
//! routing expensive — the mechanism behind the paper's v4/v6 RTT
//! asymmetries (§6).

use crate::anycast::FacilityTable;
use crate::rng::SimRng;
use crate::routing::CandidateRoute;
use crate::topology::Topology;
use netgeo::{fiber_rtt_ms, Coord};

/// RTT model parameters.
#[derive(Debug, Clone)]
pub struct RttModel {
    /// Fixed per-AS-hop processing/queueing cost (ms, round trip).
    pub per_hop_ms: f64,
    /// Multiplicative jitter sigma (lognormal-ish: rtt * exp(sigma * N(0,1))).
    pub jitter_sigma: f64,
    /// Floor for any measured RTT (kernel + local link).
    pub floor_ms: f64,
}

impl Default for RttModel {
    fn default() -> Self {
        RttModel {
            per_hop_ms: 0.6,
            jitter_sigma: 0.08,
            floor_ms: 0.3,
        }
    }
}

impl RttModel {
    /// Deterministic base RTT (no jitter) from a client at `client_coord`
    /// over `route` to the site's facility.
    ///
    /// Geometry: client → first-hop AS city → ... → origin AS city →
    /// facility city, accumulating great-circle distance leg by leg. Policy
    /// detours (e.g. a v6 path through a remote open-peering backbone) thus
    /// cost real milliseconds.
    pub fn base_rtt_ms(
        &self,
        topology: &Topology,
        facilities: &FacilityTable,
        client_coord: Coord,
        route: &CandidateRoute,
        site_facility: crate::anycast::FacilityId,
    ) -> f64 {
        let mut km = 0.0;
        let mut prev = client_coord;
        // Path is origin-first; walk it client-side first, so iterate in
        // reverse (self's neighbor ... origin).
        for asn in route.path.iter().rev() {
            let c = topology.node(*asn).coord();
            km += prev.distance_km(&c);
            prev = c;
        }
        let fac = facilities.get(site_facility);
        km += prev.distance_km(&fac.coord());
        let hops = route.path.len() as f64 + 1.0;
        (fiber_rtt_ms(km) + hops * self.per_hop_ms).max(self.floor_ms)
    }

    /// Apply round-specific jitter to a base RTT.
    pub fn jittered(&self, base_ms: f64, rng: &mut SimRng) -> f64 {
        let factor = (self.jitter_sigma * rng.next_gaussian()).exp();
        (base_ms * factor).max(self.floor_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anycast::{Deployment, FacilityTable, Site, SiteId, SiteScope};
    use crate::routing::propagate;
    use crate::topology::{Topology, TopologyConfig};
    use crate::types::Family;
    use netgeo::{CityDb, Region};

    fn world() -> (Topology, FacilityTable) {
        let t = Topology::generate(&TopologyConfig::default());
        let mut f = FacilityTable::new();
        f.add(
            CityDb::by_name("frankfurt").unwrap(),
            0,
            t.stubs_in(Region::Europe)[0],
        );
        (t, f)
    }

    #[test]
    fn nearby_client_sees_low_rtt() {
        let (t, f) = world();
        let origin = t.stubs_in(Region::Europe)[0];
        let d = Deployment {
            name: "x".into(),
            sites: vec![Site {
                id: SiteId(0),
                facility: crate::anycast::FacilityId(0),
                scope: SiteScope::Global,
                origin_as: origin,
                instance_stem: "fra1".into(),
            }],
        };
        let table = propagate(&t, &d, Family::V4);
        let model = RttModel::default();
        // A client in Frankfurt reaching a Frankfurt site via a local path.
        let fra = CityDb::by_name("frankfurt").unwrap().coord;
        let route = table.best(origin).unwrap();
        let rtt = model.base_rtt_ms(&t, &f, fra, route, crate::anycast::FacilityId(0));
        assert!(rtt < 20.0, "got {rtt}");
    }

    #[test]
    fn transoceanic_detour_costs_more() {
        let (t, f) = world();
        let model = RttModel::default();
        let syd = CityDb::by_name("sydney").unwrap().coord;
        let fra = CityDb::by_name("frankfurt").unwrap().coord;
        // Fake routes: direct (empty-ish path) vs detour through Tokyo AS.
        let origin = t.stubs_in(Region::Europe)[0];
        let direct = CandidateRoute {
            site: SiteId(0),
            via: None,
            learned_from: crate::types::LearnedFrom::Origin,
            path: vec![origin],
            km: 0,
        };
        let rtt_from_fra = model.base_rtt_ms(&t, &f, fra, &direct, crate::anycast::FacilityId(0));
        let rtt_from_syd = model.base_rtt_ms(&t, &f, syd, &direct, crate::anycast::FacilityId(0));
        assert!(rtt_from_syd > rtt_from_fra + 100.0);
    }

    #[test]
    fn jitter_centred_on_base() {
        let model = RttModel::default();
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let base = 50.0;
        let mean: f64 = (0..n).map(|_| model.jittered(base, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - base).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn jitter_respects_floor() {
        let model = RttModel {
            floor_ms: 2.0,
            jitter_sigma: 3.0,
            per_hop_ms: 0.0,
        };
        let mut rng = SimRng::new(6);
        for _ in 0..1000 {
            assert!(model.jittered(2.0, &mut rng) >= 2.0);
        }
    }

    #[test]
    fn more_hops_cost_more() {
        let (t, f) = world();
        let model = RttModel {
            jitter_sigma: 0.0,
            ..Default::default()
        };
        let fra = CityDb::by_name("frankfurt").unwrap().coord;
        let origin = t.stubs_in(Region::Europe)[0];
        let short = CandidateRoute {
            site: SiteId(0),
            via: None,
            learned_from: crate::types::LearnedFrom::Origin,
            path: vec![origin],
            km: 0,
        };
        // Same geography, one extra hop through the same AS's city.
        let long = CandidateRoute {
            path: vec![origin, origin],
            km: 0,
            ..short.clone()
        };
        let a = model.base_rtt_ms(&t, &f, fra, &short, crate::anycast::FacilityId(0));
        let b = model.base_rtt_ms(&t, &f, fra, &long, crate::anycast::FacilityId(0));
        assert!(b > a);
    }
}
