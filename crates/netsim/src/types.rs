//! Core identifiers and enums for the network simulation.

use serde::{Deserialize, Serialize};

/// An autonomous system number (index into the topology's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl std::fmt::Display for AsId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Address family. The paper's central axis of comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Family {
    V4,
    V6,
}

impl Family {
    /// Both families in paper order.
    pub const BOTH: [Family; 2] = [Family::V4, Family::V6];

    /// Short label used in reports ("IPv4"/"IPv6").
    pub fn label(self) -> &'static str {
        match self {
            Family::V4 => "IPv4",
            Family::V6 => "IPv6",
        }
    }

    /// Index (0 for v4, 1 for v6) for array-backed accumulators.
    pub fn index(self) -> usize {
        match self {
            Family::V4 => 0,
            Family::V6 => 1,
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Business relationship of a directed link, from the perspective of the
/// link's owner: `self --(relation)--> neighbor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// The neighbor is our provider (we are their customer).
    Provider,
    /// The neighbor is our customer.
    Customer,
    /// Settlement-free peer.
    Peer,
}

impl Relation {
    /// The relation as seen from the other end of the link.
    pub fn reverse(self) -> Relation {
        match self {
            Relation::Provider => Relation::Customer,
            Relation::Customer => Relation::Provider,
            Relation::Peer => Relation::Peer,
        }
    }
}

/// Rough AS tier, used by the topology generator and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Global transit-free backbone.
    Tier1,
    /// Regional/national transit provider.
    Tier2,
    /// Edge/stub network (eyeball ISPs, hosters, enterprises).
    Stub,
}

/// How a route was learned — the Gao-Rexford preference classes, ordered
/// best-first (customer routes are most preferred: they earn money).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LearnedFrom {
    /// We originate this route ourselves.
    Origin,
    /// Learned from a customer.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_reverse_involution() {
        for r in [Relation::Provider, Relation::Customer, Relation::Peer] {
            assert_eq!(r.reverse().reverse(), r);
        }
        assert_eq!(Relation::Provider.reverse(), Relation::Customer);
    }

    #[test]
    fn learned_from_preference_order() {
        // Ord derives the Gao-Rexford preference: smaller = preferred.
        assert!(LearnedFrom::Origin < LearnedFrom::Customer);
        assert!(LearnedFrom::Customer < LearnedFrom::Peer);
        assert!(LearnedFrom::Peer < LearnedFrom::Provider);
    }

    #[test]
    fn family_labels() {
        assert_eq!(Family::V4.label(), "IPv4");
        assert_eq!(Family::V6.label(), "IPv6");
        assert_eq!(Family::V4.index(), 0);
        assert_eq!(Family::V6.index(), 1);
    }
}
