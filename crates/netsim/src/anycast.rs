//! Anycast deployments: facilities, sites and the deployment abstraction.
//!
//! A *facility* is a colocation point (data centre or IXP) in a city, with a
//! shared edge router. Different operators' sites at the same facility share
//! that router — which is exactly the "reduced redundancy" §5 of the paper
//! quantifies via shared second-to-last traceroute hops.
//!
//! A *site* is one operator's presence at one facility, `Global` or `Local`
//! scope. Local sites are announced NO_EXPORT-style: only ASes directly
//! adjacent to the hosting AS can reach them.

use crate::types::AsId;
use netgeo::{City, Coord, Region};
use serde::{Deserialize, Serialize};

/// Identifier of a facility (index into the world's facility table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FacilityId(pub u32);

/// Identifier of a site within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// Site announcement scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteScope {
    /// Announced globally; reachable by every AS if selected.
    Global,
    /// Announced NO_EXPORT; reachable only from directly adjacent ASes.
    Local,
}

/// A colocation facility.
#[derive(Debug, Clone)]
pub struct Facility {
    pub id: FacilityId,
    /// City the facility is in.
    pub city: &'static City,
    /// Which facility in the city (cities can host several).
    pub index_in_city: u8,
    /// The AS operating the facility fabric (edge router lives here).
    pub host_as: AsId,
}

impl Facility {
    /// Coordinates of the facility (city centroid).
    pub fn coord(&self) -> Coord {
        self.city.coord
    }

    /// A stable identifier for the facility's edge router — sites at the
    /// same facility share it; this is the "second-to-last hop" identity.
    pub fn edge_router(&self) -> u64 {
        ((self.id.0 as u64) << 8) | 0xE0
    }
}

/// One operator's presence at a facility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    pub id: SiteId,
    pub facility: FacilityId,
    pub scope: SiteScope,
    /// The AS from which the site's prefix is originated (usually the
    /// facility host AS or the operator's own AS homed there).
    pub origin_as: AsId,
    /// Instance identifier stem, e.g. `fra2` — what `hostname.bind` leaks.
    pub instance_stem: String,
}

/// An anycast deployment: one service address (per family), many sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deployment {
    /// Human-readable name (e.g. `b.root-servers.net`).
    pub name: String,
    pub sites: Vec<Site>,
}

impl Deployment {
    /// Sites with the given scope.
    pub fn sites_with_scope(&self, scope: SiteScope) -> impl Iterator<Item = &Site> {
        self.sites.iter().filter(move |s| s.scope == scope)
    }

    /// Number of global sites.
    pub fn global_count(&self) -> usize {
        self.sites_with_scope(SiteScope::Global).count()
    }

    /// Number of local sites.
    pub fn local_count(&self) -> usize {
        self.sites_with_scope(SiteScope::Local).count()
    }

    /// Site by id. Positional lookup when ids are dense (the common,
    /// catalog-built case), falling back to a scan — deployments filtered
    /// for route propagation (withdrawn sites) keep original ids with
    /// holes in the positions.
    pub fn site(&self, id: SiteId) -> &Site {
        if let Some(s) = self.sites.get(id.0 as usize) {
            if s.id == id {
                return s;
            }
        }
        self.sites
            .iter()
            .find(|s| s.id == id)
            .expect("site id present in deployment")
    }
}

/// The facility table of a simulated world, shared across deployments.
#[derive(Debug, Clone, Default)]
pub struct FacilityTable {
    facilities: Vec<Facility>,
}

impl FacilityTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a facility; returns its id.
    pub fn add(&mut self, city: &'static City, index_in_city: u8, host_as: AsId) -> FacilityId {
        let id = FacilityId(self.facilities.len() as u32);
        self.facilities.push(Facility {
            id,
            city,
            index_in_city,
            host_as,
        });
        id
    }

    /// Facility by id.
    pub fn get(&self, id: FacilityId) -> &Facility {
        &self.facilities[id.0 as usize]
    }

    /// All facilities.
    pub fn all(&self) -> &[Facility] {
        &self.facilities
    }

    /// Find an existing facility in `city` with the given index.
    pub fn find(&self, city: &'static City, index_in_city: u8) -> Option<FacilityId> {
        self.facilities
            .iter()
            .find(|f| std::ptr::eq(f.city, city) && f.index_in_city == index_in_city)
            .map(|f| f.id)
    }

    /// Facilities in `region`.
    pub fn in_region(&self, region: Region) -> impl Iterator<Item = &Facility> {
        self.facilities
            .iter()
            .filter(move |f| f.city.region == region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgeo::CityDb;

    #[test]
    fn facility_edge_router_unique_per_facility() {
        let mut t = FacilityTable::new();
        let fra = CityDb::by_name("frankfurt").unwrap();
        let a = t.add(fra, 0, AsId(1));
        let b = t.add(fra, 1, AsId(2));
        assert_ne!(t.get(a).edge_router(), t.get(b).edge_router());
        // Same facility, same router.
        assert_eq!(t.get(a).edge_router(), t.get(a).edge_router());
    }

    #[test]
    fn find_locates_existing() {
        let mut t = FacilityTable::new();
        let fra = CityDb::by_name("frankfurt").unwrap();
        let nyc = CityDb::by_name("newyork").unwrap();
        let a = t.add(fra, 0, AsId(1));
        t.add(nyc, 0, AsId(2));
        assert_eq!(t.find(fra, 0), Some(a));
        assert_eq!(t.find(fra, 1), None);
    }

    #[test]
    fn deployment_scope_counts() {
        let d = Deployment {
            name: "x.root".into(),
            sites: vec![
                Site {
                    id: SiteId(0),
                    facility: FacilityId(0),
                    scope: SiteScope::Global,
                    origin_as: AsId(0),
                    instance_stem: "fra1".into(),
                },
                Site {
                    id: SiteId(1),
                    facility: FacilityId(1),
                    scope: SiteScope::Local,
                    origin_as: AsId(1),
                    instance_stem: "ams1".into(),
                },
            ],
        };
        assert_eq!(d.global_count(), 1);
        assert_eq!(d.local_count(), 1);
        assert_eq!(d.site(SiteId(1)).instance_stem, "ams1");
    }

    #[test]
    fn region_filter() {
        let mut t = FacilityTable::new();
        t.add(CityDb::by_name("frankfurt").unwrap(), 0, AsId(0));
        t.add(CityDb::by_name("tokyo").unwrap(), 0, AsId(1));
        assert_eq!(t.in_region(Region::Europe).count(), 1);
        assert_eq!(t.in_region(Region::Asia).count(), 1);
        assert_eq!(t.in_region(Region::Africa).count(), 0);
    }
}
