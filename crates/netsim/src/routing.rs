//! Gao-Rexford policy routing.
//!
//! For one anycast destination (a deployment's service prefix in one address
//! family), [`propagate`] computes, for every AS, the set of *candidate
//! routes* it would hear and the one it selects. The algorithm is the
//! standard three-stage BGP abstraction:
//!
//! 1. routes travel **up** customer→provider edges from the origins,
//! 2. cross at most one **peer** edge,
//! 3. travel **down** provider→customer edges,
//!
//! with selection order: learned-from class (customer > peer > provider) ▸
//! shorter AS path ▸ deterministic tie-break. Local (NO_EXPORT) sites are
//! only visible to the origin AS itself and its direct neighbors.
//!
//! The per-AS *candidate list* (best route per neighbor) is retained: the
//! churn model flips between near-equal candidates to produce the site
//! changes the paper measures in Figure 3.

use crate::anycast::{Deployment, SiteId, SiteScope};
use crate::topology::Topology;
use crate::types::{AsId, Family, LearnedFrom, Relation};
use std::collections::BinaryHeap;

/// One route an AS heard for the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateRoute {
    /// Which site the route leads to.
    pub site: SiteId,
    /// The neighbor the route was learned from (`None` when originated).
    pub via: Option<AsId>,
    /// Gao-Rexford class.
    pub learned_from: LearnedFrom,
    /// AS-path as a list of AS hops, destination-first (origin ... self
    /// exclusive — `self` is implicit). `path[0]` is the origin AS.
    pub path: Vec<AsId>,
    /// Accumulated great-circle kilometres along the path's AS home cities
    /// — a stand-in for IGP metrics / hot-potato locality. Used as a
    /// tie-break after class and path length, which is what keeps most
    /// catchments geographically sensible while still letting policy
    /// (e.g. the open v6 peering backbone winning on CLASS) produce the
    /// out-of-continent detours the paper observes.
    pub km: u32,
}

impl CandidateRoute {
    /// AS-path length (hops to the origin).
    pub fn path_len(&self) -> usize {
        self.path.len()
    }

    /// Selection key: smaller is better (class, length, IGP-ish distance
    /// in 200 km buckets, deterministic tie-break over via/site).
    fn rank(&self) -> RouteRank {
        (
            self.learned_from,
            self.path.len(),
            self.km / 200,
            self.via.map(|a| a.0).unwrap_or(0),
            self.site.0,
        )
    }
}

/// [`CandidateRoute::rank`]'s ordering key: (class, path length, distance
/// bucket, via tie-break, site tie-break).
type RouteRank = (LearnedFrom, usize, u32, u32, u32);

/// Routing outcome for one destination in one family.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// Candidate routes per AS (index = AsId), best-first.
    candidates: Vec<Vec<CandidateRoute>>,
    pub family: Family,
}

impl RouteTable {
    /// Candidates heard by `asn`, best-first. Empty when unreachable.
    pub fn candidates(&self, asn: AsId) -> &[CandidateRoute] {
        &self.candidates[asn.0 as usize]
    }

    /// The best route of `asn`, if any.
    pub fn best(&self, asn: AsId) -> Option<&CandidateRoute> {
        self.candidates[asn.0 as usize].first()
    }

    /// Whether `asn` can reach the destination at all.
    pub fn reachable(&self, asn: AsId) -> bool {
        !self.candidates[asn.0 as usize].is_empty()
    }

    /// Order-sensitive FNV-style digest over the complete candidate set
    /// (every AS, every candidate, selection-relevant fields). Two tables
    /// with equal fingerprints route identically — the snapshot/restore
    /// round-trip tests and the planner's revert invariant both hinge on
    /// this being sensitive to candidate *order*, not just membership.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(&mut h, self.family.index() as u64);
        for (asn, cands) in self.candidates.iter().enumerate() {
            for c in cands {
                mix(&mut h, asn as u64);
                mix(&mut h, u64::from(c.site.0));
                mix(&mut h, c.via.map(|a| u64::from(a.0) + 1).unwrap_or(0));
                mix(&mut h, c.learned_from as u64);
                mix(&mut h, c.path.len() as u64);
                mix(&mut h, u64::from(c.km));
            }
        }
        h
    }
}

/// Max-heap entry ordered so the globally best (smallest rank) pops first.
struct QueueEntry {
    asn: AsId,
    route: CandidateRoute,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.route.rank() == other.route.rank()
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want best-rank-first.
        other.route.rank().cmp(&self.route.rank())
    }
}

/// Propagate routes for `deployment` over `topology` in `family`.
///
/// Every AS keeps its best route per neighbor (so up to `degree` candidates),
/// and exports only according to Gao-Rexford rules:
/// * routes learned from customers (or originated) export to everyone;
/// * routes learned from peers/providers export only to customers.
pub fn propagate(topology: &Topology, deployment: &Deployment, family: Family) -> RouteTable {
    let n = topology.len();
    // Best route per (AS, learned-via-neighbor). Keyed by neighbor id in a
    // small per-AS map; we keep the overall sorted list at the end.
    let mut heard: Vec<Vec<CandidateRoute>> = vec![Vec::new(); n];
    // Best rank already exported by each AS; export happens at most once per
    // improvement, which bounds work like Dijkstra.
    let mut best_rank: Vec<Option<RouteRank>> = vec![None; n];
    let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();

    // Seed with origins.
    for site in &deployment.sites {
        let origin = site.origin_as;
        if family == Family::V6 && !topology.node(origin).has_v6 {
            continue;
        }
        let route = CandidateRoute {
            site: site.id,
            via: None,
            learned_from: LearnedFrom::Origin,
            path: vec![origin],
            km: 0,
        };
        queue.push(QueueEntry { asn: origin, route });
    }

    while let Some(QueueEntry { asn, route }) = queue.pop() {
        // Keep as candidate if it is the best route via this neighbor.
        let via = route.via;
        let cand_list = &mut heard[asn.0 as usize];
        let existing = cand_list.iter().position(|c| c.via == via);
        match existing {
            Some(i) if cand_list[i].rank() <= route.rank() => continue,
            Some(i) => cand_list[i] = route.clone(),
            None => cand_list.push(route.clone()),
        }
        // Export only if this improves the AS's best route (standard BGP:
        // only the best route is exported).
        let rank = route.rank();
        match best_rank[asn.0 as usize] {
            Some(r) if r <= rank => continue,
            _ => best_rank[asn.0 as usize] = Some(rank),
        }
        // Local sites are announced with limited scope ("local to an AS or
        // a metro area", §2): the origin offers them to its IXP peers and
        // customers, and recipients may pass them only *down* their
        // customer cone — never across peers or up to providers. This
        // keeps locality while customers of the hosting ISP still reach
        // the site (they route through their provider, as with a real
        // NO_EXPORT best path plus default routing).
        let is_local = deployment.site(route.site).scope == SiteScope::Local;
        // Gao-Rexford export rules.
        let exportable_to_all = matches!(
            route.learned_from,
            LearnedFrom::Origin | LearnedFrom::Customer
        );
        for link in topology.links(asn) {
            if !link.carries(family) {
                continue;
            }
            if family == Family::V6 && !topology.node(link.to).has_v6 {
                continue;
            }
            // Never send a route back where it came from.
            if Some(link.to) == route.via {
                continue;
            }
            // Export policy: to customers always; to peers/providers only
            // customer-or-origin routes.
            let to_customer = link.relation == Relation::Customer;
            if !to_customer && !exportable_to_all {
                continue;
            }
            if is_local {
                // Origin: customers + peers (the IXP fabric). Everyone
                // else: customers only.
                let allowed = if route.learned_from == LearnedFrom::Origin {
                    to_customer || link.relation == Relation::Peer
                } else {
                    to_customer
                };
                if !allowed {
                    continue;
                }
            }
            // Loop prevention.
            if route.path.contains(&link.to) {
                continue;
            }
            let learned = match link.relation.reverse() {
                // From the receiver's perspective, what is `asn` to them?
                Relation::Customer => LearnedFrom::Customer,
                Relation::Peer => LearnedFrom::Peer,
                Relation::Provider => LearnedFrom::Provider,
            };
            let mut path = route.path.clone();
            // An originated route already carries the origin (= `asn`) as
            // its first path element; learned routes exclude the holder.
            if route.learned_from != LearnedFrom::Origin {
                path.push(asn);
            }
            let hop_km = topology
                .node(asn)
                .coord()
                .distance_km(&topology.node(link.to).coord()) as u32;
            queue.push(QueueEntry {
                asn: link.to,
                route: CandidateRoute {
                    site: route.site,
                    via: Some(asn),
                    learned_from: learned,
                    path,
                    km: route.km.saturating_add(hop_km),
                },
            });
        }
    }

    for list in &mut heard {
        list.sort_by_key(|c| c.rank());
    }
    RouteTable {
        candidates: heard,
        family,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anycast::{FacilityId, Site};
    use crate::topology::TopologyConfig;
    use netgeo::Region;

    fn topo() -> Topology {
        Topology::generate(&TopologyConfig::default())
    }

    fn single_site_deployment(origin: AsId, scope: SiteScope) -> Deployment {
        Deployment {
            name: "test".into(),
            sites: vec![Site {
                id: SiteId(0),
                facility: FacilityId(0),
                scope,
                origin_as: origin,
                instance_stem: "x1".into(),
            }],
        }
    }

    #[test]
    fn global_site_reachable_from_everywhere_v4() {
        let t = topo();
        let origin = t.stubs_in(Region::Europe)[0];
        let d = single_site_deployment(origin, SiteScope::Global);
        let table = propagate(&t, &d, Family::V4);
        for node in t.nodes() {
            assert!(
                table.reachable(node.id),
                "{} cannot reach global site",
                node.name
            );
        }
    }

    #[test]
    fn origin_selects_itself() {
        let t = topo();
        let origin = t.stubs_in(Region::Asia)[0];
        let d = single_site_deployment(origin, SiteScope::Global);
        let table = propagate(&t, &d, Family::V4);
        let best = table.best(origin).unwrap();
        assert_eq!(best.learned_from, LearnedFrom::Origin);
        assert_eq!(best.path, vec![origin]);
    }

    #[test]
    fn local_site_scoped_to_origin_neighborhood_cone() {
        // Local sites live at colo/IXP ASes (tier-2, with peers and
        // customers), not at stubs.
        let t = topo();
        let origin = t
            .by_tier(crate::types::Tier::Tier2)
            .find(|n| n.region == Region::Europe)
            .unwrap()
            .id;
        let d = single_site_deployment(origin, SiteScope::Local);
        let table = propagate(&t, &d, Family::V4);
        let mut reachable = 0usize;
        for node in t.nodes() {
            if let Some(best) = table.best(node.id) {
                reachable += 1;
                // Local routes reach an AS only as: the origin itself, a
                // direct neighbor of the origin, or down a provider chain
                // (customer-cone propagation).
                let ok = node.id == origin
                    || best.via == Some(origin)
                    || best.learned_from == LearnedFrom::Provider;
                assert!(ok, "{}: {:?}", node.name, best);
            }
        }
        // Locality: a strict subset of the topology hears the route, but
        // more than just the origin — its IXP peers and their customer
        // cones do, which for a well-peered European tier-2 is a sizable
        // regional footprint (cf. Table 4's ~77% local-site coverage in
        // Europe).
        assert!(reachable > 1, "no neighborhood heard the local route");
        assert!(
            reachable < t.len() * 4 / 5,
            "local route spread too far: {reachable}/{}",
            t.len()
        );
    }

    #[test]
    fn v6_unreachable_for_v4_only_stub() {
        let t = topo();
        let origin = t.stubs_in(Region::Europe)[0];
        let d = single_site_deployment(origin, SiteScope::Global);
        let table = propagate(&t, &d, Family::V6);
        let v4_only: Vec<AsId> = t
            .nodes()
            .iter()
            .filter(|n| !n.has_v6)
            .map(|n| n.id)
            .collect();
        assert!(!v4_only.is_empty());
        for asn in v4_only {
            assert!(!table.reachable(asn));
        }
    }

    #[test]
    fn paths_are_loop_free_and_valley_free() {
        let t = topo();
        let origin = t.stubs_in(Region::NorthAmerica)[0];
        let d = single_site_deployment(origin, SiteScope::Global);
        let table = propagate(&t, &d, Family::V4);
        for node in t.nodes() {
            if let Some(best) = table.best(node.id) {
                // Loop-free.
                let mut seen = std::collections::HashSet::new();
                for hop in &best.path {
                    assert!(seen.insert(*hop), "loop via {hop} for {}", node.name);
                }
                // Learned routes never list the holder; originated routes
                // list the holder exactly once (as the origin).
                if best.learned_from != LearnedFrom::Origin {
                    assert!(!best.path.contains(&node.id), "self in path");
                }
            }
        }
    }

    #[test]
    fn customer_routes_preferred() {
        // For any AS, the selected class must be the minimum among its
        // candidates — i.e. selection respects Gao-Rexford preference.
        let t = topo();
        let origin = t.stubs_in(Region::Europe)[1];
        let d = single_site_deployment(origin, SiteScope::Global);
        let table = propagate(&t, &d, Family::V4);
        for node in t.nodes() {
            let cands = table.candidates(node.id);
            if cands.len() > 1 {
                assert!(cands
                    .windows(2)
                    .all(|w| w[0].learned_from <= w[1].learned_from));
            }
        }
    }

    #[test]
    fn multi_site_splits_catchments() {
        let t = topo();
        let eu = t.stubs_in(Region::Europe)[0];
        let na = t.stubs_in(Region::NorthAmerica)[0];
        let d = Deployment {
            name: "two".into(),
            sites: vec![
                Site {
                    id: SiteId(0),
                    facility: FacilityId(0),
                    scope: SiteScope::Global,
                    origin_as: eu,
                    instance_stem: "eu1".into(),
                },
                Site {
                    id: SiteId(1),
                    facility: FacilityId(1),
                    scope: SiteScope::Global,
                    origin_as: na,
                    instance_stem: "na1".into(),
                },
            ],
        };
        let table = propagate(&t, &d, Family::V4);
        let mut catchment = [0usize; 2];
        for node in t.nodes() {
            if let Some(best) = table.best(node.id) {
                catchment[best.site.0 as usize] += 1;
            }
        }
        // Both sites attract some traffic.
        assert!(catchment[0] > 0 && catchment[1] > 0, "{catchment:?}");
    }

    #[test]
    fn deterministic_propagation() {
        let t = topo();
        let origin = t.stubs_in(Region::Oceania)[0];
        let d = single_site_deployment(origin, SiteScope::Global);
        let a = propagate(&t, &d, Family::V4);
        let b = propagate(&t, &d, Family::V4);
        for node in t.nodes() {
            assert_eq!(a.best(node.id), b.best(node.id));
        }
    }

    #[test]
    fn open_v6_backbone_attracts_peer_routes() {
        // An AS with an open v6 peering to the backbone should see the
        // destination via that peer when the destination's origin also
        // peers with or is reachable through the backbone.
        let t = topo();
        let d = single_site_deployment(t.open_peering_backbone, SiteScope::Global);
        let table = propagate(&t, &d, Family::V6);
        let mut via_peer = 0;
        for node in t.nodes() {
            if let Some(best) = table.best(node.id) {
                if best.learned_from == LearnedFrom::Peer {
                    via_peer += 1;
                }
            }
        }
        assert!(via_peer > 30, "only {via_peer} v6 peer-learned routes");
    }
}
