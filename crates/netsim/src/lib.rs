//! AS-level Internet simulator for the `roots-go-deep` reproduction.
//!
//! The paper measures the live Internet; this crate is the substitute
//! substrate (DESIGN.md §1): an AS topology with business relationships,
//! Gao-Rexford policy routing per address family, anycast origination with
//! local (NO_EXPORT-style) sites, traceroute emulation and a geographic RTT
//! model. It produces the same *artefacts* the paper's analyses consume —
//! catchments, AS paths, second-to-last hops, RTTs, and route churn — from
//! the same causes (policy preferences, path asymmetry per family, shared
//! last-hop facilities).
//!
//! Module map:
//!
//! * [`rng`] — deterministic SplitMix64 PRNG; all randomness flows from one
//!   seed;
//! * [`types`] — IDs, address families, business relationships;
//! * [`topology`] — the AS graph and its generator (tier-1 backbone,
//!   regional transit, stubs, IXP peering, per-family link masks, and the
//!   open-peering v6 backbone standing in for AS6939);
//! * [`anycast`] — facilities, sites and deployments;
//! * [`routing`] — Gao-Rexford route propagation and per-AS candidate
//!   tables;
//! * [`traceroute`] — hop expansion, second-to-last-hop identity, missing
//!   hops;
//! * [`rtt`] — path RTT from great-circle hop distances plus per-hop and
//!   jitter terms;
//! * [`churn`] — the route-flapping process that drives site changes
//!   between measurement rounds.

pub mod anycast;
pub mod churn;
pub mod rng;
pub mod routing;
pub mod rtt;
pub mod topology;
pub mod traceroute;
pub mod types;

pub use anycast::{Deployment, Facility, FacilityId, Site, SiteId, SiteScope};
pub use churn::ChurnModel;
pub use rng::SimRng;
pub use routing::{propagate, CandidateRoute, RouteTable};
pub use rtt::RttModel;
pub use topology::{Topology, TopologyConfig, TopologySnapshot};
pub use traceroute::{trace, Traceroute, TracerouteConfig};
pub use types::{AsId, Family, Relation, Tier};
