//! The AS graph and its generator.
//!
//! The generated topology follows the coarse structure of the real Internet:
//!
//! * a small clique of **tier-1** backbones peering with each other, each
//!   homed in a major city;
//! * **tier-2** regional transit providers, customers of 2-3 tier-1s and
//!   peering regionally (at "IXPs" — modelled as dense regional peering);
//! * **stub** edge networks (where vantage points and resolvers live),
//!   customers of 1-2 in-region tier-2s, some multihomed across regions;
//! * per-family link masks: some stubs are v4-only; one designated backbone
//!   (`open_peering_backbone`, the AS6939 stand-in) has an *open v6 peering
//!   policy* — extra v6-only peer links to many networks worldwide. The
//!   paper traces several of its v4/v6 RTT asymmetries (i.root in North
//!   America, l.root in Africa, South America out-of-continent routing) to
//!   exactly this kind of AS;
//! * a second designated backbone (`transit_backbone`, the AS12956 stand-in)
//!   that carries much of South America's v4 transit to Europe/NA.

use crate::rng::SimRng;
use crate::types::{AsId, Family, Relation, Tier};
use netgeo::{City, CityDb, Coord, Region};

/// One AS.
#[derive(Debug, Clone)]
pub struct AsNode {
    pub id: AsId,
    /// Synthetic name, e.g. `t1-03` or `stub-eu-117`.
    pub name: String,
    pub tier: Tier,
    pub region: Region,
    /// Home city (PoP placement and hop geometry use this).
    pub city: &'static City,
    /// Whether this AS has IPv6 connectivity at all.
    pub has_v6: bool,
}

impl AsNode {
    /// Home coordinates.
    pub fn coord(&self) -> Coord {
        self.city.coord
    }
}

/// A directed adjacency entry: `from` considers `to` related by `relation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    pub to: AsId,
    pub relation: Relation,
    /// Whether the link carries IPv4.
    pub v4: bool,
    /// Whether the link carries IPv6.
    pub v6: bool,
}

impl Link {
    /// Does this link carry `family`?
    pub fn carries(&self, family: Family) -> bool {
        match family {
            Family::V4 => self.v4,
            Family::V6 => self.v6,
        }
    }
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Number of tier-1 backbones.
    pub tier1_count: usize,
    /// Tier-2 providers per region.
    pub tier2_per_region: usize,
    /// Stub networks per region (vantage points and resolvers live here).
    pub stubs_per_region: [usize; 6],
    /// Fraction of stubs without IPv6.
    pub v4_only_stub_fraction: f64,
    /// Fraction of (otherwise unrelated) networks the open-peering backbone
    /// gets a v6-only peer link to.
    pub open_v6_peering_fraction: f64,
    /// Seed for the generator.
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            tier1_count: 12,
            tier2_per_region: 8,
            // Order: Africa, Asia, Europe, NorthAmerica, SouthAmerica, Oceania.
            // Shaped like the paper's Table 3 network distribution (Europe-
            // heavy), sized so the VP population can reach the paper's 523
            // distinct networks (386 of them European).
            stubs_per_region: [20, 45, 400, 110, 20, 30],
            v4_only_stub_fraction: 0.25,
            open_v6_peering_fraction: 0.35,
            seed: 0xD0_07,
        }
    }
}

/// A typed snapshot of a topology's mutable state: the node count and the
/// full adjacency structure (including per-entry order, which routing
/// determinism depends on). [`Topology::restore`] brings the graph back
/// bit-identically: ASes added after the snapshot are dropped and every
/// link — carriage flags, relation, *and position* — returns to its
/// snapshotted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySnapshot {
    node_count: usize,
    adj: Vec<Vec<Link>>,
}

impl TopologySnapshot {
    /// Number of ASes at snapshot time.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Whether `topology`'s mutable state equals this snapshot exactly
    /// (same node count, same adjacency entries in the same order).
    pub fn matches(&self, topology: &Topology) -> bool {
        topology.nodes.len() == self.node_count && topology.adj == self.adj
    }
}

/// The AS graph.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<AsNode>,
    /// Adjacency per node (directed entries; every link appears once in each
    /// direction with reversed relation).
    adj: Vec<Vec<Link>>,
    /// The AS6939 stand-in: open v6 peering backbone.
    pub open_peering_backbone: AsId,
    /// The AS12956 stand-in: South-America-to-Europe v4 transit.
    pub transit_backbone: AsId,
}

impl Topology {
    /// Generate a topology.
    pub fn generate(cfg: &TopologyConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed).derive("topology");
        let mut nodes: Vec<AsNode> = Vec::new();
        let mut adj: Vec<Vec<Link>> = Vec::new();

        let add_node = |nodes: &mut Vec<AsNode>,
                        adj: &mut Vec<Vec<Link>>,
                        name: String,
                        tier: Tier,
                        city: &'static City,
                        has_v6: bool|
         -> AsId {
            let id = AsId(nodes.len() as u32);
            nodes.push(AsNode {
                id,
                name,
                tier,
                region: city.region,
                city,
                has_v6,
            });
            adj.push(Vec::new());
            id
        };

        // --- Tier 1 backbones, homed in major interconnection cities. ---
        let t1_cities = [
            "frankfurt",
            "ashburn",
            "amsterdam",
            "london",
            "newyork",
            "tokyo",
            "singapore",
            "losangeles",
            "paris",
            "saopaulo",
            "sydney",
            "chicago",
            "stockholm",
            "miami",
        ];
        let mut tier1: Vec<AsId> = Vec::new();
        for i in 0..cfg.tier1_count {
            let city = CityDb::by_name(t1_cities[i % t1_cities.len()]).expect("known city");
            let id = add_node(
                &mut nodes,
                &mut adj,
                format!("t1-{i:02}"),
                Tier::Tier1,
                city,
                true,
            );
            tier1.push(id);
        }
        // Full tier-1 peer mesh (both families).
        for i in 0..tier1.len() {
            for j in (i + 1)..tier1.len() {
                link(&mut adj, tier1[i], tier1[j], Relation::Peer, true, true);
            }
        }
        let open_peering_backbone = tier1[0];
        let transit_backbone = tier1[1];

        // --- Tier 2 regional transit. ---
        let mut tier2_by_region: [Vec<AsId>; 6] = Default::default();
        for region in Region::ALL {
            let cities: Vec<&'static City> = CityDb::in_region(region).collect();
            for i in 0..cfg.tier2_per_region {
                let city = cities[rng.next_range(cities.len())];
                let id = add_node(
                    &mut nodes,
                    &mut adj,
                    format!("t2-{}-{i:02}", region_tag(region)),
                    Tier::Tier2,
                    city,
                    true,
                );
                tier2_by_region[region.index()].push(id);
                // Customer of 2-3 tier-1s.
                let mut providers = tier1.clone();
                rng.shuffle(&mut providers);
                let n_prov = 2 + rng.next_range(2);
                for &p in providers.iter().take(n_prov) {
                    // South American v4 transit is disproportionately carried
                    // by the transit backbone (the AS12956 analog).
                    link(&mut adj, id, p, Relation::Provider, true, true);
                }
                if region == Region::SouthAmerica {
                    ensure_link(
                        &mut adj,
                        id,
                        transit_backbone,
                        Relation::Provider,
                        true,
                        false,
                    );
                }
            }
            // Regional tier-2 peering (the "IXP" effect): dense in-region
            // peer links.
            let t2 = &tier2_by_region[region.index()];
            for i in 0..t2.len() {
                for j in (i + 1)..t2.len() {
                    if rng.chance(0.6) {
                        link(&mut adj, t2[i], t2[j], Relation::Peer, true, true);
                    }
                }
            }
        }

        // --- Stubs. ---
        for region in Region::ALL {
            let cities: Vec<&'static City> = CityDb::in_region(region).collect();
            let t2 = tier2_by_region[region.index()].clone();
            for i in 0..cfg.stubs_per_region[region.index()] {
                let city = cities[rng.next_range(cities.len())];
                let has_v6 = !rng.chance(cfg.v4_only_stub_fraction);
                let id = add_node(
                    &mut nodes,
                    &mut adj,
                    format!("stub-{}-{i:03}", region_tag(region)),
                    Tier::Stub,
                    city,
                    has_v6,
                );
                // 1-2 in-region providers.
                let n_prov = 1 + rng.next_range(2);
                let mut providers = t2.clone();
                rng.shuffle(&mut providers);
                for &p in providers.iter().take(n_prov) {
                    link(&mut adj, id, p, Relation::Provider, true, has_v6);
                }
                // Occasional out-of-region multihoming.
                if rng.chance(0.1) {
                    let other_region = Region::ALL[rng.next_range(6)];
                    let pool = &tier2_by_region[other_region.index()];
                    if !pool.is_empty() {
                        let p = *rng.pick(pool);
                        link(&mut adj, id, p, Relation::Provider, true, has_v6);
                    }
                }
            }
        }

        // --- Open v6 peering backbone (the AS6939 analog): v6-only peer
        // links to a large fraction of v6-capable networks. This is what
        // makes v6 paths prefer it (peer > provider) even when the
        // geographically sensible transit path exists — the paper's
        // out-of-continent v6 routing effect. ---
        let candidates: Vec<AsId> = nodes
            .iter()
            .filter(|n| n.has_v6 && n.id != open_peering_backbone && n.tier != Tier::Tier1)
            .map(|n| n.id)
            .collect();
        for id in candidates {
            if rng.chance(cfg.open_v6_peering_fraction) {
                ensure_link(
                    &mut adj,
                    id,
                    open_peering_backbone,
                    Relation::Peer,
                    false,
                    true,
                );
            }
        }

        Topology {
            nodes,
            adj,
            open_peering_backbone,
            transit_backbone,
        }
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty (never, for generated topologies).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node by id.
    pub fn node(&self, id: AsId) -> &AsNode {
        &self.nodes[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[AsNode] {
        &self.nodes
    }

    /// Adjacency of `id`.
    pub fn links(&self, id: AsId) -> &[Link] {
        &self.adj[id.0 as usize]
    }

    /// ASes of a tier.
    pub fn by_tier(&self, tier: Tier) -> impl Iterator<Item = &AsNode> {
        self.nodes.iter().filter(move |n| n.tier == tier)
    }

    /// Stub ASes in `region` (where VPs/resolvers are placed).
    pub fn stubs_in(&self, region: Region) -> Vec<AsId> {
        self.nodes
            .iter()
            .filter(|n| n.tier == Tier::Stub && n.region == region)
            .map(|n| n.id)
            .collect()
    }

    /// Whether `a` and `b` are directly connected for `family`.
    pub fn connected(&self, a: AsId, b: AsId, family: Family) -> bool {
        self.links(a).iter().any(|l| l.to == b && l.carries(family))
    }

    /// Add an AS after generation (used by `rss` to host root sites at
    /// facilities whose operator AS is not part of the base graph).
    pub fn add_as(&mut self, name: String, tier: Tier, city: &'static City, has_v6: bool) -> AsId {
        let id = AsId(self.nodes.len() as u32);
        self.nodes.push(AsNode {
            id,
            name,
            tier,
            region: city.region,
            city,
            has_v6,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Add a (bidirectional) link after generation.
    pub fn add_link(&mut self, from: AsId, to: AsId, relation: Relation, v4: bool, v6: bool) {
        ensure_link(&mut self.adj, from, to, relation, v4, v6);
    }

    /// Take the direct link between `a` and `b` out of service (both
    /// directions, both families), returning its previous `(v4, v6)`
    /// carriage so the failure can be reverted with
    /// [`Topology::set_link_carriage`]. The entry stays in place — only its
    /// carriage flags change — so adjacency order (and thus downstream
    /// determinism) is untouched. `None` when the ASes are not adjacent.
    pub fn disable_link(&mut self, a: AsId, b: AsId) -> Option<(bool, bool)> {
        let prev = self.adj[a.0 as usize]
            .iter()
            .find(|l| l.to == b)
            .map(|l| (l.v4, l.v6))?;
        self.set_link_carriage(a, b, false, false);
        Some(prev)
    }

    /// Remove the direct link between `a` and `b` entirely (both
    /// directions); returns `false` when the ASes are not adjacent. The
    /// exact inverse of [`Topology::add_link`] on a previously non-adjacent
    /// pair. Unlike [`Topology::disable_link`] this does drop the entries,
    /// so it must only be used to undo links added after a snapshot —
    /// reverting a *pre-existing* link through remove+add would reorder
    /// adjacency and change downstream tie-breaks.
    pub fn remove_link(&mut self, a: AsId, b: AsId) -> bool {
        let before = self.adj[a.0 as usize].len();
        self.adj[a.0 as usize].retain(|l| l.to != b);
        self.adj[b.0 as usize].retain(|l| l.to != a);
        before != self.adj[a.0 as usize].len()
    }

    /// Capture the mutable state (nodes added so far + full adjacency) for
    /// a later bit-identical [`Topology::restore`].
    pub fn snapshot(&self) -> TopologySnapshot {
        TopologySnapshot {
            node_count: self.nodes.len(),
            adj: self.adj.clone(),
        }
    }

    /// Restore the graph to `snap`'s state: nodes added since the snapshot
    /// are dropped and the adjacency structure (entries *and order*) is
    /// brought back exactly. Panics if the snapshot holds more nodes than
    /// the topology — snapshots only travel forward.
    pub fn restore(&mut self, snap: &TopologySnapshot) {
        assert!(
            self.nodes.len() >= snap.node_count,
            "snapshot outlived its topology"
        );
        self.nodes.truncate(snap.node_count);
        self.adj.clone_from(&snap.adj);
    }

    /// Set the `(v4, v6)` carriage of an existing link in both directions;
    /// returns `false` when no such link exists.
    pub fn set_link_carriage(&mut self, a: AsId, b: AsId, v4: bool, v6: bool) -> bool {
        let mut touched = false;
        for (x, y) in [(a, b), (b, a)] {
            for l in self.adj[x.0 as usize].iter_mut().filter(|l| l.to == y) {
                l.v4 = v4;
                l.v6 = v6;
                touched = true;
            }
        }
        touched
    }
}

fn region_tag(r: Region) -> &'static str {
    match r {
        Region::Africa => "af",
        Region::Asia => "as",
        Region::Europe => "eu",
        Region::NorthAmerica => "na",
        Region::SouthAmerica => "sa",
        Region::Oceania => "oc",
    }
}

/// Insert the link both ways (relation reversed on the far side).
fn link(adj: &mut [Vec<Link>], from: AsId, to: AsId, relation: Relation, v4: bool, v6: bool) {
    adj[from.0 as usize].push(Link {
        to,
        relation,
        v4,
        v6,
    });
    adj[to.0 as usize].push(Link {
        to: from,
        relation: relation.reverse(),
        v4,
        v6,
    });
}

/// Like [`link`], but first removes any existing link between the pair so
/// post-generation adjustments replace rather than duplicate, then merges
/// family coverage.
fn ensure_link(
    adj: &mut [Vec<Link>],
    from: AsId,
    to: AsId,
    relation: Relation,
    v4: bool,
    v6: bool,
) {
    let existing = adj[from.0 as usize].iter().find(|l| l.to == to).copied();
    let (v4, v6) = match existing {
        Some(l) => (l.v4 || v4, l.v6 || v6),
        None => (v4, v6),
    };
    adj[from.0 as usize].retain(|l| l.to != to);
    adj[to.0 as usize].retain(|l| l.to != from);
    link(adj, from, to, relation, v4, v6);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::generate(&TopologyConfig::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = topo();
        let b = topo();
        assert_eq!(a.len(), b.len());
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(na.name, nb.name);
            assert_eq!(na.city.name, nb.city.name);
        }
        for id in 0..a.len() {
            let la = a.links(AsId(id as u32));
            let lb = b.links(AsId(id as u32));
            assert_eq!(la.len(), lb.len());
        }
    }

    #[test]
    fn expected_node_counts() {
        let cfg = TopologyConfig::default();
        let t = Topology::generate(&cfg);
        let expected =
            cfg.tier1_count + 6 * cfg.tier2_per_region + cfg.stubs_per_region.iter().sum::<usize>();
        assert_eq!(t.len(), expected);
    }

    #[test]
    fn disable_link_round_trips() {
        let mut t = topo();
        let a = AsId(0);
        let b = t.links(a)[0].to;
        let order_before: Vec<AsId> = t.links(a).iter().map(|l| l.to).collect();
        assert!(t.connected(a, b, Family::V4));
        let prev = t.disable_link(a, b).expect("adjacent");
        assert!(!t.connected(a, b, Family::V4));
        assert!(!t.connected(b, a, Family::V6));
        assert!(t.set_link_carriage(a, b, prev.0, prev.1));
        assert!(t.connected(a, b, Family::V4));
        // Adjacency order survives the failure/restore cycle.
        let order_after: Vec<AsId> = t.links(a).iter().map(|l| l.to).collect();
        assert_eq!(order_before, order_after);
        // Unrelated pairs are rejected.
        let far = t
            .nodes()
            .iter()
            .find(|n| !t.connected(a, n.id, Family::V4) && n.id != a);
        if let Some(n) = far {
            assert_eq!(t.disable_link(a, n.id), None);
        }
    }

    #[test]
    fn snapshot_restore_round_trips_all_mutations() {
        let mut t = topo();
        let snap = t.snapshot();
        assert!(snap.matches(&t));
        // Mutate in every public way: disable, recarriage, add AS + link.
        let a = AsId(0);
        let b = t.links(a)[0].to;
        t.disable_link(a, b).expect("adjacent");
        t.set_link_carriage(a, t.links(a)[1].to, false, true);
        let city = CityDb::by_name("tokyo").unwrap();
        let extra = t.add_as("extra".into(), Tier::Stub, city, true);
        t.add_link(extra, a, Relation::Provider, true, true);
        assert!(!snap.matches(&t));
        t.restore(&snap);
        assert!(snap.matches(&t));
        assert_eq!(t.len(), snap.node_count());
        assert!(t.connected(a, b, Family::V4));
    }

    #[test]
    fn remove_link_inverts_add_link() {
        let mut t = topo();
        let a = AsId(0);
        let far = t
            .nodes()
            .iter()
            .find(|n| n.id != a && t.links(a).iter().all(|l| l.to != n.id))
            .map(|n| n.id)
            .expect("some non-adjacent AS");
        let snap = t.snapshot();
        t.add_link(a, far, Relation::Peer, true, true);
        assert!(t.connected(a, far, Family::V4));
        assert!(t.remove_link(a, far));
        assert!(snap.matches(&t));
        // Removing again reports no-op.
        assert!(!t.remove_link(a, far));
    }

    #[test]
    fn links_are_symmetric_with_reversed_relation() {
        let t = topo();
        for node in t.nodes() {
            for l in t.links(node.id) {
                let back = t
                    .links(l.to)
                    .iter()
                    .find(|b| b.to == node.id)
                    .expect("reverse link exists");
                assert_eq!(back.relation, l.relation.reverse());
                assert_eq!((back.v4, back.v6), (l.v4, l.v6));
            }
        }
    }

    #[test]
    fn every_stub_has_a_provider() {
        let t = topo();
        for node in t.by_tier(Tier::Stub) {
            assert!(
                t.links(node.id)
                    .iter()
                    .any(|l| l.relation == Relation::Provider && l.v4),
                "{} has no v4 provider",
                node.name
            );
        }
    }

    #[test]
    fn v4_only_stubs_have_no_v6_links() {
        let t = topo();
        for node in t.by_tier(Tier::Stub) {
            if !node.has_v6 {
                assert!(
                    t.links(node.id).iter().all(|l| !l.v6),
                    "{} is v4-only but has v6 links",
                    node.name
                );
            }
        }
    }

    #[test]
    fn open_peering_backbone_has_many_v6_only_peers() {
        let t = topo();
        let v6_only_peers = t
            .links(t.open_peering_backbone)
            .iter()
            .filter(|l| l.v6 && !l.v4 && l.relation == Relation::Peer)
            .count();
        assert!(v6_only_peers > 50, "only {v6_only_peers} open v6 peers");
    }

    #[test]
    fn sa_tier2_use_transit_backbone_for_v4() {
        let t = topo();
        let sa_t2: Vec<&AsNode> = t
            .by_tier(Tier::Tier2)
            .filter(|n| n.region == Region::SouthAmerica)
            .collect();
        assert!(!sa_t2.is_empty());
        for n in sa_t2 {
            let l = t
                .links(n.id)
                .iter()
                .find(|l| l.to == t.transit_backbone)
                .expect("SA tier2 linked to transit backbone");
            assert!(l.v4);
        }
    }

    #[test]
    fn tier1_mesh_connected() {
        let t = topo();
        let t1: Vec<AsId> = t.by_tier(Tier::Tier1).map(|n| n.id).collect();
        for i in 0..t1.len() {
            for j in (i + 1)..t1.len() {
                assert!(t.connected(t1[i], t1[j], Family::V4));
            }
        }
    }

    #[test]
    fn stubs_exist_in_every_region() {
        let t = topo();
        for r in Region::ALL {
            assert!(!t.stubs_in(r).is_empty(), "no stubs in {r}");
        }
    }

    #[test]
    fn add_as_and_link_work() {
        let mut t = topo();
        let city = CityDb::by_name("frankfurt").unwrap();
        let id = t.add_as("rootop-b".into(), Tier::Stub, city, true);
        let t2 = t.stubs_in(Region::Europe)[0];
        t.add_link(id, t2, Relation::Peer, true, true);
        assert!(t.connected(id, t2, Family::V4));
        assert!(t.connected(t2, id, Family::V6));
    }
}
