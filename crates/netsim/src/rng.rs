//! Deterministic PRNG.
//!
//! SplitMix64: tiny, fast, passes BigCrush for this purpose, and — unlike a
//! global RNG — makes every simulation component independently seedable by
//! hashing a context string into a stream key. The same `(seed, context)`
//! always yields the same stream, which is what keeps whole-paper runs
//! reproducible bit-for-bit.

/// A SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Stream from a raw seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derive a sub-stream for `context` — e.g. `rng.derive("churn/b/v6")`.
    /// Different contexts give statistically independent streams.
    pub fn derive(&self, context: &str) -> SimRng {
        let mut h: u64 = self.state ^ 0x9e37_79b9_7f4a_7c15;
        for &b in context.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
            h ^= h >> 29;
        }
        SimRng { state: h }
    }

    /// Derive a sub-stream from an integer tuple — the allocation-free
    /// sibling of [`derive`](Self::derive) for hot paths that would
    /// otherwise `format!` a context string per call.
    ///
    /// Each id is absorbed with one SplitMix64-style finalization round
    /// (the same mix as [`next_u64`](Self::next_u64)), which avalanches
    /// every input bit across the state; a final round breaks the
    /// symmetry between "absorb" and "emit" so `derive_ids(&[a])` is not
    /// the stream one `next_u64` call into `SimRng::new(seed ^ a)`.
    /// Distinct tuples — including prefixes, since length is folded in —
    /// give statistically independent streams, and the same
    /// `(seed, ids)` always yields the same stream.
    pub fn derive_ids(&self, ids: &[u64]) -> SimRng {
        #[inline]
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut h = self.state ^ 0x9e37_79b9_7f4a_7c15;
        for &id in ids {
            h = mix(h.wrapping_add(id).wrapping_add(0x9e37_79b9_7f4a_7c15));
        }
        h = mix(h ^ ids.len() as u64);
        SimRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn next_range(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for simulation-sized n.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick an element of `slice`.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.next_range(slice.len())]
    }

    /// Standard normal via Box-Muller (single value; the pair's second half
    /// is discarded for simplicity).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_range(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_is_deterministic_and_contextual() {
        let root = SimRng::new(7);
        let mut a1 = root.derive("churn");
        let mut a2 = root.derive("churn");
        let mut b = root.derive("rtt");
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64());
        assert_ne!(x, b.next_u64());
    }

    #[test]
    fn derive_ids_is_deterministic_and_contextual() {
        let root = SimRng::new(7);
        let mut a1 = root.derive_ids(&[1, 2, 3]);
        let mut a2 = root.derive_ids(&[1, 2, 3]);
        let mut b = root.derive_ids(&[1, 2, 4]);
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64());
        assert_ne!(x, b.next_u64());
    }

    #[test]
    fn derive_ids_distinguishes_prefixes() {
        // Length is folded into the state, so a tuple and its extension
        // with a zero (or any) id land on different streams.
        let root = SimRng::new(7);
        let mut short = root.derive_ids(&[5, 9]);
        let mut long = root.derive_ids(&[5, 9, 0]);
        let mut empty = root.derive_ids(&[]);
        let a = short.next_u64();
        assert_ne!(a, long.next_u64());
        assert_ne!(a, empty.next_u64());
    }

    #[test]
    fn derive_ids_golden_stream() {
        // Pinned vector: any change to the mixing constants or absorb
        // order silently reshuffles every simulated measurement, so fail
        // loudly here instead.
        let mut rng = SimRng::new(0xD00F).derive_ids(&[1, 2, 3]);
        assert_eq!(rng.next_u64(), 0xa0e926995aead7bd);
        assert_eq!(rng.next_u64(), 0xf1101061edb7e4d0);
        assert_eq!(rng.next_u64(), 0xea67077bb500d46f);
        assert_eq!(rng.next_u64(), 0x28ab6ee567c96164);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_covers_domain() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.next_range(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::new(13);
        let n = 100_000;
        let vals: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
