//! Traceroute emulation.
//!
//! Expands a selected route into hop records the way the measurement VPs'
//! `mtr` runs did: one or more router hops per AS, ending with the facility
//! edge router (the *second-to-last* hop — shared across co-located sites)
//! and the anycast service address itself (the last hop).
//!
//! Real traceroutes miss hops (ICMP rate limiting, MPLS tunnels); the model
//! drops the edge-router hop with a configurable probability, which makes
//! the co-location analysis a *lower bound* exactly as §5 of the paper
//! notes.

use crate::anycast::FacilityTable;
use crate::rng::SimRng;
use crate::routing::CandidateRoute;
use crate::topology::Topology;
use crate::types::AsId;

/// One traceroute hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hop {
    /// A router inside `asn` (router id distinguishes parallel paths).
    Router { asn: AsId, router: u64 },
    /// The facility edge router just before the destination.
    FacilityEdge { router: u64 },
    /// The anycast destination answered.
    Destination,
    /// No reply at this TTL.
    Missing,
}

/// A completed traceroute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traceroute {
    pub hops: Vec<Hop>,
}

impl Traceroute {
    /// The second-to-last *answering* hop identity, if visible.
    ///
    /// This is the quantity §5's co-location analysis keys on: sites at the
    /// same facility share it. A missing hop yields `None`, which the
    /// analysis must treat as unique (lower-bounding reduced redundancy).
    pub fn second_to_last_hop(&self) -> Option<u64> {
        // Last hop should be Destination; the one before is the candidate.
        let n = self.hops.len();
        if n < 2 {
            return None;
        }
        match &self.hops[n - 2] {
            Hop::FacilityEdge { router } => Some(*router),
            Hop::Router { router, .. } => Some(*router),
            _ => None,
        }
    }

    /// Number of hops that answered.
    pub fn responsive_hops(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| !matches!(h, Hop::Missing))
            .count()
    }
}

/// Traceroute emulation parameters.
#[derive(Debug, Clone)]
pub struct TracerouteConfig {
    /// Probability that any given intermediate hop does not answer.
    pub missing_hop_prob: f64,
    /// Probability that the facility edge hop specifically is missing
    /// (tunnels/filtering right before the service address).
    pub missing_edge_prob: f64,
}

impl Default for TracerouteConfig {
    fn default() -> Self {
        TracerouteConfig {
            missing_hop_prob: 0.05,
            missing_edge_prob: 0.04,
        }
    }
}

/// Produce a traceroute along `route` to the site hosted at `facility`.
pub fn trace(
    topology: &Topology,
    facilities: &FacilityTable,
    route: &CandidateRoute,
    facility: crate::anycast::FacilityId,
    cfg: &TracerouteConfig,
    rng: &mut SimRng,
) -> Traceroute {
    let mut hops = Vec::new();
    // Client-side first: path is origin-first, so we walk it reversed.
    for asn in route.path.iter().rev() {
        // 1-2 routers per AS; router id derived from AS id for stability.
        let n_routers = 1 + (asn.0 as usize % 2);
        for r in 0..n_routers {
            if rng.chance(cfg.missing_hop_prob) {
                hops.push(Hop::Missing);
            } else {
                hops.push(Hop::Router {
                    asn: *asn,
                    router: ((asn.0 as u64) << 16) | r as u64,
                });
            }
        }
    }
    let _ = topology; // geometry handled by the RTT model; kept for parity
    let edge = facilities.get(facility).edge_router();
    if rng.chance(cfg.missing_edge_prob) {
        hops.push(Hop::Missing);
    } else {
        hops.push(Hop::FacilityEdge { router: edge });
    }
    hops.push(Hop::Destination);
    Traceroute { hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anycast::{FacilityId, FacilityTable};
    use crate::topology::{Topology, TopologyConfig};
    use crate::types::LearnedFrom;
    use netgeo::{CityDb, Region};

    fn setup() -> (Topology, FacilityTable, CandidateRoute) {
        let t = Topology::generate(&TopologyConfig::default());
        let mut f = FacilityTable::new();
        let host = t.stubs_in(Region::Europe)[0];
        f.add(CityDb::by_name("frankfurt").unwrap(), 0, host);
        let route = CandidateRoute {
            site: crate::anycast::SiteId(0),
            via: None,
            learned_from: LearnedFrom::Origin,
            path: vec![t.stubs_in(Region::Europe)[1], host],
            km: 0,
        };
        (t, f, route)
    }

    #[test]
    fn ends_with_destination() {
        let (t, f, route) = setup();
        let mut rng = SimRng::new(1);
        let tr = trace(
            &t,
            &f,
            &route,
            FacilityId(0),
            &TracerouteConfig::default(),
            &mut rng,
        );
        assert_eq!(tr.hops.last(), Some(&Hop::Destination));
    }

    #[test]
    fn second_to_last_is_facility_edge_when_visible() {
        let (t, f, route) = setup();
        let cfg = TracerouteConfig {
            missing_hop_prob: 0.0,
            missing_edge_prob: 0.0,
        };
        let mut rng = SimRng::new(2);
        let tr = trace(&t, &f, &route, FacilityId(0), &cfg, &mut rng);
        assert_eq!(
            tr.second_to_last_hop(),
            Some(f.get(FacilityId(0)).edge_router())
        );
    }

    #[test]
    fn shared_facility_shares_second_to_last() {
        // Two different "deployments" at the same facility yield the same
        // second-to-last hop — the §5 co-location signal.
        let (t, f, route) = setup();
        let cfg = TracerouteConfig {
            missing_hop_prob: 0.0,
            missing_edge_prob: 0.0,
        };
        let mut rng = SimRng::new(3);
        let a = trace(&t, &f, &route, FacilityId(0), &cfg, &mut rng);
        let b = trace(&t, &f, &route, FacilityId(0), &cfg, &mut rng);
        assert_eq!(a.second_to_last_hop(), b.second_to_last_hop());
    }

    #[test]
    fn missing_edge_hides_identity() {
        let (t, f, route) = setup();
        let cfg = TracerouteConfig {
            missing_hop_prob: 0.0,
            missing_edge_prob: 1.0,
        };
        let mut rng = SimRng::new(4);
        let tr = trace(&t, &f, &route, FacilityId(0), &cfg, &mut rng);
        assert_eq!(tr.second_to_last_hop(), None);
    }

    #[test]
    fn missing_hop_rate_roughly_respected() {
        let (t, f, route) = setup();
        let cfg = TracerouteConfig {
            missing_hop_prob: 0.5,
            missing_edge_prob: 0.0,
        };
        let mut rng = SimRng::new(5);
        let mut missing = 0;
        let mut total = 0;
        for _ in 0..2000 {
            let tr = trace(&t, &f, &route, FacilityId(0), &cfg, &mut rng);
            // Exclude edge + destination.
            for h in &tr.hops[..tr.hops.len() - 2] {
                total += 1;
                if matches!(h, Hop::Missing) {
                    missing += 1;
                }
            }
        }
        let rate = missing as f64 / total as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn deterministic_under_seed() {
        let (t, f, route) = setup();
        let cfg = TracerouteConfig::default();
        let mut r1 = SimRng::new(9);
        let mut r2 = SimRng::new(9);
        assert_eq!(
            trace(&t, &f, &route, FacilityId(0), &cfg, &mut r1),
            trace(&t, &f, &route, FacilityId(0), &cfg, &mut r2)
        );
    }
}
