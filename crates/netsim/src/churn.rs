//! Route churn: the process by which a client's selected anycast site
//! changes between measurement rounds.
//!
//! Real-world churn comes from BGP updates, tie-break flaps, and traffic
//! engineering. The model is a two-state Markov chain over the AS's
//! candidate list: in the *stable* state the previous selection is kept; a
//! flip re-selects among the candidates that are *near-equal* to the best
//! (same Gao-Rexford class, path length within one hop). The flip pressure
//! grows with the number of near-equal candidates — deployments whose sites
//! look alike from a client (like g.root's six similar sites in the paper)
//! flap more than deployments with one clearly-best path (b.root), which is
//! how Figure 3's per-letter differences emerge without hard-coding them.
//!
//! An ablation alternative (`FlipModel::Iid`) re-rolls independently each
//! round; `cargo bench -p bench --bench ablations` contrasts the tails.

use crate::anycast::SiteId;
use crate::rng::SimRng;
use crate::routing::RouteTable;
use crate::types::AsId;

/// Which stochastic process drives flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipModel {
    /// Two-state Markov chain (sticky selection) — the default.
    Markov,
    /// Independent re-selection each round (ablation).
    Iid,
}

/// Churn model parameters.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    /// Base per-round flip probability when ≥2 near-equal candidates exist.
    pub base_flip_prob: f64,
    /// Additional flip probability per extra near-equal candidate.
    pub per_candidate_prob: f64,
    /// Per-round probability that a path change *upstream* redirects the
    /// client to a different site it has no local alternative for —
    /// single-homed stubs still experience site changes this way, which is
    /// why even b.root's median VP saw 8 changes in the paper.
    pub upstream_flip_prob: f64,
    /// Candidates within this many extra AS hops of the best count as
    /// near-equal.
    pub near_equal_slack: usize,
    /// Stochastic process.
    pub model: FlipModel,
}

impl Default for ChurnModel {
    fn default() -> Self {
        // Calibrated against Figure 3's full-resolution medians: a VP with
        // two near-equal candidates flips ≈0.0008/round, i.e. ≈8 changes
        // over the paper's ~10k rounds (b.root's median); per-letter
        // multipliers (see `vantage::engine::churn_multiplier`) produce
        // g.root's 36 (v4) / 64 (v6).
        ChurnModel {
            base_flip_prob: 0.0004,
            per_candidate_prob: 0.0002,
            upstream_flip_prob: 0.0007,
            near_equal_slack: 1,
            model: FlipModel::Markov,
        }
    }
}

/// Per-(client, deployment, family) selection state across rounds.
#[derive(Debug, Clone)]
pub struct SelectionState {
    /// Index into the near-equal candidate set.
    current: usize,
    /// A persistent upstream redirection, if one is in effect.
    upstream_override: Option<SiteId>,
}

impl ChurnModel {
    /// The near-equal candidate indices for `asn` (indices into
    /// `table.candidates(asn)`).
    pub fn near_equal(&self, table: &RouteTable, asn: AsId) -> Vec<usize> {
        let cands = table.candidates(asn);
        let Some(best) = cands.first() else {
            return Vec::new();
        };
        cands
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.learned_from == best.learned_from
                    && c.path_len() <= best.path_len() + self.near_equal_slack
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Initial selection (the best route).
    pub fn initial(&self) -> SelectionState {
        SelectionState {
            current: 0,
            upstream_override: None,
        }
    }

    /// Advance one measurement round; returns the selected site, or `None`
    /// when the destination is unreachable for this AS/family.
    pub fn step(
        &self,
        table: &RouteTable,
        asn: AsId,
        state: &mut SelectionState,
        rng: &mut SimRng,
    ) -> Option<SiteId> {
        self.step_full(table, asn, state, rng, 1.0, &[])
    }

    /// [`ChurnModel::step`] with the flip pressure scaled by `multiplier`
    /// and an `upstream_pool` of sites an upstream path change can land
    /// the client on. Deployments differ in routing stability for reasons
    /// invisible to an AS-level model (the paper's g-vs-b finding, §4.2),
    /// so callers calibrate the multiplier per deployment.
    pub fn step_full(
        &self,
        table: &RouteTable,
        asn: AsId,
        state: &mut SelectionState,
        rng: &mut SimRng,
        multiplier: f64,
        upstream_pool: &[SiteId],
    ) -> Option<SiteId> {
        let near = self.near_equal(table, asn);
        if near.is_empty() {
            return None;
        }
        if state.current >= near.len() {
            state.current = 0;
        }
        match self.model {
            FlipModel::Markov => {
                // Upstream path change: redirect (or clear a redirect).
                if !upstream_pool.is_empty()
                    && rng.chance((self.upstream_flip_prob * multiplier).min(1.0))
                {
                    state.upstream_override =
                        if state.upstream_override.is_some() && rng.chance(0.5) {
                            // Half the upstream events restore the local best.
                            None
                        } else {
                            Some(*rng.pick(upstream_pool))
                        };
                }
                if near.len() > 1 {
                    let p = (self.base_flip_prob
                        + self.per_candidate_prob * (near.len() - 1) as f64)
                        * multiplier;
                    if rng.chance(p.min(1.0)) {
                        // Local flip: move to a different near-equal
                        // candidate and drop any upstream redirect.
                        let mut next = rng.next_range(near.len() - 1);
                        if next >= state.current {
                            next += 1;
                        }
                        state.current = next;
                        state.upstream_override = None;
                    }
                }
            }
            FlipModel::Iid => {
                state.current = rng.next_range(near.len());
            }
        }
        if let Some(site) = state.upstream_override {
            return Some(site);
        }
        let cand_idx = near[state.current];
        Some(table.candidates(asn)[cand_idx].site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anycast::{Deployment, FacilityId, Site, SiteScope};
    use crate::routing::propagate;
    use crate::topology::{Topology, TopologyConfig};
    use crate::types::Family;
    use netgeo::Region;

    fn world(n_sites: usize) -> (Topology, Deployment) {
        let t = Topology::generate(&TopologyConfig::default());
        let mut sites = Vec::new();
        let regions = [
            Region::Europe,
            Region::NorthAmerica,
            Region::Asia,
            Region::SouthAmerica,
            Region::Oceania,
            Region::Africa,
        ];
        for i in 0..n_sites {
            let region = regions[i % regions.len()];
            let host = t.stubs_in(region)[i / regions.len() + 1];
            sites.push(Site {
                id: SiteId(i as u32),
                facility: FacilityId(i as u32),
                scope: SiteScope::Global,
                origin_as: host,
                instance_stem: format!("s{i}"),
            });
        }
        (
            t,
            Deployment {
                name: "d".into(),
                sites,
            },
        )
    }

    #[test]
    fn stable_without_flips() {
        let (t, d) = world(4);
        let table = propagate(&t, &d, Family::V4);
        let model = ChurnModel {
            base_flip_prob: 0.0,
            per_candidate_prob: 0.0,
            ..Default::default()
        };
        let mut rng = SimRng::new(1);
        let asn = t.stubs_in(Region::Europe)[5];
        let mut state = model.initial();
        let first = model.step(&table, asn, &mut state, &mut rng);
        for _ in 0..100 {
            assert_eq!(model.step(&table, asn, &mut state, &mut rng), first);
        }
    }

    #[test]
    fn flips_happen_with_pressure() {
        let (t, d) = world(6);
        let table = propagate(&t, &d, Family::V4);
        let model = ChurnModel {
            base_flip_prob: 0.2,
            per_candidate_prob: 0.1,
            near_equal_slack: 3,
            ..Default::default()
        };
        let mut rng = SimRng::new(2);
        // Find an AS with multiple near-equal candidates.
        let asn = t
            .nodes()
            .iter()
            .map(|n| n.id)
            .find(|&a| model.near_equal(&table, a).len() >= 2)
            .expect("some AS has alternatives");
        let mut state = model.initial();
        let mut changes = 0;
        let mut prev = model.step(&table, asn, &mut state, &mut rng);
        for _ in 0..500 {
            let cur = model.step(&table, asn, &mut state, &mut rng);
            if cur != prev {
                changes += 1;
            }
            prev = cur;
        }
        assert!(changes > 10, "only {changes} changes");
    }

    #[test]
    fn iid_flips_more_than_markov() {
        let (t, d) = world(6);
        let table = propagate(&t, &d, Family::V4);
        let mk = |model| ChurnModel {
            base_flip_prob: 0.05,
            per_candidate_prob: 0.01,
            near_equal_slack: 3,
            model,
            ..Default::default()
        };
        let count_changes = |model: &ChurnModel, seed: u64| {
            let mut rng = SimRng::new(seed);
            let asn = t
                .nodes()
                .iter()
                .map(|n| n.id)
                .find(|&a| model.near_equal(&table, a).len() >= 3)
                .expect("alternatives exist");
            let mut state = model.initial();
            let mut changes = 0;
            let mut prev = model.step(&table, asn, &mut state, &mut rng);
            for _ in 0..1000 {
                let cur = model.step(&table, asn, &mut state, &mut rng);
                if cur != prev {
                    changes += 1;
                }
                prev = cur;
            }
            changes
        };
        let markov = count_changes(&mk(FlipModel::Markov), 3);
        let iid = count_changes(&mk(FlipModel::Iid), 3);
        assert!(iid > markov * 3, "iid {iid} vs markov {markov}");
    }

    #[test]
    fn unreachable_yields_none() {
        let (t, d) = world(2);
        let table = propagate(&t, &d, Family::V6);
        let model = ChurnModel::default();
        let mut rng = SimRng::new(4);
        let v4_only = t.nodes().iter().find(|n| !n.has_v6).unwrap().id;
        let mut state = model.initial();
        assert_eq!(model.step(&table, v4_only, &mut state, &mut rng), None);
    }

    #[test]
    fn near_equal_excludes_worse_class() {
        let (t, d) = world(3);
        let table = propagate(&t, &d, Family::V4);
        let model = ChurnModel {
            near_equal_slack: 100, // only class should constrain
            ..Default::default()
        };
        for node in t.nodes() {
            let near = model.near_equal(&table, node.id);
            let cands = table.candidates(node.id);
            if let Some(best) = cands.first() {
                for idx in near {
                    assert_eq!(cands[idx].learned_from, best.learned_from);
                }
            }
        }
    }
}
