//! Route churn: the process by which a client's selected anycast site
//! changes between measurement rounds.
//!
//! Real-world churn comes from BGP updates, tie-break flaps, and traffic
//! engineering. The model is a two-state Markov chain over the AS's
//! candidate list: in the *stable* state the previous selection is kept; a
//! flip re-selects among the candidates that are *near-equal* to the best
//! (same Gao-Rexford class, path length within one hop). The flip pressure
//! grows with the number of near-equal candidates — deployments whose sites
//! look alike from a client (like g.root's six similar sites in the paper)
//! flap more than deployments with one clearly-best path (b.root), which is
//! how Figure 3's per-letter differences emerge without hard-coding them.
//!
//! An ablation alternative (`FlipModel::Iid`) re-rolls independently each
//! round; `cargo bench -p bench --bench ablations` contrasts the tails.

use crate::anycast::SiteId;
use crate::rng::SimRng;
use crate::routing::RouteTable;
use crate::types::AsId;

/// Which stochastic process drives flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipModel {
    /// Two-state Markov chain (sticky selection) — the default.
    Markov,
    /// Independent re-selection each round (ablation).
    Iid,
}

/// Churn model parameters.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    /// Base per-round flip probability when ≥2 near-equal candidates exist.
    pub base_flip_prob: f64,
    /// Additional flip probability per extra near-equal candidate.
    pub per_candidate_prob: f64,
    /// Per-round probability that a path change *upstream* redirects the
    /// client to a different site it has no local alternative for —
    /// single-homed stubs still experience site changes this way, which is
    /// why even b.root's median VP saw 8 changes in the paper.
    pub upstream_flip_prob: f64,
    /// Candidates within this many extra AS hops of the best count as
    /// near-equal.
    pub near_equal_slack: usize,
    /// Stochastic process.
    pub model: FlipModel,
}

impl Default for ChurnModel {
    fn default() -> Self {
        // Calibrated against Figure 3's full-resolution medians: a VP with
        // two near-equal candidates flips ≈0.0008/round, i.e. ≈8 changes
        // over the paper's ~10k rounds (b.root's median); per-letter
        // multipliers (see `vantage::engine::churn_multiplier`) produce
        // g.root's 36 (v4) / 64 (v6).
        ChurnModel {
            base_flip_prob: 0.0004,
            per_candidate_prob: 0.0002,
            upstream_flip_prob: 0.0007,
            near_equal_slack: 1,
            model: FlipModel::Markov,
        }
    }
}

/// Per-(client, deployment, family) selection state across rounds.
#[derive(Debug, Clone)]
pub struct SelectionState {
    /// Index into the near-equal candidate set.
    current: usize,
    /// A persistent upstream redirection, if one is in effect.
    upstream_override: Option<SiteId>,
}

/// What a churn step did to a client's selection — the observable event
/// behind a site change, exposed so callers (the scenario engine, the
/// stability analyses) can see *why* a selection moved instead of
/// re-deriving it from opaque state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEventKind {
    /// A local tie-break flip to a different near-equal candidate.
    LocalFlip { from: SiteId, to: SiteId },
    /// An upstream path change redirected the client to `to`.
    UpstreamRedirect { to: SiteId },
    /// An upstream path change restored the locally-best selection.
    UpstreamRestore,
}

/// One entry of a per-round churn event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Round index the event happened in.
    pub round: u32,
    /// The AS whose selection changed.
    pub asn: AsId,
    pub kind: ChurnEventKind,
}

/// A deterministic per-round event log: which ASes flipped in which round
/// and how. Entries are sorted by `(round, asn)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnLog {
    pub events: Vec<ChurnEvent>,
}

impl ChurnLog {
    /// Distinct ASes affected by any logged event, ascending.
    pub fn affected_ases(&self) -> Vec<AsId> {
        let mut ases: Vec<AsId> = self.events.iter().map(|e| e.asn).collect();
        ases.sort_unstable_by_key(|a| a.0);
        ases.dedup();
        ases
    }

    /// Events of one round.
    pub fn in_round(&self, round: u32) -> impl Iterator<Item = &ChurnEvent> {
        self.events.iter().filter(move |e| e.round == round)
    }

    /// An order-sensitive fingerprint of the whole log (for golden tests).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for e in &self.events {
            mix(e.round as u64);
            mix(e.asn.0 as u64);
            match e.kind {
                ChurnEventKind::LocalFlip { from, to } => {
                    mix(1);
                    mix(from.0 as u64);
                    mix(to.0 as u64);
                }
                ChurnEventKind::UpstreamRedirect { to } => {
                    mix(2);
                    mix(to.0 as u64);
                }
                ChurnEventKind::UpstreamRestore => mix(3),
            }
        }
        h
    }
}

impl ChurnModel {
    /// The near-equal candidate indices for `asn` (indices into
    /// `table.candidates(asn)`).
    pub fn near_equal(&self, table: &RouteTable, asn: AsId) -> Vec<usize> {
        let cands = table.candidates(asn);
        let Some(best) = cands.first() else {
            return Vec::new();
        };
        cands
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.learned_from == best.learned_from
                    && c.path_len() <= best.path_len() + self.near_equal_slack
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Initial selection (the best route).
    pub fn initial(&self) -> SelectionState {
        SelectionState {
            current: 0,
            upstream_override: None,
        }
    }

    /// Drop any upstream redirect from `state`, keeping the local Markov
    /// position. Callers use this after the routing ground truth changed
    /// (a site withdrawal, a link failure): the redirect may point at a
    /// site that no longer attracts traffic, while the local selection
    /// index is re-validated against the new near-equal set on the next
    /// step anyway.
    pub fn reset_override(&self, state: &mut SelectionState) {
        state.upstream_override = None;
    }

    /// Advance one measurement round; returns the selected site, or `None`
    /// when the destination is unreachable for this AS/family.
    pub fn step(
        &self,
        table: &RouteTable,
        asn: AsId,
        state: &mut SelectionState,
        rng: &mut SimRng,
    ) -> Option<SiteId> {
        self.step_full(table, asn, state, rng, 1.0, &[])
    }

    /// [`ChurnModel::step`] with the flip pressure scaled by `multiplier`
    /// and an `upstream_pool` of sites an upstream path change can land
    /// the client on. Deployments differ in routing stability for reasons
    /// invisible to an AS-level model (the paper's g-vs-b finding, §4.2),
    /// so callers calibrate the multiplier per deployment.
    pub fn step_full(
        &self,
        table: &RouteTable,
        asn: AsId,
        state: &mut SelectionState,
        rng: &mut SimRng,
        multiplier: f64,
        upstream_pool: &[SiteId],
    ) -> Option<SiteId> {
        self.step_observed(table, asn, state, rng, multiplier, upstream_pool)
            .0
    }

    /// [`ChurnModel::step_full`] that also reports what happened: the event
    /// kind when this round changed the selection mechanism, `None` on a
    /// quiet round. Draws exactly the same random variates as `step_full`,
    /// so observed and unobserved runs stay bit-identical.
    pub fn step_observed(
        &self,
        table: &RouteTable,
        asn: AsId,
        state: &mut SelectionState,
        rng: &mut SimRng,
        multiplier: f64,
        upstream_pool: &[SiteId],
    ) -> (Option<SiteId>, Option<ChurnEventKind>) {
        let near = self.near_equal(table, asn);
        if near.is_empty() {
            return (None, None);
        }
        if state.current >= near.len() {
            state.current = 0;
        }
        let site_of = |idx: usize| table.candidates(asn)[near[idx]].site;
        let mut event = None;
        match self.model {
            FlipModel::Markov => {
                // Upstream path change: redirect (or clear a redirect).
                if !upstream_pool.is_empty()
                    && rng.chance((self.upstream_flip_prob * multiplier).min(1.0))
                {
                    state.upstream_override =
                        if state.upstream_override.is_some() && rng.chance(0.5) {
                            // Half the upstream events restore the local best.
                            event = Some(ChurnEventKind::UpstreamRestore);
                            None
                        } else {
                            let to = *rng.pick(upstream_pool);
                            event = Some(ChurnEventKind::UpstreamRedirect { to });
                            Some(to)
                        };
                }
                if near.len() > 1 {
                    let p = (self.base_flip_prob
                        + self.per_candidate_prob * (near.len() - 1) as f64)
                        * multiplier;
                    if rng.chance(p.min(1.0)) {
                        // Local flip: move to a different near-equal
                        // candidate and drop any upstream redirect.
                        let from = state
                            .upstream_override
                            .unwrap_or_else(|| site_of(state.current));
                        let mut next = rng.next_range(near.len() - 1);
                        if next >= state.current {
                            next += 1;
                        }
                        state.current = next;
                        state.upstream_override = None;
                        event = Some(ChurnEventKind::LocalFlip {
                            from,
                            to: site_of(next),
                        });
                    }
                }
            }
            FlipModel::Iid => {
                state.current = rng.next_range(near.len());
            }
        }
        if let Some(site) = state.upstream_override {
            return (Some(site), event);
        }
        (Some(site_of(state.current)), event)
    }

    /// Replay `rounds` churn rounds for every AS in `ases` against a fixed
    /// route table and return the deterministic per-round event log. Each
    /// AS gets its own rng stream derived from `root`, so the log depends
    /// only on (model parameters, table, ases, rounds, root seed) — the
    /// scenario engine composes with churn through this log rather than by
    /// mutating routes itself.
    pub fn round_log(
        &self,
        table: &RouteTable,
        ases: &[AsId],
        rounds: u32,
        root: &SimRng,
        multiplier: f64,
        upstream_pool: &[SiteId],
    ) -> ChurnLog {
        let mut log = ChurnLog::default();
        for &asn in ases {
            let mut rng = root.derive_ids(&[asn.0 as u64]);
            let mut state = self.initial();
            for round in 0..rounds {
                let (_, event) =
                    self.step_observed(table, asn, &mut state, &mut rng, multiplier, upstream_pool);
                if let Some(kind) = event {
                    log.events.push(ChurnEvent { round, asn, kind });
                }
            }
        }
        log.events.sort_by_key(|e| (e.round, e.asn.0));
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anycast::{Deployment, FacilityId, Site, SiteScope};
    use crate::routing::propagate;
    use crate::topology::{Topology, TopologyConfig};
    use crate::types::Family;
    use netgeo::Region;

    fn world(n_sites: usize) -> (Topology, Deployment) {
        let t = Topology::generate(&TopologyConfig::default());
        let mut sites = Vec::new();
        let regions = [
            Region::Europe,
            Region::NorthAmerica,
            Region::Asia,
            Region::SouthAmerica,
            Region::Oceania,
            Region::Africa,
        ];
        for i in 0..n_sites {
            let region = regions[i % regions.len()];
            let host = t.stubs_in(region)[i / regions.len() + 1];
            sites.push(Site {
                id: SiteId(i as u32),
                facility: FacilityId(i as u32),
                scope: SiteScope::Global,
                origin_as: host,
                instance_stem: format!("s{i}"),
            });
        }
        (
            t,
            Deployment {
                name: "d".into(),
                sites,
            },
        )
    }

    #[test]
    fn stable_without_flips() {
        let (t, d) = world(4);
        let table = propagate(&t, &d, Family::V4);
        let model = ChurnModel {
            base_flip_prob: 0.0,
            per_candidate_prob: 0.0,
            ..Default::default()
        };
        let mut rng = SimRng::new(1);
        let asn = t.stubs_in(Region::Europe)[5];
        let mut state = model.initial();
        let first = model.step(&table, asn, &mut state, &mut rng);
        for _ in 0..100 {
            assert_eq!(model.step(&table, asn, &mut state, &mut rng), first);
        }
    }

    #[test]
    fn flips_happen_with_pressure() {
        let (t, d) = world(6);
        let table = propagate(&t, &d, Family::V4);
        let model = ChurnModel {
            base_flip_prob: 0.2,
            per_candidate_prob: 0.1,
            near_equal_slack: 3,
            ..Default::default()
        };
        let mut rng = SimRng::new(2);
        // Find an AS with multiple near-equal candidates.
        let asn = t
            .nodes()
            .iter()
            .map(|n| n.id)
            .find(|&a| model.near_equal(&table, a).len() >= 2)
            .expect("some AS has alternatives");
        let mut state = model.initial();
        let mut changes = 0;
        let mut prev = model.step(&table, asn, &mut state, &mut rng);
        for _ in 0..500 {
            let cur = model.step(&table, asn, &mut state, &mut rng);
            if cur != prev {
                changes += 1;
            }
            prev = cur;
        }
        assert!(changes > 10, "only {changes} changes");
    }

    #[test]
    fn iid_flips_more_than_markov() {
        let (t, d) = world(6);
        let table = propagate(&t, &d, Family::V4);
        let mk = |model| ChurnModel {
            base_flip_prob: 0.05,
            per_candidate_prob: 0.01,
            near_equal_slack: 3,
            model,
            ..Default::default()
        };
        let count_changes = |model: &ChurnModel, seed: u64| {
            let mut rng = SimRng::new(seed);
            let asn = t
                .nodes()
                .iter()
                .map(|n| n.id)
                .find(|&a| model.near_equal(&table, a).len() >= 3)
                .expect("alternatives exist");
            let mut state = model.initial();
            let mut changes = 0;
            let mut prev = model.step(&table, asn, &mut state, &mut rng);
            for _ in 0..1000 {
                let cur = model.step(&table, asn, &mut state, &mut rng);
                if cur != prev {
                    changes += 1;
                }
                prev = cur;
            }
            changes
        };
        let markov = count_changes(&mk(FlipModel::Markov), 3);
        let iid = count_changes(&mk(FlipModel::Iid), 3);
        assert!(iid > markov * 3, "iid {iid} vs markov {markov}");
    }

    #[test]
    fn unreachable_yields_none() {
        let (t, d) = world(2);
        let table = propagate(&t, &d, Family::V6);
        let model = ChurnModel::default();
        let mut rng = SimRng::new(4);
        let v4_only = t.nodes().iter().find(|n| !n.has_v6).unwrap().id;
        let mut state = model.initial();
        assert_eq!(model.step(&table, v4_only, &mut state, &mut rng), None);
    }

    #[test]
    fn step_observed_matches_step_full() {
        let (t, d) = world(6);
        let table = propagate(&t, &d, Family::V4);
        let model = ChurnModel {
            base_flip_prob: 0.05,
            per_candidate_prob: 0.02,
            upstream_flip_prob: 0.05,
            near_equal_slack: 3,
            ..Default::default()
        };
        let pool = [SiteId(0), SiteId(3)];
        for &asn in &t.stubs_in(Region::Asia)[..6] {
            let mut rng_a = SimRng::new(77).derive_ids(&[asn.0 as u64]);
            let mut rng_b = rng_a.clone();
            let mut st_a = model.initial();
            let mut st_b = model.initial();
            for _ in 0..300 {
                let plain = model.step_full(&table, asn, &mut st_a, &mut rng_a, 1.0, &pool);
                let (observed, _) =
                    model.step_observed(&table, asn, &mut st_b, &mut rng_b, 1.0, &pool);
                assert_eq!(plain, observed);
            }
        }
    }

    #[test]
    fn round_log_events_explain_site_changes() {
        let (t, d) = world(6);
        let table = propagate(&t, &d, Family::V4);
        let model = ChurnModel {
            base_flip_prob: 0.05,
            per_candidate_prob: 0.02,
            upstream_flip_prob: 0.05,
            near_equal_slack: 3,
            ..Default::default()
        };
        let pool = [SiteId(0), SiteId(3)];
        let root = SimRng::new(0xC0FFEE).derive("churn-log");
        for &asn in &t.stubs_in(Region::Europe)[..4] {
            let mut rng = root.derive_ids(&[asn.0 as u64]);
            let mut state = model.initial();
            let mut prev = None;
            for round in 0..200u32 {
                let (site, event) =
                    model.step_observed(&table, asn, &mut state, &mut rng, 1.0, &pool);
                // A quiet round never changes the selected site.
                if event.is_none() && round > 0 {
                    assert_eq!(site, prev, "silent change for AS{} round {round}", asn.0);
                }
                prev = site;
            }
        }
    }

    #[test]
    fn round_log_golden() {
        // Pins the exact event stream for a fixed (world, model, seed):
        // the scenario engine composes with churn through this log, so its
        // contents are part of the public deterministic contract.
        let (t, d) = world(6);
        let table = propagate(&t, &d, Family::V4);
        let model = ChurnModel {
            base_flip_prob: 0.05,
            per_candidate_prob: 0.02,
            upstream_flip_prob: 0.05,
            near_equal_slack: 3,
            ..Default::default()
        };
        let ases: Vec<AsId> = t.stubs_in(Region::Europe)[..8].to_vec();
        let pool = [SiteId(0), SiteId(3)];
        let root = SimRng::new(0xC0FFEE).derive("churn-log");
        let log = model.round_log(&table, &ases, 200, &root, 1.0, &pool);

        // Deterministic replay.
        assert_eq!(log, model.round_log(&table, &ases, 200, &root, 1.0, &pool));
        // Sorted by (round, asn).
        for w in log.events.windows(2) {
            assert!((w[0].round, w[0].asn.0) <= (w[1].round, w[1].asn.0));
        }
        assert!(!log.events.is_empty());
        assert!(!log.affected_ases().is_empty());
        // Golden pin (update only on a deliberate model change).
        println!(
            "churn golden: len={} fp={:#x} first={:?}",
            log.events.len(),
            log.fingerprint(),
            log.events.first()
        );
        assert_eq!(log.events.len(), GOLDEN_LEN);
        assert_eq!(log.fingerprint(), GOLDEN_FP);
        assert_eq!(
            log.events[0],
            ChurnEvent {
                round: 2,
                asn: AsId(132),
                kind: ChurnEventKind::LocalFlip {
                    from: SiteId(2),
                    to: SiteId(0),
                },
            }
        );
    }

    // Pinned by `round_log_golden`.
    const GOLDEN_LEN: usize = 132;
    const GOLDEN_FP: u64 = 0x6eac_cf2f_8feb_5307;

    #[test]
    fn near_equal_excludes_worse_class() {
        let (t, d) = world(3);
        let table = propagate(&t, &d, Family::V4);
        let model = ChurnModel {
            near_equal_slack: 100, // only class should constrain
            ..Default::default()
        };
        for node in t.nodes() {
            let near = model.near_equal(&table, node.id);
            let cands = table.candidates(node.id);
            if let Some(best) = cands.first() {
                for idx in near {
                    assert_eq!(cands[idx].learned_from, best.learned_from);
                }
            }
        }
    }
}
