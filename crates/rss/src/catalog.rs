//! Root site catalog and world builder.
//!
//! [`SiteCounts`] encodes the per-region global/local site counts for every
//! letter, as reported by root-servers.org and reproduced in the paper's
//! Table 4 ("# Sites" rows). [`RootCatalog::build`] turns those counts into
//! concrete sites placed at shared colocation facilities — sharing is what
//! produces the §5 co-location signal — and registers hosting ASes and
//! anycast deployments into a `netsim` topology.

use crate::letters::{BRootPhase, RootLetter};
use netgeo::{City, CityDb, Region};
use netsim::anycast::{Deployment, FacilityId, FacilityTable, Site, SiteId, SiteScope};
use netsim::{AsId, Relation, SimRng, Tier, Topology};
use serde::{Deserialize, Serialize};

/// Global/local site counts for one letter in one region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCounts {
    pub global: u32,
    pub local: u32,
}

impl SiteCounts {
    /// Total sites.
    pub fn total(self) -> u32 {
        self.global + self.local
    }
}

/// Per-region ground truth for all letters, Table 4 order
/// (Africa, Asia, Europe, North America, South America, Oceania).
///
/// Row source: the paper's Table 4 "# Sites" data (global, local).
pub fn ground_truth(letter: RootLetter, region: Region) -> SiteCounts {
    use RootLetter::*;
    let (global, local) = match (letter, region) {
        (A, Region::Africa) => (0, 0),
        (A, Region::Asia) => (6, 2),
        (A, Region::Europe) => (12, 7),
        (A, Region::NorthAmerica) => (13, 14),
        (A, Region::SouthAmerica) => (0, 0),
        (A, Region::Oceania) => (2, 0),

        (B, Region::Africa) => (0, 0),
        (B, Region::Asia) => (1, 0),
        (B, Region::Europe) => (1, 0),
        (B, Region::NorthAmerica) => (3, 0),
        (B, Region::SouthAmerica) => (1, 0),
        (B, Region::Oceania) => (0, 0),

        (C, Region::Africa) => (0, 0),
        (C, Region::Asia) => (2, 0),
        (C, Region::Europe) => (4, 0),
        (C, Region::NorthAmerica) => (5, 0),
        (C, Region::SouthAmerica) => (1, 0),
        (C, Region::Oceania) => (0, 0),

        (D, Region::Africa) => (0, 42),
        (D, Region::Asia) => (2, 39),
        (D, Region::Europe) => (9, 39),
        (D, Region::NorthAmerica) => (12, 49),
        (D, Region::SouthAmerica) => (0, 12),
        (D, Region::Oceania) => (0, 5),

        (E, Region::Africa) => (0, 43),
        (E, Region::Asia) => (8, 34),
        (E, Region::Europe) => (33, 22),
        (E, Region::NorthAmerica) => (45, 30),
        (E, Region::SouthAmerica) => (5, 13),
        (E, Region::Oceania) => (6, 5),

        (F, Region::Africa) => (3, 25),
        (F, Region::Asia) => (13, 84),
        (F, Region::Europe) => (46, 26),
        (F, Region::NorthAmerica) => (54, 34),
        (F, Region::SouthAmerica) => (4, 40),
        (F, Region::Oceania) => (9, 7),

        (G, Region::Africa) => (0, 0),
        (G, Region::Asia) => (1, 0),
        (G, Region::Europe) => (2, 0),
        (G, Region::NorthAmerica) => (3, 0),
        (G, Region::SouthAmerica) => (0, 0),
        (G, Region::Oceania) => (0, 0),

        (H, Region::Africa) => (1, 0),
        (H, Region::Asia) => (3, 0),
        (H, Region::Europe) => (2, 0),
        (H, Region::NorthAmerica) => (4, 0),
        (H, Region::SouthAmerica) => (1, 0),
        (H, Region::Oceania) => (1, 0),

        (I, Region::Africa) => (3, 0),
        (I, Region::Asia) => (24, 0),
        (I, Region::Europe) => (25, 0),
        (I, Region::NorthAmerica) => (16, 0),
        (I, Region::SouthAmerica) => (10, 0),
        (I, Region::Oceania) => (3, 0),

        (J, Region::Africa) => (0, 8),
        (J, Region::Asia) => (16, 11),
        (J, Region::Europe) => (18, 34),
        (J, Region::NorthAmerica) => (20, 24),
        (J, Region::SouthAmerica) => (4, 6),
        (J, Region::Oceania) => (3, 2),

        (K, Region::Africa) => (2, 0),
        (K, Region::Asia) => (34, 9),
        (K, Region::Europe) => (44, 2),
        (K, Region::NorthAmerica) => (17, 0),
        (K, Region::SouthAmerica) => (6, 0),
        (K, Region::Oceania) => (2, 0),

        (L, Region::Africa) => (11, 0),
        (L, Region::Asia) => (25, 0),
        (L, Region::Europe) => (33, 0),
        (L, Region::NorthAmerica) => (22, 0),
        (L, Region::SouthAmerica) => (23, 0),
        (L, Region::Oceania) => (18, 0),

        (M, Region::Africa) => (0, 0),
        (M, Region::Asia) => (5, 7),
        (M, Region::Europe) => (1, 0),
        (M, Region::NorthAmerica) => (1, 0),
        (M, Region::SouthAmerica) => (0, 0),
        (M, Region::Oceania) => (0, 2),
    };
    SiteCounts { global, local }
}

/// Worldwide counts (sum over regions).
pub fn worldwide(letter: RootLetter) -> SiteCounts {
    let mut total = SiteCounts::default();
    for region in Region::ALL {
        let c = ground_truth(letter, region);
        total.global += c.global;
        total.local += c.local;
    }
    total
}

/// One concrete root site in the built world.
#[derive(Debug, Clone)]
pub struct RootSite {
    pub letter: RootLetter,
    pub site_id: SiteId,
    pub facility: FacilityId,
    pub scope: SiteScope,
    pub region: Region,
    /// City hosting the facility.
    pub city: &'static City,
    /// The instance identifier the site reports via `hostname.bind` /
    /// `id.server`. `None` models letters/instances that report nothing
    /// mappable (the paper's 135 unmapped identifiers).
    pub instance_id: Option<String>,
    /// The IATA code embedded in the node hostname — the paper's fallback
    /// for `{a,c,j,e}`.root (makes same-metro instances indistinguishable).
    pub iata: &'static str,
}

/// World-building parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Scale factor applied to all site counts (1.0 = paper's full RSS;
    /// smaller worlds run faster in tests).
    pub site_scale: f64,
    /// Maximum facilities per city; letters landing on the same facility
    /// are co-located.
    pub facilities_per_city: u8,
    /// Probability that a site is placed at its region's *hub IXP*
    /// facility. Root operators concentrate at the big exchanges — that is
    /// what produces clients seeing up to 12 letters behind one last hop
    /// (§5) while typical VPs see only a few.
    pub hub_probability: f64,
    /// Fraction of mappable instances that nonetheless report an identifier
    /// the catalog cannot map (the paper: 135/1604 unmapped).
    pub unmappable_fraction: f64,
    /// Seed for placement decisions.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            site_scale: 1.0,
            facilities_per_city: 14,
            hub_probability: 0.10,
            unmappable_fraction: 0.08,
            seed: DEFAULT_SEED,
        }
    }
}

/// The hub-IXP city per region (the region's dominant exchange).
fn hub_city(region: Region) -> &'static City {
    let name = match region {
        Region::Africa => "johannesburg",
        Region::Asia => "singapore",
        Region::Europe => "frankfurt",
        Region::NorthAmerica => "ashburn",
        Region::SouthAmerica => "saopaulo",
        Region::Oceania => "sydney",
    };
    CityDb::by_name(name).expect("hub city exists")
}

/// "2023-07-03", the measurement start, as a seed constant.
const DEFAULT_SEED: u64 = 0x2023_0703;

/// The built root server system.
#[derive(Debug, Clone)]
pub struct RootCatalog {
    /// All sites, all letters.
    pub sites: Vec<RootSite>,
    /// One deployment per letter (b.root's old and new addresses share the
    /// same physical deployment, as they did in reality).
    pub deployments: Vec<Deployment>,
    /// Shared facility table.
    pub facilities: FacilityTable,
}

impl RootCatalog {
    /// Build the catalog into `topology`, adding facility host ASes and
    /// registering anycast origins.
    pub fn build(topology: &mut Topology, cfg: &WorldConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed).derive("catalog");
        let mut facilities = FacilityTable::new();
        let mut facility_host: Vec<AsId> = Vec::new();
        let mut sites: Vec<RootSite> = Vec::new();
        let mut deployments: Vec<Deployment> = Vec::new();

        // Pre-create facility host ASes lazily, keyed by (city, index).
        let get_facility = |topology: &mut Topology,
                            facilities: &mut FacilityTable,
                            facility_host: &mut Vec<AsId>,
                            rng: &mut SimRng,
                            city: &'static City,
                            index: u8|
         -> FacilityId {
            if let Some(id) = facilities.find(city, index) {
                return id;
            }
            // The facility operator AS: a colo/IXP network homed in the
            // city, customer of two regional tier-2s, peering with several.
            let host = topology.add_as(
                format!("colo-{}-{}", city.iata, index),
                Tier::Tier2,
                city,
                true,
            );
            let regional: Vec<AsId> = topology
                .nodes()
                .iter()
                .filter(|n| n.tier == Tier::Tier2 && n.region == city.region && n.id != host)
                .map(|n| n.id)
                .collect();
            if !regional.is_empty() {
                let p1 = *rng.pick(&regional);
                topology.add_link(host, p1, Relation::Provider, true, true);
                let p2 = *rng.pick(&regional);
                if p2 != p1 {
                    topology.add_link(host, p2, Relation::Provider, true, true);
                }
                // IXP-style peering with a handful of regional networks.
                for _ in 0..4 {
                    let peer = *rng.pick(&regional);
                    if peer != p1 && peer != p2 {
                        topology.add_link(host, peer, Relation::Peer, true, true);
                    }
                }
            } else {
                // Degenerate tiny topology: hook to any tier-1.
                let t1 = topology
                    .nodes()
                    .iter()
                    .find(|n| n.tier == Tier::Tier1)
                    .map(|n| n.id)
                    .expect("topology has a tier-1");
                topology.add_link(host, t1, Relation::Provider, true, true);
            }
            let id = facilities.add(city, index, host);
            facility_host.push(host);
            id
        };

        for letter in RootLetter::ALL {
            let mut letter_sites: Vec<Site> = Vec::new();
            for region in Region::ALL {
                let counts = ground_truth(letter, region);
                let cities: Vec<&'static City> = CityDb::in_region(region).collect();
                let scaled = |n: u32| -> u32 {
                    if n == 0 {
                        0
                    } else {
                        ((n as f64 * cfg.site_scale).round() as u32).max(1)
                    }
                };
                for (scope, count) in [
                    (SiteScope::Global, scaled(counts.global)),
                    (SiteScope::Local, scaled(counts.local)),
                ] {
                    for k in 0..count {
                        // Placement: the regional hub IXP with probability
                        // `hub_probability` (all letters pile up there —
                        // the §5 co-location hot spots), otherwise a random
                        // city facility. The paper's two stale d.root sites
                        // (Tokyo and Leeds, Table 2) are pinned so the
                        // fault-injection windows always have a target.
                        let pinned = if letter == RootLetter::D && k == 0 {
                            match region {
                                Region::Asia => CityDb::by_name("tokyo"),
                                Region::Europe => CityDb::by_name("leeds"),
                                _ => None,
                            }
                        } else {
                            None
                        };
                        let (city, index) = if let Some(city) = pinned {
                            (city, 0u8)
                        } else if rng.chance(cfg.hub_probability) {
                            (hub_city(region), 0u8)
                        } else {
                            (
                                cities[rng.next_range(cities.len())],
                                biased_facility_index(rng.next_f64(), cfg.facilities_per_city),
                            )
                        };
                        let fac = get_facility(
                            topology,
                            &mut facilities,
                            &mut facility_host,
                            &mut rng,
                            city,
                            index,
                        );
                        let host_as = facilities.get(fac).host_as;
                        let site_id = SiteId(letter_sites.len() as u32);
                        let stem = format!("{}{}{}", city.iata, index + 1, letter.ch());
                        // The operator announces from its own AS at the
                        // facility: customer of the colo fabric plus 1-2
                        // independently chosen regional transits. Different
                        // letters at the same facility thus have distinct
                        // upstreams and decorrelated catchments — what
                        // keeps co-location prevalent-but-partial (§5)
                        // instead of total.
                        let origin_as = topology.add_as(
                            format!("op-{}-{}", letter.ch(), stem),
                            Tier::Stub,
                            city,
                            true,
                        );
                        topology.add_link(origin_as, host_as, Relation::Provider, true, true);
                        let regional: Vec<AsId> = topology
                            .nodes()
                            .iter()
                            .filter(|n| {
                                n.tier == Tier::Tier2 && n.region == city.region && n.id != host_as
                            })
                            .map(|n| n.id)
                            .collect();
                        if !regional.is_empty() {
                            let extra = 1 + rng.next_range(2);
                            for _ in 0..extra {
                                let p = *rng.pick(&regional);
                                topology.add_link(origin_as, p, Relation::Provider, true, true);
                            }
                        }
                        letter_sites.push(Site {
                            id: site_id,
                            facility: fac,
                            scope,
                            origin_as,
                            instance_stem: stem.clone(),
                        });
                        // Mappable letters publish an identifier for most
                        // sites; a small fraction stays unmappable (part of
                        // the paper's 135 unmapped identifiers).
                        let instance_id = if letter.identifiers_mappable()
                            && !rng.chance(cfg.unmappable_fraction * 0.4)
                        {
                            Some(instance_identifier(letter, city.iata, index, k))
                        } else {
                            None
                        };
                        sites.push(RootSite {
                            letter,
                            site_id,
                            facility: fac,
                            scope,
                            region,
                            city,
                            instance_id,
                            iata: city.iata,
                        });
                    }
                }
            }
            deployments.push(Deployment {
                name: letter.host_name(),
                sites: letter_sites,
            });
        }

        RootCatalog {
            sites,
            deployments,
            facilities,
        }
    }

    /// The deployment for `letter`.
    pub fn deployment(&self, letter: RootLetter) -> &Deployment {
        &self.deployments[letter.index()]
    }

    /// Catalog rows for `letter`.
    pub fn sites_of(&self, letter: RootLetter) -> impl Iterator<Item = &RootSite> {
        self.sites.iter().filter(move |s| s.letter == letter)
    }

    /// Look up the catalog row for a (letter, site) pair.
    pub fn site(&self, letter: RootLetter, site: SiteId) -> &RootSite {
        self.sites
            .iter()
            .find(|s| s.letter == letter && s.site_id == site)
            .expect("site exists in catalog")
    }

    /// Try to map an observed identifier (a `hostname.bind` answer) back to
    /// a site of `letter` — the §4.2 coverage-matching step. For letters
    /// without mappable identifiers, falls back to the IATA code, returning
    /// the *first* site in that metro (indistinguishability, as the paper
    /// notes).
    pub fn map_identifier(&self, letter: RootLetter, observed: &str) -> Option<&RootSite> {
        // Exact identifier match first.
        if let Some(site) = self
            .sites
            .iter()
            .find(|s| s.letter == letter && s.instance_id.as_deref() == Some(observed))
        {
            return Some(site);
        }
        // IATA fallback: find a 3-letter city code inside the identifier.
        let lowered = observed.to_ascii_lowercase();
        self.sites
            .iter()
            .filter(|s| s.letter == letter)
            .find(|s| lowered.contains(s.iata))
    }

    /// The b.root service address phase is a property of time, not of the
    /// deployment — physical sites stayed put across the renumbering.
    pub fn b_root_phase_at(&self, now: u32) -> BRootPhase {
        crate::letters::Renumbering::B_ROOT.phase_at(now)
    }
}

/// Skew facility choice toward index 0 (the bigger colo in town).
fn biased_facility_index(u: f64, max: u8) -> u8 {
    // P(0) ≈ 0.3, remainder split over the rest.
    if u < 0.3 || max <= 1 {
        0
    } else {
        1 + ((u - 0.3) / 0.7 * (max as f64 - 1.0)) as u8
    }
}

/// Per-operator identifier conventions (shapes modelled on public reality).
fn instance_identifier(letter: RootLetter, iata: &str, fac_index: u8, k: u32) -> String {
    match letter {
        RootLetter::B => format!("b{}-{}", fac_index + 1, iata),
        RootLetter::D => format!("{}{}.droot.maxgigapop.net", iata, k + 1),
        RootLetter::F => format!(
            "{}{}{}.f.root-servers.org",
            iata,
            fac_index + 1,
            (b'a' + (k % 3) as u8) as char
        ),
        RootLetter::G => format!("grootns-{}{}", iata, fac_index + 1),
        RootLetter::H => format!("{:03}.{}.h.root-servers.org", k + 1, iata),
        RootLetter::I => format!("s1.{}{}", iata, k + 1),
        RootLetter::K => format!("ns{}.{}.k.ripe.net", k + 1, iata),
        RootLetter::L => format!("{}{}.l.root-servers.org", iata, fac_index as u32 + k + 1),
        RootLetter::M => format!("m-{}{}", iata, k + 1),
        // {a,c,j,e} never reach here (not mappable).
        _ => format!("{}-{}{}", letter.ch(), iata, k + 1),
    }
}

/// The default seed constant is referenced by `WorldConfig::default`; the
/// odd literal above documents intent ("roots 2023-07-01").
pub const WORLD_SEED: u64 = DEFAULT_SEED;

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TopologyConfig;

    fn built() -> (Topology, RootCatalog) {
        let mut t = Topology::generate(&TopologyConfig::default());
        let cat = RootCatalog::build(
            &mut t,
            &WorldConfig {
                site_scale: 1.0,
                ..Default::default()
            },
        );
        (t, cat)
    }

    #[test]
    fn ground_truth_matches_table1_scale() {
        // Worldwide sums must be near the paper's Table 1 (exact for the
        // letters whose Table 4 rows are unambiguous).
        assert_eq!(worldwide(RootLetter::B).total(), 6);
        assert_eq!(worldwide(RootLetter::C).total(), 12);
        assert_eq!(worldwide(RootLetter::G).total(), 6);
        assert_eq!(worldwide(RootLetter::H).total(), 12);
        assert_eq!(worldwide(RootLetter::I).total(), 81);
        assert_eq!(worldwide(RootLetter::L).total(), 132);
        assert_eq!(worldwide(RootLetter::F).global, 129);
        assert_eq!(worldwide(RootLetter::F).local, 216);
        assert_eq!(worldwide(RootLetter::K).global, 105);
        assert_eq!(worldwide(RootLetter::K).local, 11);
        assert_eq!(worldwide(RootLetter::M).local, 9);
    }

    #[test]
    fn no_local_site_letters() {
        for l in [
            RootLetter::B,
            RootLetter::C,
            RootLetter::G,
            RootLetter::H,
            RootLetter::I,
            RootLetter::L,
        ] {
            assert_eq!(worldwide(l).local, 0, "{l}");
        }
    }

    #[test]
    fn build_produces_all_letters() {
        let (_, cat) = built();
        assert_eq!(cat.deployments.len(), 13);
        for l in RootLetter::ALL {
            let expected = worldwide(l).total() as usize;
            assert_eq!(cat.deployment(l).sites.len(), expected, "{l}");
            assert_eq!(cat.sites_of(l).count(), expected);
        }
    }

    #[test]
    fn facilities_are_shared_across_letters() {
        let (_, cat) = built();
        // Count letters per facility; some facility must host many.
        let mut per_fac: std::collections::HashMap<
            FacilityId,
            std::collections::HashSet<RootLetter>,
        > = std::collections::HashMap::new();
        for s in &cat.sites {
            per_fac.entry(s.facility).or_default().insert(s.letter);
        }
        let max_letters = per_fac.values().map(|s| s.len()).max().unwrap();
        assert!(max_letters >= 5, "max co-located letters: {max_letters}");
    }

    #[test]
    fn m_root_is_asia_pacific_focused() {
        let (_, cat) = built();
        let m_sites: Vec<&RootSite> = cat.sites_of(RootLetter::M).collect();
        let apac = m_sites
            .iter()
            .filter(|s| matches!(s.region, Region::Asia | Region::Oceania))
            .count();
        // Paper: only 2 sites outside Asia-Pacific.
        assert_eq!(m_sites.len() - apac, 2);
    }

    #[test]
    fn identifier_mapping_round_trips() {
        let (_, cat) = built();
        let mut mapped = 0;
        let mut total = 0;
        for s in &cat.sites {
            total += 1;
            if let Some(id) = &s.instance_id {
                let hit = cat.map_identifier(s.letter, id).expect("maps");
                assert_eq!(hit.letter, s.letter);
                mapped += 1;
            }
        }
        // Most identifiers map; some are unmappable (the paper: 135/1604).
        assert!(mapped as f64 / total as f64 > 0.5);
    }

    #[test]
    fn iata_fallback_maps_unmappable_letters() {
        let (_, cat) = built();
        let a_site = cat.sites_of(RootLetter::A).next().unwrap();
        let observed = format!("rootns-{}2", a_site.iata);
        let hit = cat
            .map_identifier(RootLetter::A, &observed)
            .expect("IATA fallback");
        assert_eq!(hit.iata, a_site.iata);
    }

    #[test]
    fn scaled_world_is_smaller() {
        let mut t = Topology::generate(&TopologyConfig::default());
        let cat = RootCatalog::build(
            &mut t,
            &WorldConfig {
                site_scale: 0.25,
                ..Default::default()
            },
        );
        let f_total = cat.deployment(RootLetter::F).sites.len();
        assert!(f_total < 120, "scaled f.root has {f_total} sites");
        // Every letter retains at least its regional presence.
        assert!(cat.deployment(RootLetter::B).sites.len() >= 4);
    }

    #[test]
    fn b_phase_flips_at_change_date() {
        let (_, cat) = built();
        assert_eq!(
            cat.b_root_phase_at(crate::letters::B_ROOT_CHANGE_DATE - 1),
            BRootPhase::Old
        );
        assert_eq!(
            cat.b_root_phase_at(crate::letters::B_ROOT_CHANGE_DATE),
            BRootPhase::New
        );
    }

    #[test]
    fn deterministic_build() {
        let (_, a) = built();
        let (_, b) = built();
        assert_eq!(a.sites.len(), b.sites.len());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.city.name, y.city.name);
            assert_eq!(x.instance_id, y.instance_id);
            assert_eq!(x.facility, y.facility);
        }
    }
}
