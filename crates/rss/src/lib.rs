//! The root server system (RSS) model.
//!
//! Encodes the 13 root server letters with their deployment shapes from the
//! paper's ground truth (root-servers.org as captured in Tables 1/4): site
//! counts per region with the global/local split, the real service
//! addresses (including both old and new b.root), per-operator instance
//! naming conventions (`hostname.bind` / `id.server` formats, including the
//! letters that only expose IATA metro codes), and the server behaviour
//! that answers the measurement script's 47-query set.
//!
//! * [`letters`] — the letters, operators, service IPs, renumbering event;
//! * [`catalog`] — per-region site counts and the world builder that places
//!   sites at shared facilities (driving §5 co-location) and registers
//!   origin/host ASes into the `netsim` topology;
//! * [`server`] — query answering: A/AAAA/TXT/NS, CHAOS identity, SOA,
//!   ZONEMD, AXFR, with per-site zone freshness (stale-site fault).

pub mod catalog;
pub mod letters;
pub mod server;

pub use catalog::{RootCatalog, RootSite, SiteCounts, WorldConfig};
pub use letters::{BRootPhase, Renumbering, RootLetter, B_ROOT_CHANGE_DATE};
pub use server::{RootServer, ServerBehavior};
