//! The 13 root server letters: identities, operators, service addresses,
//! and the b.root renumbering event.

use serde::{Deserialize, Serialize};
use std::net::{Ipv4Addr, Ipv6Addr};

/// A root server letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RootLetter {
    A,
    B,
    C,
    D,
    E,
    F,
    G,
    H,
    I,
    J,
    K,
    L,
    M,
}

/// Unix timestamp of the b.root IP change (2023-11-27, per the paper's
/// Figure 2 timeline).
pub const B_ROOT_CHANGE_DATE: u32 = 1_701_043_200;

/// Which address generation of b.root a flow/measurement targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BRootPhase {
    /// The pre-change addresses (199.9.14.201 / 2001:500:200::b).
    Old,
    /// The post-change addresses (170.247.170.2 / 2801:1b8:10::b).
    New,
}

/// A service-prefix renumbering of one letter: old addresses are retired
/// in favour of new ones at `change_date`. Generalizes the 2023 b.root
/// event ([`Renumbering::B_ROOT`]) so the scenario engine can renumber any
/// letter on any date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Renumbering {
    pub letter: RootLetter,
    /// Day-start timestamp the new addresses take over.
    pub change_date: u32,
}

impl Renumbering {
    /// The historical b.root renumbering of 2023-11-27.
    pub const B_ROOT: Renumbering = Renumbering {
        letter: RootLetter::B,
        change_date: B_ROOT_CHANGE_DATE,
    };

    /// Which address generation is authoritative at `now`.
    pub fn phase_at(&self, now: u32) -> BRootPhase {
        if now >= self.change_date {
            BRootPhase::New
        } else {
            BRootPhase::Old
        }
    }
}

impl RootLetter {
    /// All letters, a–m.
    pub const ALL: [RootLetter; 13] = [
        RootLetter::A,
        RootLetter::B,
        RootLetter::C,
        RootLetter::D,
        RootLetter::E,
        RootLetter::F,
        RootLetter::G,
        RootLetter::H,
        RootLetter::I,
        RootLetter::J,
        RootLetter::K,
        RootLetter::L,
        RootLetter::M,
    ];

    /// Lowercase letter character.
    pub fn ch(self) -> char {
        (b'a' + self.index() as u8) as char
    }

    /// Stable index 0..13.
    pub fn index(self) -> usize {
        self as usize
    }

    /// From an index.
    pub fn from_index(i: usize) -> Option<RootLetter> {
        RootLetter::ALL.get(i).copied()
    }

    /// `X.root-servers.net.` host name.
    pub fn host_name(self) -> String {
        format!("{}.root-servers.net.", self.ch())
    }

    /// Operator short name (public fact, as listed on root-servers.org).
    pub fn operator(self) -> &'static str {
        match self {
            RootLetter::A => "Verisign",
            RootLetter::B => "USC-ISI",
            RootLetter::C => "Cogent",
            RootLetter::D => "UMD",
            RootLetter::E => "NASA",
            RootLetter::F => "ISC",
            RootLetter::G => "DISA",
            RootLetter::H => "ARL",
            RootLetter::I => "Netnod",
            RootLetter::J => "Verisign",
            RootLetter::K => "RIPE NCC",
            RootLetter::L => "ICANN",
            RootLetter::M => "WIDE",
        }
    }

    /// IPv4 service address. For b.root this is phase-dependent.
    pub fn ipv4(self, b_phase: BRootPhase) -> Ipv4Addr {
        match self {
            RootLetter::A => Ipv4Addr::new(198, 41, 0, 4),
            RootLetter::B => match b_phase {
                BRootPhase::Old => Ipv4Addr::new(199, 9, 14, 201),
                BRootPhase::New => Ipv4Addr::new(170, 247, 170, 2),
            },
            RootLetter::C => Ipv4Addr::new(192, 33, 4, 12),
            RootLetter::D => Ipv4Addr::new(199, 7, 91, 13),
            RootLetter::E => Ipv4Addr::new(192, 203, 230, 10),
            RootLetter::F => Ipv4Addr::new(192, 5, 5, 241),
            RootLetter::G => Ipv4Addr::new(192, 112, 36, 4),
            RootLetter::H => Ipv4Addr::new(198, 97, 190, 53),
            RootLetter::I => Ipv4Addr::new(192, 36, 148, 17),
            RootLetter::J => Ipv4Addr::new(192, 58, 128, 30),
            RootLetter::K => Ipv4Addr::new(193, 0, 14, 129),
            RootLetter::L => Ipv4Addr::new(199, 7, 83, 42),
            RootLetter::M => Ipv4Addr::new(202, 12, 27, 33),
        }
    }

    /// IPv6 service address. For b.root this is phase-dependent.
    pub fn ipv6(self, b_phase: BRootPhase) -> Ipv6Addr {
        match self {
            RootLetter::A => "2001:503:ba3e::2:30".parse().unwrap(),
            RootLetter::B => match b_phase {
                BRootPhase::Old => "2001:500:200::b".parse().unwrap(),
                BRootPhase::New => "2801:1b8:10::b".parse().unwrap(),
            },
            RootLetter::C => "2001:500:2::c".parse().unwrap(),
            RootLetter::D => "2001:500:2d::d".parse().unwrap(),
            RootLetter::E => "2001:500:a8::e".parse().unwrap(),
            RootLetter::F => "2001:500:2f::f".parse().unwrap(),
            RootLetter::G => "2001:500:12::d0d".parse().unwrap(),
            RootLetter::H => "2001:500:1::53".parse().unwrap(),
            RootLetter::I => "2001:7fe::53".parse().unwrap(),
            RootLetter::J => "2001:503:c27::2:30".parse().unwrap(),
            RootLetter::K => "2001:7fd::1".parse().unwrap(),
            RootLetter::L => "2001:500:9f::42".parse().unwrap(),
            RootLetter::M => "2001:dc3::35".parse().unwrap(),
        }
    }

    /// Whether this letter publishes instance identifiers that map to sites.
    /// `{a,c,j,e}` either report none or unmappable ones; the paper falls
    /// back to the IATA codes in hostnames for these, making same-metro
    /// nodes indistinguishable (§4.2 footnote 2).
    pub fn identifiers_mappable(self) -> bool {
        !matches!(
            self,
            RootLetter::A | RootLetter::C | RootLetter::J | RootLetter::E
        )
    }

    /// Display label as used in the paper's figures (`b.root (new)` handled
    /// by callers that track phases).
    pub fn label(self) -> String {
        format!("{}.root", self.ch())
    }
}

impl std::fmt::Display for RootLetter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.root", self.ch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_letters() {
        assert_eq!(RootLetter::ALL.len(), 13);
        for (i, l) in RootLetter::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(RootLetter::from_index(i), Some(*l));
        }
        assert_eq!(RootLetter::from_index(13), None);
    }

    #[test]
    fn host_names() {
        assert_eq!(RootLetter::B.host_name(), "b.root-servers.net.");
        assert_eq!(RootLetter::M.host_name(), "m.root-servers.net.");
    }

    #[test]
    fn b_root_addresses_change_with_phase() {
        assert_ne!(
            RootLetter::B.ipv4(BRootPhase::Old),
            RootLetter::B.ipv4(BRootPhase::New)
        );
        assert_ne!(
            RootLetter::B.ipv6(BRootPhase::Old),
            RootLetter::B.ipv6(BRootPhase::New)
        );
        // Other letters are phase-invariant.
        for l in RootLetter::ALL {
            if l != RootLetter::B {
                assert_eq!(l.ipv4(BRootPhase::Old), l.ipv4(BRootPhase::New));
                assert_eq!(l.ipv6(BRootPhase::Old), l.ipv6(BRootPhase::New));
            }
        }
    }

    #[test]
    fn all_addresses_unique() {
        let mut v4 = std::collections::HashSet::new();
        let mut v6 = std::collections::HashSet::new();
        for l in RootLetter::ALL {
            assert!(v4.insert(l.ipv4(BRootPhase::Old)));
            assert!(v6.insert(l.ipv6(BRootPhase::Old)));
        }
        assert!(v4.insert(RootLetter::B.ipv4(BRootPhase::New)));
        assert!(v6.insert(RootLetter::B.ipv6(BRootPhase::New)));
    }

    #[test]
    fn unmappable_letters_match_paper() {
        for l in [RootLetter::A, RootLetter::C, RootLetter::J, RootLetter::E] {
            assert!(!l.identifiers_mappable());
        }
        for l in [RootLetter::B, RootLetter::F, RootLetter::K] {
            assert!(l.identifiers_mappable());
        }
    }

    #[test]
    fn change_date_is_2023_11_27() {
        assert_eq!(
            dns_crypto::validity::timestamp_from_ymd("20231127000000"),
            Some(B_ROOT_CHANGE_DATE)
        );
    }
}
