//! Root server behaviour: answering the measurement script's query set.
//!
//! Each *site instance* of a letter answers, per the Appendix F script:
//!
//! * `A`/`AAAA`/`TXT` for every `X.root-servers.net.` name;
//! * `NS .` and `NS root-servers.net.`;
//! * `SOA .` and `ZONEMD .` (with DNSSEC);
//! * `CH TXT` identity queries (`hostname.bind`, `id.server`,
//!   `version.bind`, `version.server`);
//! * full `AXFR .`.
//!
//! A site serves whatever zone copy it currently holds — a *stale* site
//! (the paper's Tokyo/Leeds d.root finding) keeps serving an old copy whose
//! signatures eventually expire.

use crate::letters::{BRootPhase, RootLetter};
use dns_wire::rdata::Rdata;
use dns_wire::{Class, Message, Name, Question, Rcode, Record, RrType};
use dns_zone::axfr::{serve_axfr, AxfrError, DEFAULT_BATCH};
use dns_zone::Zone;
use std::sync::Arc;

/// Behaviour knobs for one site instance.
#[derive(Debug, Clone, Default)]
pub struct ServerBehavior {
    /// If set, the instance serves this (old) zone instead of the current
    /// one — the stale-zone fault.
    pub stale_zone: Option<Arc<Zone>>,
    /// Software banner reported for `version.bind` / `version.server`.
    pub version_banner: Option<String>,
}

/// One answering instance: a letter at a site, holding a zone copy.
#[derive(Debug, Clone)]
pub struct RootServer {
    pub letter: RootLetter,
    /// `hostname.bind` answer for this instance (`None` → REFUSED, like
    /// operators that disable identity queries).
    pub identity: Option<String>,
    /// The zone the instance would serve if fresh.
    pub zone: Arc<Zone>,
    pub behavior: ServerBehavior,
}

impl RootServer {
    /// The zone this instance actually serves (stale copy wins).
    pub fn served_zone(&self) -> &Arc<Zone> {
        self.behavior.stale_zone.as_ref().unwrap_or(&self.zone)
    }

    /// Answer one query message.
    ///
    /// If the query carries an EDNS NSID request (RFC 5001), the response's
    /// OPT record echoes this instance's identity — the third identity
    /// channel root operators expose besides `hostname.bind`/`id.server`.
    pub fn answer(&self, query: &Message, b_phase: BRootPhase) -> Message {
        let Some(q) = query.questions.first() else {
            return Message::response_to(query, Rcode::FormErr, Vec::new());
        };
        let mut response = match q.class {
            Class::Ch => self.answer_chaos(query, q),
            Class::In => self.answer_in(query, q, b_phase),
            _ => Message::response_to(query, Rcode::Refused, Vec::new()),
        };
        if let Some(edns) = dns_wire::edns::edns_of(query) {
            let mut reply_edns = dns_wire::edns::Edns {
                udp_payload_size: 4096,
                dnssec_ok: edns.dnssec_ok,
                ..Default::default()
            };
            if edns.nsid_requested() {
                if let Some(identity) = &self.identity {
                    reply_edns = reply_edns.with_nsid(identity.as_bytes());
                }
            }
            dns_wire::edns::set_edns(&mut response, &reply_edns);
        }
        response
    }

    fn answer_chaos(&self, query: &Message, q: &Question) -> Message {
        let name = q.name.to_string().to_ascii_lowercase();
        let text: Option<String> = match name.as_str() {
            "hostname.bind." | "id.server." => self.identity.clone(),
            "version.bind." | "version.server." => self
                .behavior
                .version_banner
                .clone()
                .or_else(|| Some("simdns 1.0".to_string())),
            _ => None,
        };
        match text {
            Some(t) => Message::response_to(
                query,
                Rcode::NoError,
                vec![Record::chaos(
                    q.name.clone(),
                    0,
                    Rdata::Txt(vec![t.into_bytes()]),
                )],
            ),
            None => Message::response_to(query, Rcode::Refused, Vec::new()),
        }
    }

    fn answer_in(&self, query: &Message, q: &Question, b_phase: BRootPhase) -> Message {
        let zone = self.served_zone();
        match q.rr_type {
            RrType::A | RrType::Aaaa => {
                // Root server host addresses are served from knowledge of
                // the root-servers.net zone (modelled directly).
                if let Some(letter) = letter_for_host(&q.name) {
                    let rdata = match q.rr_type {
                        RrType::A => Rdata::A(letter.ipv4(b_phase)),
                        _ => Rdata::Aaaa(letter.ipv6(b_phase)),
                    };
                    return Message::response_to(
                        query,
                        Rcode::NoError,
                        vec![Record::new(q.name.clone(), 3_600_000, rdata)],
                    );
                }
                self.answer_from_zone(query, q)
            }
            RrType::Txt => {
                // TXT for X.root-servers.net: empty NOERROR (as in reality).
                if letter_for_host(&q.name).is_some() {
                    return Message::response_to(query, Rcode::NoError, Vec::new());
                }
                self.answer_from_zone(query, q)
            }
            RrType::Ns if q.name == Name::parse("root-servers.net.").unwrap() => {
                let answers = RootLetter::ALL
                    .iter()
                    .map(|l| {
                        Record::new(
                            q.name.clone(),
                            3_600_000,
                            Rdata::Ns(Name::parse(&l.host_name()).unwrap()),
                        )
                    })
                    .collect();
                Message::response_to(query, Rcode::NoError, answers)
            }
            RrType::Axfr => {
                // AXFR is answered as a stream; single-message callers use
                // `serve_transfer` instead. Signal NOTIMPL here.
                Message::response_to(query, Rcode::NotImp, Vec::new())
            }
            _ => {
                let _ = zone;
                self.answer_from_zone(query, q)
            }
        }
    }

    fn answer_from_zone(&self, query: &Message, q: &Question) -> Message {
        let zone = self.served_zone();
        let records: Vec<Record> = zone
            .rrset(&q.name, q.rr_type)
            .into_iter()
            .cloned()
            .collect();
        if records.is_empty() {
            // In-zone name? NOERROR/NODATA vs NXDOMAIN.
            let exists = zone.records().iter().any(|r| r.name == q.name);
            // NOERROR when the name exists (NODATA), is the apex itself,
            // or is an empty non-terminal above existing names; NXDOMAIN
            // otherwise.
            let noerror = exists
                || (q.name.is_subdomain_of(zone.origin()) && q.name == *zone.origin())
                || zone
                    .records()
                    .iter()
                    .any(|r| r.name.is_subdomain_of(&q.name));
            let rcode = if noerror {
                Rcode::NoError
            } else {
                Rcode::NxDomain
            };
            return Message::response_to(query, rcode, Vec::new());
        }
        let mut response = Message::response_to(query, Rcode::NoError, records);
        // Attach covering RRSIGs (DNSSEC responses always carry them).
        let sigs: Vec<Record> = zone
            .records()
            .iter()
            .filter(|r| {
                r.name == q.name
                    && matches!(&r.rdata, Rdata::Rrsig(s) if s.type_covered == q.rr_type)
            })
            .cloned()
            .collect();
        response.answers.extend(sigs);
        response
    }

    /// Serve a full zone transfer.
    pub fn serve_transfer(&self, query_id: u16) -> Result<Vec<Message>, AxfrError> {
        serve_axfr(self.served_zone(), query_id, DEFAULT_BATCH)
    }
}

/// Which letter a host name like `b.root-servers.net.` refers to.
fn letter_for_host(name: &Name) -> Option<RootLetter> {
    let s = name.to_string().to_ascii_lowercase();
    let rest = s.strip_suffix(".root-servers.net.")?;
    if rest.len() != 1 {
        return None;
    }
    let c = rest.chars().next().unwrap();
    if !c.is_ascii_lowercase() {
        return None;
    }
    RootLetter::from_index((c as u8 - b'a') as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_zone::rollout::RolloutPhase;
    use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
    use dns_zone::signer::ZoneKeys;
    use dns_zone::zonemd::verify_zonemd;

    fn server(letter: RootLetter) -> RootServer {
        let zone = build_root_zone(
            &RootZoneConfig {
                tld_count: 6,
                rollout: RolloutPhase::Validating,
                ..Default::default()
            },
            &ZoneKeys::from_seed(1),
        );
        RootServer {
            letter,
            identity: Some("fra1b".into()),
            zone: Arc::new(zone),
            behavior: ServerBehavior::default(),
        }
    }

    fn ask(server: &RootServer, name: &str, rr_type: RrType) -> Message {
        let q = Message::query(9, Question::new(Name::parse(name).unwrap(), rr_type));
        server.answer(&q, BRootPhase::Old)
    }

    #[test]
    fn answers_a_for_every_letter() {
        let s = server(RootLetter::B);
        for l in RootLetter::ALL {
            let resp = ask(&s, &l.host_name(), RrType::A);
            assert_eq!(resp.header.rcode, Rcode::NoError);
            match &resp.answers[0].rdata {
                Rdata::A(a) => assert_eq!(*a, l.ipv4(BRootPhase::Old)),
                other => panic!("unexpected rdata {other:?}"),
            }
        }
    }

    #[test]
    fn b_root_answers_respect_phase() {
        let s = server(RootLetter::B);
        let q = Message::query(
            1,
            Question::new(Name::parse("b.root-servers.net.").unwrap(), RrType::Aaaa),
        );
        let old = s.answer(&q, BRootPhase::Old);
        let new = s.answer(&q, BRootPhase::New);
        assert_ne!(old.answers[0].rdata, new.answers[0].rdata);
    }

    #[test]
    fn ns_queries_answered() {
        let s = server(RootLetter::K);
        let root_ns = ask(&s, ".", RrType::Ns);
        assert_eq!(
            root_ns
                .answers
                .iter()
                .filter(|r| r.rr_type == RrType::Ns)
                .count(),
            13
        );
        let rsnet = ask(&s, "root-servers.net.", RrType::Ns);
        assert_eq!(rsnet.answers.len(), 13);
    }

    #[test]
    fn soa_and_zonemd_answered_with_rrsigs() {
        let s = server(RootLetter::A);
        let soa = ask(&s, ".", RrType::Soa);
        assert!(soa.answers.iter().any(|r| r.rr_type == RrType::Soa));
        assert!(soa.answers.iter().any(|r| r.rr_type == RrType::Rrsig));
        let zmd = ask(&s, ".", RrType::Zonemd);
        assert!(zmd.answers.iter().any(|r| r.rr_type == RrType::Zonemd));
        assert!(zmd.answers.iter().any(|r| r.rr_type == RrType::Rrsig));
    }

    #[test]
    fn chaos_identity_queries() {
        let s = server(RootLetter::F);
        let q = Message::query(
            3,
            Question::chaos_txt(Name::parse("hostname.bind.").unwrap()),
        );
        let resp = s.answer(&q, BRootPhase::Old);
        match &resp.answers[0].rdata {
            Rdata::Txt(t) => assert_eq!(t[0], b"fra1b"),
            other => panic!("unexpected {other:?}"),
        }
        let q = Message::query(
            4,
            Question::chaos_txt(Name::parse("version.bind.").unwrap()),
        );
        let resp = s.answer(&q, BRootPhase::Old);
        assert_eq!(resp.header.rcode, Rcode::NoError);
    }

    #[test]
    fn identityless_instance_refuses_chaos() {
        let mut s = server(RootLetter::A);
        s.identity = None;
        let q = Message::query(5, Question::chaos_txt(Name::parse("id.server.").unwrap()));
        assert_eq!(s.answer(&q, BRootPhase::Old).header.rcode, Rcode::Refused);
    }

    #[test]
    fn nxdomain_for_unknown_tld() {
        let s = server(RootLetter::C);
        let resp = ask(&s, "doesnotexist12345.", RrType::A);
        assert_eq!(resp.header.rcode, Rcode::NxDomain);
    }

    #[test]
    fn axfr_transfer_round_trips_and_validates() {
        let s = server(RootLetter::D);
        let msgs = s.serve_transfer(7).unwrap();
        let zone = dns_zone::axfr::assemble_axfr(&msgs, &Name::root()).unwrap();
        assert_eq!(verify_zonemd(&zone), Ok(()));
    }

    #[test]
    fn stale_site_serves_old_zone() {
        let old_zone = build_root_zone(
            &RootZoneConfig {
                serial: 2023070100,
                tld_count: 6,
                rollout: RolloutPhase::NoRecord,
                ..Default::default()
            },
            &ZoneKeys::from_seed(1),
        );
        let mut s = server(RootLetter::D);
        s.behavior.stale_zone = Some(Arc::new(old_zone));
        let msgs = s.serve_transfer(8).unwrap();
        let got = dns_zone::axfr::assemble_axfr(&msgs, &Name::root()).unwrap();
        assert_eq!(got.serial().unwrap(), 2023070100);
    }

    #[test]
    fn nsid_echoed_when_requested() {
        use dns_wire::edns::{edns_of, set_edns, Edns};
        let s = server(RootLetter::K);
        let mut q = Message::query(1, Question::new(Name::parse(".").unwrap(), RrType::Soa));
        set_edns(&mut q, &Edns::dnssec().with_nsid_request());
        let resp = s.answer(&q, BRootPhase::Old);
        let edns = edns_of(&resp).expect("response carries OPT");
        assert_eq!(edns.nsid(), Some(b"fra1b".as_slice()));
        // Round-trip through the wire for good measure.
        let decoded = Message::from_wire(&resp.to_wire()).unwrap();
        assert_eq!(edns_of(&decoded).unwrap().nsid(), Some(b"fra1b".as_slice()));
    }

    #[test]
    fn no_nsid_without_request() {
        use dns_wire::edns::{edns_of, set_edns, Edns};
        let s = server(RootLetter::K);
        let mut q = Message::query(1, Question::new(Name::parse(".").unwrap(), RrType::Soa));
        set_edns(&mut q, &Edns::dnssec());
        let resp = s.answer(&q, BRootPhase::Old);
        assert_eq!(edns_of(&resp).unwrap().nsid(), None);
        // And no OPT at all when the query had none.
        let plain = Message::query(2, Question::new(Name::parse(".").unwrap(), RrType::Soa));
        let resp = s.answer(&plain, BRootPhase::Old);
        assert!(edns_of(&resp).is_none());
    }

    #[test]
    fn letter_for_host_parses() {
        assert_eq!(
            letter_for_host(&Name::parse("b.root-servers.net.").unwrap()),
            Some(RootLetter::B)
        );
        assert_eq!(
            letter_for_host(&Name::parse("m.root-servers.net.").unwrap()),
            Some(RootLetter::M)
        );
        assert_eq!(letter_for_host(&Name::parse("x.example.").unwrap()), None);
        assert_eq!(
            letter_for_host(&Name::parse("zz.root-servers.net.").unwrap()),
            None
        );
    }
}
