//! The active measurement engine.
//!
//! Reproduces the Appendix F script's behaviour over the simulated world:
//! per scheduled round, every VP probes all 14 targets (a–m plus the second
//! b.root address) over IPv4 and IPv6 — site selection (with churn),
//! RTT, traceroute second-to-last hop, `hostname.bind` identity, and (from
//! 2023-07-31) a full AXFR. Observations stream into a
//! [`MeasurementSink`]; the compact [`records`](crate::records) keep even
//! large runs tractable.
//!
//! Determinism: all randomness derives from `(seed, vp, target, family,
//! round time)`, so a VP's observation stream is independent of every other
//! VP — which is also what makes [`MeasurementEngine::run_parallel`]
//! trivially correct: workers own disjoint VP ranges.

use crate::population::{Population, PopulationConfig, VantagePoint, VpFault};
use crate::records::{ProbeRecord, Target, TransferFault, TransferRecord};
use crate::schedule::{Round, Schedule};
use dns_crypto::validity::timestamp_to_ymd;
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use dns_zone::Zone;
use netsim::anycast::{SiteId, SiteScope};
use netsim::churn::SelectionState;
use netsim::routing::{propagate, CandidateRoute};
use netsim::{ChurnModel, Family, RouteTable, RttModel, SimRng, Topology, TopologyConfig};
use parking_lot::Mutex;
use rss::catalog::{RootCatalog, WorldConfig};
use rss::RootLetter;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything a measurement needs: topology, catalog, routing, VPs, zones.
pub struct World {
    pub topology: Topology,
    pub catalog: RootCatalog,
    pub population: Population,
    /// Route tables indexed `[letter][family]`.
    route_tables: Vec<[RouteTable; 2]>,
    /// Attracting sites per `[letter][family]`: distinct sites selected by
    /// at least one AS — the pool an upstream path change can land on.
    attracting: Vec<[Vec<netsim::anycast::SiteId>; 2]>,
    /// Zone keys (stable across the measurement; the root's actual keys
    /// also did not roll during the window).
    pub keys: ZoneKeys,
    /// Day-indexed zone cache.
    zone_cache: Mutex<HashMap<u32, Arc<Zone>>>,
    /// TLD count for generated zones.
    zone_tlds: usize,
    seed: u64,
    /// Sites currently withdrawn from service, per letter (sorted). The
    /// catalog keeps the full roster — withdrawal only removes the site
    /// from route propagation, so `SiteId`s stay stable across
    /// apply/revert cycles (the scenario engine depends on this).
    withdrawn: Vec<Vec<SiteId>>,
    /// When set, every generated zone uses this ZONEMD roll-out phase
    /// instead of the dated timeline (scenario override).
    zonemd_override: Option<RolloutPhase>,
}

/// World construction parameters.
#[derive(Debug, Clone)]
pub struct WorldBuildConfig {
    pub topology: TopologyConfig,
    pub catalog: WorldConfig,
    pub population: PopulationConfig,
    /// TLD delegations in generated zones (the real root has ~1.5k; smaller
    /// zones keep AXFR-heavy runs fast without changing any analysis).
    pub zone_tlds: usize,
    pub seed: u64,
}

impl Default for WorldBuildConfig {
    fn default() -> Self {
        WorldBuildConfig {
            topology: TopologyConfig::default(),
            catalog: WorldConfig::default(),
            population: PopulationConfig::default(),
            zone_tlds: 25,
            seed: 0x2023_0703,
        }
    }
}

impl WorldBuildConfig {
    /// A miniature world for unit tests: scaled-down sites and VPs.
    pub fn tiny() -> Self {
        WorldBuildConfig {
            topology: TopologyConfig {
                tier2_per_region: 5,
                stubs_per_region: [8, 12, 40, 25, 8, 10],
                ..Default::default()
            },
            catalog: WorldConfig {
                site_scale: 0.2,
                ..Default::default()
            },
            population: PopulationConfig::tiny(),
            zone_tlds: 8,
            seed: 0x2023_0703,
        }
    }
}

impl World {
    /// Build the world: topology → catalog (adds facility ASes) → routing
    /// tables for all 13 deployments × both families → VP population.
    pub fn build(cfg: &WorldBuildConfig) -> World {
        let mut topology = Topology::generate(&cfg.topology);
        let catalog = RootCatalog::build(&mut topology, &cfg.catalog);
        let mut route_tables = Vec::with_capacity(13);
        let mut attracting = Vec::with_capacity(13);
        for letter in RootLetter::ALL {
            let (tables, pool) = compute_letter_routing(&topology, &catalog, letter, &[]);
            route_tables.push(tables);
            attracting.push(pool);
        }
        let population = Population::synthesize(&topology, &cfg.population);
        World {
            topology,
            catalog,
            population,
            route_tables,
            attracting,
            keys: ZoneKeys::from_seed(cfg.seed ^ 0x5a5a),
            zone_cache: Mutex::new(HashMap::new()),
            zone_tlds: cfg.zone_tlds,
            seed: cfg.seed,
            withdrawn: vec![Vec::new(); 13],
            zonemd_override: None,
        }
    }

    /// Route table for `letter`/`family`.
    pub fn routes(&self, letter: RootLetter, family: Family) -> &RouteTable {
        &self.route_tables[letter.index()][family.index()]
    }

    /// Sites of `letter` that attract at least one AS in `family` — the
    /// pool an upstream path change can redirect a client to.
    pub fn attracting_sites(
        &self,
        letter: RootLetter,
        family: Family,
    ) -> &[netsim::anycast::SiteId] {
        &self.attracting[letter.index()][family.index()]
    }

    /// The zone published on the day containing `time`.
    ///
    /// Serial follows the root convention `YYYYMMDDnn`; signatures are
    /// incepted at day start and run two weeks; the ZONEMD phase follows
    /// the roll-out timeline.
    pub fn zone_at(&self, time: u32) -> Arc<Zone> {
        let day = time - time % 86400;
        if let Some(z) = self.zone_cache.lock().get(&day) {
            return z.clone();
        }
        let ymd: String = timestamp_to_ymd(day).chars().take(8).collect();
        let serial: u32 = ymd.parse::<u32>().expect("8 digits") * 100;
        let zone = Arc::new(build_root_zone(
            &RootZoneConfig {
                serial,
                tld_count: self.zone_tlds,
                inception: day,
                expiration: day + 14 * 86400,
                rollout: self
                    .zonemd_override
                    .unwrap_or_else(|| RolloutPhase::at(day)),
            },
            &self.keys,
        ));
        self.zone_cache.lock().insert(day, zone.clone());
        zone
    }

    /// The base seed of this world.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Take `site` of `letter` out of service: it stops originating the
    /// service prefix and routing for that letter is recomputed. Returns
    /// `false` (and changes nothing) when the site is unknown or already
    /// withdrawn. `SiteId`s stay stable — the catalog roster is untouched.
    pub fn withdraw_site(&mut self, letter: RootLetter, site: SiteId) -> bool {
        let known = self
            .catalog
            .deployment(letter)
            .sites
            .iter()
            .any(|s| s.id == site);
        let w = &mut self.withdrawn[letter.index()];
        if !known || w.contains(&site) {
            return false;
        }
        w.push(site);
        w.sort_unstable();
        self.recompute_letter(letter);
        true
    }

    /// Put a withdrawn site back in service and recompute routing. Returns
    /// `false` when the site was not withdrawn.
    pub fn restore_site(&mut self, letter: RootLetter, site: SiteId) -> bool {
        let w = &mut self.withdrawn[letter.index()];
        let Some(pos) = w.iter().position(|&s| s == site) else {
            return false;
        };
        w.remove(pos);
        self.recompute_letter(letter);
        true
    }

    /// Sites of `letter` currently withdrawn from service (sorted).
    pub fn withdrawn_sites(&self, letter: RootLetter) -> &[SiteId] {
        &self.withdrawn[letter.index()]
    }

    /// Recompute route tables and attracting pools for one letter from the
    /// current topology and withdrawal set.
    pub fn recompute_letter(&mut self, letter: RootLetter) {
        let (tables, pool) = compute_letter_routing(
            &self.topology,
            &self.catalog,
            letter,
            &self.withdrawn[letter.index()],
        );
        self.route_tables[letter.index()] = tables;
        self.attracting[letter.index()] = pool;
    }

    /// Recompute routing for every letter — required after a topology-level
    /// change (e.g. a peering link failure) that affects all deployments.
    pub fn recompute_all(&mut self) {
        for letter in RootLetter::ALL {
            self.recompute_letter(letter);
        }
    }

    /// Order-independent fingerprint of `letter`'s routing state (both
    /// families, every AS, full candidate lists). Scenario apply→revert
    /// round-trips are checked against this hash.
    pub fn routing_hash(&self, letter: RootLetter) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for family in Family::BOTH {
            let table = self.routes(letter, family);
            for node in self.topology.nodes() {
                for c in table.candidates(node.id) {
                    mix(node.id.0 as u64);
                    mix(c.site.0 as u64);
                    mix(c.via.map(|a| a.0 as u64 + 1).unwrap_or(0));
                    mix(c.learned_from as u64);
                    mix(c.path.len() as u64);
                    mix(c.km as u64);
                }
            }
        }
        h
    }

    /// Force every generated zone into `phase` (or back to the dated
    /// timeline with `None`). Drops the zone cache, so zones are rebuilt
    /// lazily under the new phase.
    pub fn set_zonemd_override(&mut self, phase: Option<RolloutPhase>) {
        self.zonemd_override = phase;
        self.zone_cache.lock().clear();
    }

    /// The active ZONEMD phase override, if any.
    pub fn zonemd_override(&self) -> Option<RolloutPhase> {
        self.zonemd_override
    }
}

/// Route tables and attracting pools for one letter, excluding `withdrawn`
/// sites from propagation. Shared by [`World::build`] and the scenario
/// mutation paths so both compute routing identically.
fn compute_letter_routing(
    topology: &Topology,
    catalog: &RootCatalog,
    letter: RootLetter,
    withdrawn: &[SiteId],
) -> ([RouteTable; 2], [Vec<SiteId>; 2]) {
    let full = catalog.deployment(letter);
    let filtered;
    let d = if withdrawn.is_empty() {
        full
    } else {
        filtered = netsim::anycast::Deployment {
            name: full.name.clone(),
            sites: full
                .sites
                .iter()
                .filter(|s| !withdrawn.contains(&s.id))
                .cloned()
                .collect(),
        };
        &filtered
    };
    let tables = [
        propagate(topology, d, Family::V4),
        propagate(topology, d, Family::V6),
    ];
    let pool = std::array::from_fn(|fam| {
        let mut sites: Vec<SiteId> = topology
            .nodes()
            .iter()
            .filter_map(|n| tables[fam].best(n.id).map(|r| r.site))
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    });
    (tables, pool)
}

/// Where observations go. Implementations aggregate on the fly, so even
/// full-scale runs never hold the record stream in memory.
pub trait MeasurementSink {
    /// One active probe result.
    fn probe(&mut self, rec: &ProbeRecord);
    /// One zone-transfer result.
    fn transfer(&mut self, rec: &TransferRecord);
}

/// A sink that simply collects records (for tests and small runs).
#[derive(Debug, Default)]
pub struct VecSink {
    pub probes: Vec<ProbeRecord>,
    pub transfers: Vec<TransferRecord>,
}

impl MeasurementSink for VecSink {
    fn probe(&mut self, rec: &ProbeRecord) {
        self.probes.push(rec.clone());
    }
    fn transfer(&mut self, rec: &TransferRecord) {
        self.transfers.push(rec.clone());
    }
}

/// Stale-site fault window (the paper's Tokyo/Leeds d.root episodes).
#[derive(Debug, Clone)]
pub struct StaleWindow {
    pub letter: RootLetter,
    /// City name of the affected site(s).
    pub city: &'static str,
    /// Window (start, end) in wall-clock seconds.
    pub from: u32,
    pub until: u32,
    /// The stuck zone is the one from this timestamp's day.
    pub stuck_day: u32,
}

/// Clock-skew episode for a VP with `VpFault::SkewedClock`.
#[derive(Debug, Clone)]
pub struct SkewEpisode {
    pub from: u32,
    pub until: u32,
}

/// Per-letter behavioural overrides a scenario epoch can impose on the
/// engine. The neutral defaults draw no extra randomness and scale nothing,
/// so a config with neutral overrides is bit-identical to one without.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LetterOverrides {
    /// Extra multiplier on the letter's churn pressure (route flap burst).
    pub churn_boost: f64,
    /// Multiplier on every measured RTT (DDoS-style path inflation).
    pub rtt_factor: f64,
    /// When set, every site of the letter serves the zone of this day
    /// (letter-wide stale-zone degradation).
    pub stale_stuck_day: Option<u32>,
    /// Extra per-transfer bitflip probability (letter-wide corrupted
    /// transfers, on top of per-VP faulty-RAM flips).
    pub extra_bitflip_prob: f64,
}

impl Default for LetterOverrides {
    fn default() -> Self {
        LetterOverrides {
            churn_boost: 1.0,
            rtt_factor: 1.0,
            stale_stuck_day: None,
            extra_bitflip_prob: 0.0,
        }
    }
}

impl LetterOverrides {
    /// True when this override changes nothing.
    pub fn is_neutral(&self) -> bool {
        *self == LetterOverrides::default()
    }
}

/// Overrides for all 13 letters (indexed by [`RootLetter::index`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineOverrides {
    per_letter: [LetterOverrides; 13],
}

impl EngineOverrides {
    /// The override in force for `letter`.
    pub fn letter(&self, letter: RootLetter) -> &LetterOverrides {
        &self.per_letter[letter.index()]
    }

    /// Mutable override for `letter`.
    pub fn letter_mut(&mut self, letter: RootLetter) -> &mut LetterOverrides {
        &mut self.per_letter[letter.index()]
    }

    /// True when no letter has a non-neutral override.
    pub fn is_neutral(&self) -> bool {
        self.per_letter.iter().all(|o| o.is_neutral())
    }
}

/// Measurement parameters.
#[derive(Debug, Clone)]
pub struct MeasurementConfig {
    pub schedule: Schedule,
    pub churn: ChurnModel,
    pub rtt: RttModel,
    /// Probability that any single probe times out entirely.
    pub timeout_prob: f64,
    /// Probability that the traceroute's second-to-last hop is missing.
    pub missing_hop_prob: f64,
    /// Stale-site windows.
    pub stale_windows: Vec<StaleWindow>,
    /// Skew episodes (applied to every skewed-clock VP).
    pub skew_episodes: Vec<SkewEpisode>,
    /// Scenario-epoch behavioural overrides (neutral by default).
    pub overrides: EngineOverrides,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        use dns_crypto::validity::timestamp_from_ymd as ts;
        MeasurementConfig {
            schedule: Schedule::default(),
            churn: ChurnModel::default(),
            rtt: RttModel::default(),
            timeout_prob: 0.002,
            missing_hop_prob: 0.04,
            stale_windows: vec![
                // Table 2: d.root Tokyo, 2023-08-16 10:00–11:31 (≈12 obs).
                StaleWindow {
                    letter: RootLetter::D,
                    city: "tokyo",
                    from: ts("20230816100000").unwrap(),
                    until: ts("20230816113100").unwrap(),
                    stuck_day: ts("20230729000000").unwrap(),
                },
                // Table 2: d.root Leeds, 2023-10-06 10:00–13:31 (≈40 obs).
                StaleWindow {
                    letter: RootLetter::D,
                    city: "leeds",
                    from: ts("20231006100000").unwrap(),
                    until: ts("20231006133100").unwrap(),
                    stuck_day: ts("20230918000000").unwrap(),
                },
            ],
            skew_episodes: vec![
                // Short NTP-outage episodes crossing signing boundaries.
                SkewEpisode {
                    from: ts("20231002213000").unwrap(),
                    until: ts("20231003010000").unwrap(),
                },
                SkewEpisode {
                    from: ts("20231221220000").unwrap(),
                    until: ts("20231222030000").unwrap(),
                },
            ],
            overrides: EngineOverrides::default(),
        }
    }
}

/// Per-(vp, target, family) runtime state.
struct ProbeState {
    selection: SelectionState,
    /// Cached base RTT per (candidate index, site) — the site matters
    /// because an upstream redirect can serve a site off the candidate's
    /// own facility.
    rtt_cache: HashMap<(usize, u32), f64>,
}

/// Cross-call engine state: the per-(vp, target, family) churn selection
/// and RTT caches that normally live only for one `run` call.
///
/// The scenario engine runs a measurement in epoch slices (one
/// `run_rounds_session` call per epoch, with world mutations in between)
/// and needs the churn process to *continue* across the boundary rather
/// than restart — otherwise an event-free scenario would not reproduce the
/// continuous pipeline's record stream bit for bit.
#[derive(Default)]
pub struct EngineSession {
    states: HashMap<(u32, usize, usize), ProbeState>,
}

impl EngineSession {
    /// A fresh session (no VP has probed yet).
    pub fn new() -> EngineSession {
        EngineSession::default()
    }

    /// Invalidate state that depends on the routing ground truth: cached
    /// base RTTs (candidate indices may have shifted) and upstream
    /// redirects (the redirect target may no longer attract traffic).
    /// Call after any world mutation that recomputed route tables. The
    /// Markov position survives — it is re-validated against the new
    /// near-equal set on the next step.
    pub fn invalidate_routing(&mut self, churn: &ChurnModel) {
        for state in self.states.values_mut() {
            state.rtt_cache.clear();
            churn.reset_override(&mut state.selection);
        }
    }
}

/// The engine.
pub struct MeasurementEngine<'w> {
    pub world: &'w World,
    pub config: MeasurementConfig,
}

impl<'w> MeasurementEngine<'w> {
    /// Create an engine over `world`.
    pub fn new(world: &'w World, config: MeasurementConfig) -> Self {
        MeasurementEngine { world, config }
    }

    /// Run the full measurement, streaming into `sink`.
    pub fn run<S: MeasurementSink>(&self, sink: &mut S) {
        let vp_ids: Vec<u32> = (0..self.world.population.len() as u32).collect();
        let rounds: Vec<Round> = self.config.schedule.rounds().collect();
        self.run_vps(&vp_ids, &rounds, sink);
    }

    /// Run the measurement in parallel over VP ranges; returns the merged
    /// record set. Each worker owns a disjoint VP range, so results are
    /// identical to a serial run up to record order (grouped by range).
    pub fn run_parallel(&self, workers: usize) -> VecSink {
        let rounds: Vec<Round> = self.config.schedule.rounds().collect();
        self.run_rounds_parallel(&rounds, workers)
    }

    /// [`run_parallel`](Self::run_parallel) over an explicit round list.
    /// Callers use this for focused re-measurement of specific rounds —
    /// e.g. the core pipeline covering stale-site windows a subsampled
    /// main schedule skipped. Per-probe randomness derives from
    /// `(seed, vp, target, family, round time)` and is independent of
    /// which other rounds run; only the churn selection state carries
    /// across rounds, exactly as a real re-measurement campaign would
    /// start from the routes in force when it began.
    pub fn run_rounds_parallel(&self, rounds: &[Round], workers: usize) -> VecSink {
        let mut session = EngineSession::new();
        self.run_rounds_session(&mut session, rounds, workers)
    }

    /// [`run_rounds_parallel`](Self::run_rounds_parallel) with explicit
    /// cross-call state: churn selection and RTT caches are taken from
    /// `session` and merged back afterwards, so consecutive calls behave
    /// exactly like one continuous run over the concatenated round list.
    pub fn run_rounds_session(
        &self,
        session: &mut EngineSession,
        rounds: &[Round],
        workers: usize,
    ) -> VecSink {
        let n = self.world.population.len() as u32;
        let workers = workers.clamp(1, (n as usize).max(1));
        let chunk = n.div_ceil(workers as u32);
        // Partition the session state by worker VP range; each worker owns
        // its slice exclusively (same disjointness argument as the VPs).
        let mut parts_in: Vec<HashMap<(u32, usize, usize), ProbeState>> =
            (0..workers).map(|_| HashMap::new()).collect();
        for (key, state) in session.states.drain() {
            let w = ((key.0 / chunk) as usize).min(workers - 1);
            parts_in[w].insert(key, state);
        }
        type WorkerOut = (u32, VecSink, HashMap<(u32, usize, usize), ProbeState>);
        let results: Mutex<Vec<WorkerOut>> = Mutex::new(Vec::new());
        crossbeam::scope(|scope| {
            for (w, mut states) in parts_in.into_iter().enumerate() {
                let lo = w as u32 * chunk;
                let hi = ((w as u32 + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                let results = &results;
                scope.spawn(move |_| {
                    let ids: Vec<u32> = (lo..hi).collect();
                    let mut sink = VecSink::default();
                    self.run_vps_with(&mut states, &ids, rounds, &mut sink);
                    results.lock().push((lo, sink, states));
                });
            }
        })
        .expect("worker panicked");
        let mut parts = results.into_inner();
        parts.sort_by_key(|(lo, _, _)| *lo);
        let mut merged = VecSink::default();
        for (_, part, states) in parts {
            merged.probes.extend(part.probes);
            merged.transfers.extend(part.transfers);
            session.states.extend(states);
        }
        merged
    }

    /// Run the measurement for a subset of VPs over the given rounds.
    fn run_vps<S: MeasurementSink>(&self, vp_ids: &[u32], rounds: &[Round], sink: &mut S) {
        let mut states: HashMap<(u32, usize, usize), ProbeState> = HashMap::new();
        self.run_vps_with(&mut states, vp_ids, rounds, sink);
    }

    /// [`run_vps`](Self::run_vps) over caller-owned per-(vp, target,
    /// family) states.
    fn run_vps_with<S: MeasurementSink>(
        &self,
        states: &mut HashMap<(u32, usize, usize), ProbeState>,
        vp_ids: &[u32],
        rounds: &[Round],
        sink: &mut S,
    ) {
        let targets = Target::all();
        let root_rng = SimRng::new(self.world.seed()).derive("measurement");
        for round in rounds {
            for &vp_idx in vp_ids {
                let vp = self.world.population.get(crate::population::VpId(vp_idx));
                for (t_idx, target) in targets.iter().enumerate() {
                    for family in Family::BOTH {
                        if family == Family::V6 && !vp.has_v6 {
                            continue;
                        }
                        let key = (vp_idx, t_idx, family.index());
                        let state = states.entry(key).or_insert_with(|| ProbeState {
                            selection: self.config.churn.initial(),
                            rtt_cache: HashMap::new(),
                        });
                        // Integer-tuple stream derivation: the string
                        // version of this key (`format!("probe/…")`)
                        // allocated on every probe and dominated the
                        // profile; `t_idx` is stable because
                        // `Target::all()` is a fixed ordered list.
                        let mut rng = root_rng.derive_ids(&[
                            vp_idx as u64,
                            t_idx as u64,
                            family.index() as u64,
                            round.time as u64,
                        ]);
                        self.probe_once(vp, *target, family, round.time, state, &mut rng, sink);
                    }
                }
            }
        }
    }

    /// One probe: selection, RTT, traceroute tail, identity, AXFR.
    #[allow(clippy::too_many_arguments)]
    fn probe_once<S: MeasurementSink>(
        &self,
        vp: &VantagePoint,
        target: Target,
        family: Family,
        time: u32,
        state: &mut ProbeState,
        rng: &mut SimRng,
        sink: &mut S,
    ) {
        let world = self.world;
        let ov = self.config.overrides.letter(target.letter);
        let table = world.routes(target.letter, family);
        let timeout = rng.chance(self.config.timeout_prob);
        let site = if timeout {
            None
        } else {
            self.config.churn.step_full(
                table,
                vp.asn,
                &mut state.selection,
                rng,
                churn_multiplier(target.letter, family) * ov.churn_boost,
                world.attracting_sites(target.letter, family),
            )
        };
        let (rtt_ms, second_to_last_hop, identity, site_city) = match site {
            None => (None, None, None, None),
            Some(site_id) => {
                // Selected candidate (for path geometry).
                let cands = table.candidates(vp.asn);
                let near = self.config.churn.near_equal(table, vp.asn);
                let cand_idx = resolve_candidate(cands, &near, site_id);
                let cand = &cands[cand_idx];
                let deployment = world.catalog.deployment(target.letter);
                let facility = deployment.site(site_id).facility;
                let base = *state
                    .rtt_cache
                    .entry((cand_idx, site_id.0))
                    .or_insert_with(|| {
                        self.config.rtt.base_rtt_ms(
                            &world.topology,
                            &world.catalog.facilities,
                            vp.coord,
                            cand,
                            facility,
                        )
                    });
                let rtt = self.config.rtt.jittered(base, rng) * ov.rtt_factor;
                let hop = if rng.chance(self.config.missing_hop_prob) {
                    None
                } else {
                    Some(world.catalog.facilities.get(facility).edge_router())
                };
                let row = world.catalog.site(target.letter, site_id);
                let identity = observed_identity(row, rng);
                (Some(rtt), hop, identity, Some(row.city.name))
            }
        };
        sink.probe(&ProbeRecord {
            time,
            vp: vp.id,
            target,
            family,
            site,
            rtt_ms,
            second_to_last_hop,
            identity,
        });

        // AXFR (once active, every round, as the script does).
        if self.config.schedule.axfr_active(time) && site.is_some() {
            let vp_clock = self.vp_clock(vp, time);
            // A letter-wide degraded-behavior override beats the dated
            // per-site stale windows.
            let stale = ov
                .stale_stuck_day
                .or_else(|| self.stale_at(target.letter, site_city, time));
            let mut fault = if let Some(stuck_day) = stale {
                Some(TransferFault::Stale {
                    serial: serial_of_day(stuck_day),
                })
            } else {
                match vp.fault {
                    VpFault::FaultyRam { flip_prob } if rng.chance(flip_prob) => {
                        Some(TransferFault::Bitflip {
                            seed: rng.next_u64(),
                        })
                    }
                    _ => None,
                }
            };
            // Scenario-injected corruption: only draws randomness when the
            // override is active, so neutral configs stay bit-identical.
            if fault.is_none() && ov.extra_bitflip_prob > 0.0 && rng.chance(ov.extra_bitflip_prob) {
                fault = Some(TransferFault::Bitflip {
                    seed: rng.next_u64(),
                });
            }
            let serial = match fault {
                Some(TransferFault::Stale { serial }) => serial,
                _ => serial_of_day(time - time % 86400),
            };
            sink.transfer(&TransferRecord {
                time,
                vp_clock,
                vp: vp.id,
                target,
                family,
                serial: Some(serial),
                fault,
            });
        }
    }

    /// Local clock of `vp` at wall-clock `time` (skew during episodes).
    pub fn vp_clock(&self, vp: &VantagePoint, time: u32) -> u32 {
        if let VpFault::SkewedClock { offset_secs } = vp.fault {
            let in_episode = self
                .config
                .skew_episodes
                .iter()
                .any(|e| time >= e.from && time < e.until);
            if in_episode {
                return (time as i64 + offset_secs).clamp(0, u32::MAX as i64) as u32;
            }
        }
        time
    }

    /// Whether the (letter, site-city) combination serves stale data at
    /// `time`; returns the stuck day.
    fn stale_at(
        &self,
        letter: RootLetter,
        site_city: Option<&'static str>,
        time: u32,
    ) -> Option<u32> {
        let city = site_city?;
        self.config
            .stale_windows
            .iter()
            .find(|w| w.letter == letter && w.city == city && time >= w.from && time < w.until)
            .map(|w| w.stuck_day)
    }
}

/// Resolve which candidate route carries this probe's traffic to `site`.
///
/// The churn model normally selects among the near-equal set, so the
/// common case is a near-equal candidate serving `site`. But an upstream
/// redirect can land the client on any attracting site of the deployment:
/// first fall back to *any* candidate that serves it (path geometry must
/// follow the route that actually reaches the site, not the local best —
/// using index 0 here systematically under-reported RTT for redirected
/// probes), and only when no candidate serves the site at all use the
/// local best route, since the packets still leave via it even though
/// they terminate elsewhere.
fn resolve_candidate(cands: &[CandidateRoute], near: &[usize], site: SiteId) -> usize {
    near.iter()
        .copied()
        .find(|&i| cands[i].site == site)
        .or_else(|| cands.iter().position(|c| c.site == site))
        .unwrap_or(0)
}

/// Per-deployment routing-stability multiplier, calibrated to the paper's
/// Figure 3: b.root's routing is markedly more stable than g.root's even
/// though both deploy six sites; g (and to a lesser degree c and h) also
/// flap more on IPv6. The paper observes this without a mechanism ("this
/// is surprising", §4.2); an AS-level simulator cannot derive it, so it is
/// an explicit behavioural parameter, like the traces' switch rates.
pub fn churn_multiplier(letter: RootLetter, family: Family) -> f64 {
    use RootLetter::*;
    match (letter, family) {
        (G, Family::V4) => 4.5,
        (G, Family::V6) => 8.0,
        (C, Family::V6) | (H, Family::V6) => 2.5,
        _ => 1.0,
    }
}

/// Serial of the zone generated on `day` (day-start timestamp).
pub fn serial_of_day(day: u32) -> u32 {
    let ymd: String = timestamp_to_ymd(day).chars().take(8).collect();
    ymd.parse::<u32>().expect("8 digits") * 100
}

/// What `hostname.bind` shows for a site: the mapped identifier when the
/// operator publishes one; an IATA-bearing hostname for `{a,c,j,e}`; a
/// stable-but-unmappable blob for the rest (the paper observed 1,604
/// distinct identifiers, 135 of which did not map — identifiers are
/// per-instance constants, not per-query noise).
fn observed_identity(row: &rss::catalog::RootSite, _rng: &mut SimRng) -> Option<String> {
    if let Some(id) = &row.instance_id {
        return Some(id.clone());
    }
    if !row.letter.identifiers_mappable() {
        // j.root contributed 75 of the paper's 135 unmapped identifiers:
        // roughly a third of its instances report something that maps to
        // nothing. Site-id keyed, so the set of opaque instances is stable.
        if row.letter == RootLetter::J && row.site_id.0.is_multiple_of(3) {
            return Some(format!("opaque-j{:04}", row.site_id.0));
        }
        // IATA code embedded in the node hostname, metro-granular.
        return Some(format!(
            "{}-{}{}",
            row.letter.ch(),
            row.iata,
            row.facility.0 % 4 + 1
        ));
    }
    // Mappable operator, unmappable node: stable per site.
    Some(format!("opaque-{}{:04}", row.letter.ch(), row.site_id.0))
}

/// How many sites of each scope a letter exposes to a VP — used by coverage
/// analyses and tests.
pub fn reachable_scopes(
    world: &World,
    letter: RootLetter,
    family: Family,
    vp_asn: netsim::AsId,
) -> (usize, usize) {
    let table = world.routes(letter, family);
    let d = world.catalog.deployment(letter);
    let mut global = 0;
    let mut local = 0;
    for c in table.candidates(vp_asn) {
        match d.site(c.site).scope {
            SiteScope::Global => global += 1,
            SiteScope::Local => local += 1,
        }
    }
    (global, local)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::build(&WorldBuildConfig::tiny())
    }

    fn short_config() -> MeasurementConfig {
        MeasurementConfig {
            schedule: Schedule::subsampled(400),
            ..Default::default()
        }
    }

    #[test]
    fn engine_produces_records() {
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, short_config());
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        assert!(!sink.probes.is_empty());
        assert!(!sink.transfers.is_empty());
        // Probes cover all 14 targets.
        let targets: std::collections::HashSet<_> = sink.probes.iter().map(|p| p.target).collect();
        assert_eq!(targets.len(), 14);
    }

    #[test]
    fn v4_only_vps_never_probe_v6() {
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, short_config());
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        for p in &sink.probes {
            if p.family == Family::V6 {
                assert!(world.population.get(p.vp).has_v6);
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, short_config());
        let mut a = VecSink::default();
        engine.run(&mut a);
        let mut b = VecSink::default();
        engine.run(&mut b);
        assert_eq!(a.probes.len(), b.probes.len());
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.transfers, b.transfers);
    }

    #[test]
    fn parallel_matches_serial_content() {
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, short_config());
        let mut serial = VecSink::default();
        engine.run(&mut serial);
        let parallel = engine.run_parallel(4);
        assert_eq!(serial.probes.len(), parallel.probes.len());
        // Same multiset; parallel merge preserves VP-range grouping so a
        // sort by (vp, time, target) aligns them.
        let keyf = |p: &ProbeRecord| (p.vp, p.time, p.target, p.family);
        let mut a = serial.probes.clone();
        let mut b = parallel.probes.clone();
        a.sort_by_key(keyf);
        b.sort_by_key(keyf);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_identical_across_worker_counts() {
        // Determinism golden test: the record set must be bit-identical
        // for any worker count once sorted by the documented key
        // (vp, time, target, family). Workers own disjoint VP ranges and
        // all per-probe randomness derives from
        // (seed, vp, target, family, round time), so worker count can
        // only permute record order, never content.
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, short_config());
        let probe_key = |p: &ProbeRecord| (p.vp, p.time, p.target, p.family);
        let transfer_key = |t: &TransferRecord| (t.vp, t.time, t.target, t.family);
        let normalized = |workers: usize| {
            let mut sink = engine.run_parallel(workers);
            sink.probes.sort_by_key(probe_key);
            sink.transfers.sort_by_key(transfer_key);
            (sink.probes, sink.transfers)
        };
        let base = normalized(1);
        for workers in [2, 8] {
            let run = normalized(workers);
            assert_eq!(base.0, run.0, "probes differ at {workers} workers");
            assert_eq!(base.1, run.1, "transfers differ at {workers} workers");
        }
    }

    #[test]
    fn session_split_matches_continuous_run() {
        // Epoch-slicing contract: running the schedule in two
        // `run_rounds_session` calls over the same session (even with
        // different worker counts) yields the exact record stream of one
        // continuous run — churn state carries across the boundary.
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, short_config());
        let rounds: Vec<Round> = engine.config.schedule.rounds().collect();
        let continuous = engine.run_rounds_parallel(&rounds, 3);
        let (head, tail) = rounds.split_at(rounds.len() / 2);
        let mut session = EngineSession::new();
        let mut sliced = engine.run_rounds_session(&mut session, head, 3);
        let second = engine.run_rounds_session(&mut session, tail, 2);
        sliced.probes.extend(second.probes);
        sliced.transfers.extend(second.transfers);
        let probe_key = |p: &ProbeRecord| (p.vp, p.time, p.target, p.family);
        let transfer_key = |t: &TransferRecord| (t.vp, t.time, t.target, t.family);
        let normalize = |mut s: VecSink| {
            s.probes.sort_by_key(probe_key);
            s.transfers.sort_by_key(transfer_key);
            (s.probes, s.transfers)
        };
        assert_eq!(normalize(continuous), normalize(sliced));
    }

    #[test]
    fn neutral_overrides_change_nothing() {
        let world = tiny_world();
        let base = MeasurementEngine::new(&world, short_config());
        let mut cfg = short_config();
        // Explicitly-neutral override values must not perturb the stream.
        *cfg.overrides.letter_mut(RootLetter::G) = LetterOverrides::default();
        assert!(cfg.overrides.is_neutral());
        let overridden = MeasurementEngine::new(&world, cfg);
        let mut a = VecSink::default();
        base.run(&mut a);
        let mut b = VecSink::default();
        overridden.run(&mut b);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.transfers, b.transfers);
    }

    #[test]
    fn override_knobs_bite() {
        let world = tiny_world();
        let mut cfg = short_config();
        {
            let ov = cfg.overrides.letter_mut(RootLetter::K);
            ov.rtt_factor = 10.0;
            ov.extra_bitflip_prob = 1.0;
        }
        let engine = MeasurementEngine::new(&world, cfg);
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        let base_engine = MeasurementEngine::new(&world, short_config());
        let mut base = VecSink::default();
        base_engine.run(&mut base);
        // RTT inflation: every K probe with an RTT is exactly 10× its
        // baseline counterpart (same rng stream, scaled after jitter).
        let rtts = |s: &VecSink| -> Vec<f64> {
            s.probes
                .iter()
                .filter(|p| p.target.letter == RootLetter::K)
                .filter_map(|p| p.rtt_ms)
                .collect()
        };
        let (inflated, baseline) = (rtts(&sink), rtts(&base));
        assert_eq!(inflated.len(), baseline.len());
        assert!(!inflated.is_empty());
        for (i, b) in inflated.iter().zip(&baseline) {
            assert!((i - b * 10.0).abs() < 1e-9);
        }
        // Certain corruption: every K transfer carries a bitflip fault.
        let k_transfers: Vec<_> = sink
            .transfers
            .iter()
            .filter(|t| t.target.letter == RootLetter::K)
            .collect();
        assert!(!k_transfers.is_empty());
        for t in k_transfers {
            assert!(
                matches!(t.fault, Some(TransferFault::Bitflip { .. })),
                "unflipped K transfer"
            );
        }
        // Other letters are untouched.
        let a_probes = |s: &VecSink| -> Vec<_> {
            s.probes
                .iter()
                .filter(|p| p.target.letter == RootLetter::A)
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(a_probes(&sink), a_probes(&base));
    }

    #[test]
    fn withdraw_and_restore_round_trips_routing() {
        let mut world = tiny_world();
        let letter = RootLetter::F;
        let before = world.routing_hash(letter);
        let site = world.catalog.deployment(letter).sites[0].id;
        assert!(world.withdraw_site(letter, site));
        // Withdrawn: no AS may select the site any more.
        for family in Family::BOTH {
            assert!(!world.attracting_sites(letter, family).contains(&site));
        }
        assert_ne!(world.routing_hash(letter), before, "withdrawal is a no-op");
        // Double-withdraw and unknown sites are rejected.
        assert!(!world.withdraw_site(letter, site));
        assert!(!world.withdraw_site(letter, SiteId(9999)));
        assert!(world.restore_site(letter, site));
        assert_eq!(world.routing_hash(letter), before);
        assert!(!world.restore_site(letter, site));
    }

    #[test]
    fn zonemd_override_changes_generated_zones() {
        let mut world = tiny_world();
        let t = crate::schedule::MEASUREMENT_START + 100;
        let before = world.zone_at(t);
        world.set_zonemd_override(Some(RolloutPhase::Validating));
        let forced = world.zone_at(t);
        assert!(!Arc::ptr_eq(&before, &forced));
        world.set_zonemd_override(None);
        let after = world.zone_at(t);
        // Same config as the original build (fresh cache, equal content).
        assert_eq!(before.serial(), after.serial());
    }

    #[test]
    fn run_rounds_parallel_covers_exactly_given_rounds() {
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, short_config());
        let rounds: Vec<Round> = engine.config.schedule.rounds().take(3).collect();
        let sink = engine.run_rounds_parallel(&rounds, 2);
        let times: std::collections::BTreeSet<u32> = sink.probes.iter().map(|p| p.time).collect();
        let expected: std::collections::BTreeSet<u32> = rounds.iter().map(|r| r.time).collect();
        assert_eq!(times, expected);
    }

    #[test]
    fn resolve_candidate_prefers_serving_route() {
        use netsim::types::LearnedFrom;
        let mk = |site: u32, len: usize| CandidateRoute {
            site: SiteId(site),
            via: Some(netsim::AsId(100 + site)),
            learned_from: LearnedFrom::Provider,
            path: vec![netsim::AsId(1); len],
            km: 1000,
        };
        let cands = vec![mk(10, 2), mk(11, 2), mk(12, 5)];
        let near = vec![0, 1];
        // Near-equal candidate serving the site wins.
        assert_eq!(resolve_candidate(&cands, &near, SiteId(11)), 1);
        // Upstream redirect to a site outside the near set must resolve
        // to the candidate that actually serves it — the old fallback to
        // index 0 mis-attributed the path geometry.
        assert_eq!(resolve_candidate(&cands, &near, SiteId(12)), 2);
        // Site no candidate serves: packets leave via the local best.
        assert_eq!(resolve_candidate(&cands, &near, SiteId(99)), 0);
    }

    #[test]
    fn redirected_probes_use_serving_candidate_geometry() {
        // End-to-end shape of the bugfix: force an upstream override to a
        // site the near-equal set does not serve and check the engine's
        // resolution against the full candidate list for every VP.
        let world = tiny_world();
        let churn = ChurnModel::default();
        for letter in [RootLetter::D, RootLetter::G] {
            let table = world.routes(letter, Family::V4);
            for vp in world.population.vps().iter().take(50) {
                let cands = table.candidates(vp.asn);
                let near = churn.near_equal(table, vp.asn);
                for pool_site in world.attracting_sites(letter, Family::V4) {
                    let idx = resolve_candidate(cands, &near, *pool_site);
                    if let Some(serving) = cands.iter().position(|c| c.site == *pool_site) {
                        assert_eq!(
                            cands[idx].site, *pool_site,
                            "candidate {serving} serves the redirect site but {idx} was picked"
                        );
                    } else {
                        assert_eq!(idx, 0, "no serving candidate: fall back to best route");
                    }
                }
            }
        }
    }

    #[test]
    fn rtts_are_positive_and_bounded() {
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, short_config());
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        for p in &sink.probes {
            if let Some(rtt) = p.rtt_ms {
                assert!(rtt > 0.0 && rtt < 2000.0, "rtt {rtt}");
            }
        }
    }

    #[test]
    fn transfers_only_after_axfr_date() {
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, short_config());
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        for t in &sink.transfers {
            assert!(engine.config.schedule.axfr_active(t.time));
        }
    }

    #[test]
    fn zone_cache_returns_same_day_zone() {
        let world = tiny_world();
        let z1 = world.zone_at(crate::schedule::MEASUREMENT_START + 100);
        let z2 = world.zone_at(crate::schedule::MEASUREMENT_START + 50_000);
        assert!(Arc::ptr_eq(&z1, &z2));
        let z3 = world.zone_at(crate::schedule::MEASUREMENT_START + 100_000);
        assert!(!Arc::ptr_eq(&z1, &z3));
    }

    #[test]
    fn zone_serial_follows_root_convention() {
        let world = tiny_world();
        let z = world.zone_at(crate::schedule::MEASUREMENT_START);
        assert_eq!(z.serial().unwrap(), 2023070300);
    }

    #[test]
    fn skewed_vp_clock_differs_in_episode() {
        let world = tiny_world();
        let engine = MeasurementEngine::new(&world, MeasurementConfig::default());
        let skewed = world
            .population
            .vps()
            .iter()
            .find(|v| matches!(v.fault, VpFault::SkewedClock { .. }))
            .expect("population has a skewed VP");
        let ep = &engine.config.skew_episodes[0];
        assert_ne!(engine.vp_clock(skewed, ep.from + 10), ep.from + 10);
        assert_eq!(engine.vp_clock(skewed, ep.from - 10), ep.from - 10);
        let healthy = world
            .population
            .vps()
            .iter()
            .find(|v| matches!(v.fault, VpFault::None))
            .unwrap();
        assert_eq!(engine.vp_clock(healthy, ep.from + 10), ep.from + 10);
    }

    #[test]
    fn stale_window_tags_transfers() {
        use dns_crypto::validity::timestamp_from_ymd as ts;
        let world = tiny_world();
        // A schedule slice covering the Leeds window at full resolution.
        let cfg = MeasurementConfig {
            schedule: Schedule {
                start: ts("20231006090000").unwrap(),
                end: ts("20231006150000").unwrap(),
                subsample: 1,
                ..Schedule::default()
            },
            ..Default::default()
        };
        let engine = MeasurementEngine::new(&world, cfg);
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        let stale: Vec<&TransferRecord> = sink
            .transfers
            .iter()
            .filter(|t| matches!(t.fault, Some(TransferFault::Stale { .. })))
            .collect();
        // The tiny world may or may not route any VP to a Leeds d.root site;
        // if it does, the stale fault must be tagged with the stuck serial.
        for t in &stale {
            assert_eq!(t.target.letter, RootLetter::D);
            match t.fault {
                Some(TransferFault::Stale { serial }) => {
                    assert_eq!(serial, 2023091800);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn reachable_scopes_counts_candidates() {
        let world = tiny_world();
        let vp = &world.population.vps()[0];
        // f.root deploys both scopes; every VP must at least reach globals.
        let (global, local) = reachable_scopes(&world, RootLetter::F, Family::V4, vp.asn);
        assert!(global > 0, "no global candidates");
        // Candidate totals bounded by the deployment size.
        let total_sites = world.catalog.deployment(RootLetter::F).sites.len();
        assert!(global + local <= total_sites);
        // Letters without local sites never yield local candidates.
        let (_, b_local) = reachable_scopes(&world, RootLetter::B, Family::V4, vp.asn);
        assert_eq!(b_local, 0);
    }

    #[test]
    fn fig3_calibration_full_resolution() {
        // Step the churn process at the paper's full round count for a VP
        // sample; median changes must land near Figure 3's values
        // (b.root ≈ 8 for both families; g.root ≈ 36 v4 / 64 v6).
        let world = World::build(&WorldBuildConfig::default());
        let churn = ChurnModel::default();
        let rounds = Schedule::default().round_count();
        let median_changes = |letter: RootLetter, family: Family| -> u64 {
            let table = world.routes(letter, family);
            let mut counts: Vec<u64> = Vec::new();
            let rng_root = SimRng::new(1).derive("fig3-calib");
            for vp in world.population.vps().iter().take(150) {
                if family == Family::V6 && !vp.has_v6 {
                    continue;
                }
                let mut rng = rng_root.derive(&format!("{}/{}", vp.id.0, letter.ch()));
                let mut state = churn.initial();
                let mut prev = None;
                let mut changes = 0;
                for _ in 0..rounds {
                    let cur = churn.step_full(
                        table,
                        vp.asn,
                        &mut state,
                        &mut rng,
                        churn_multiplier(letter, family),
                        world.attracting_sites(letter, family),
                    );
                    if prev.is_some() && cur != prev {
                        changes += 1;
                    }
                    prev = cur;
                }
                counts.push(changes);
            }
            counts.sort_unstable();
            counts[counts.len() / 2]
        };
        let b4 = median_changes(RootLetter::B, Family::V4);
        let g4 = median_changes(RootLetter::G, Family::V4);
        let g6 = median_changes(RootLetter::G, Family::V6);
        // Bands around the paper's 8 / 36 / 64.
        assert!((1..=25).contains(&b4), "b.root v4 median {b4}");
        assert!((15..=80).contains(&g4), "g.root v4 median {g4}");
        assert!(g6 > g4, "g v6 ({g6}) should exceed v4 ({g4})");
        assert!(g4 > b4, "g ({g4}) should exceed b ({b4})");
    }

    #[test]
    fn serial_of_day_formats() {
        use dns_crypto::validity::timestamp_from_ymd as ts;
        assert_eq!(serial_of_day(ts("20231127000000").unwrap()), 2023112700);
    }
}
