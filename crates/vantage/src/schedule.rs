//! The measurement timeline (the paper's Figure 2).
//!
//! * Measurement window: 2023-07-03 to 2023-12-24 (174 days).
//! * Base interval: 30 minutes per VP.
//! * High-resolution windows (15 minutes): 2023-09-08..2023-10-02 (ZONEMD
//!   introduction) and 2023-11-20..2023-12-06 (b.root change + ZONEMD
//!   validation start).
//! * ZONEMD/AXFR queries were added to the script on 2023-07-31.

use dns_crypto::validity::timestamp_from_ymd;

/// 2023-07-03T00:00:00Z, measurement start.
pub const MEASUREMENT_START: u32 = 1_688_342_400;
/// 2023-12-24T00:00:00Z, measurement end.
pub const MEASUREMENT_END: u32 = 1_703_376_000;

/// One scheduled measurement round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Round {
    /// Round start (seconds since epoch).
    pub time: u32,
    /// Interval in force at this time (seconds).
    pub interval: u32,
}

/// The measurement schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub start: u32,
    pub end: u32,
    /// Base interval (seconds). The paper: 1800.
    pub base_interval: u32,
    /// High-resolution interval (seconds). The paper: 900.
    pub burst_interval: u32,
    /// High-resolution windows as (start, end) pairs.
    pub burst_windows: Vec<(u32, u32)>,
    /// When ZONEMD + AXFR queries joined the script.
    pub axfr_from: u32,
    /// Subsampling factor: only every n-th round is executed. 1 = the
    /// paper's full resolution; larger values trade temporal resolution for
    /// speed (shapes survive, see DESIGN.md §3).
    pub subsample: u32,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule {
            start: MEASUREMENT_START,
            end: MEASUREMENT_END,
            base_interval: 1800,
            burst_interval: 900,
            burst_windows: vec![
                (
                    timestamp_from_ymd("20230908000000").unwrap(),
                    timestamp_from_ymd("20231002000000").unwrap(),
                ),
                (
                    timestamp_from_ymd("20231120000000").unwrap(),
                    timestamp_from_ymd("20231206000000").unwrap(),
                ),
            ],
            axfr_from: timestamp_from_ymd("20230731000000").unwrap(),
            subsample: 1,
        }
    }
}

impl Schedule {
    /// A heavily subsampled schedule for tests/examples (every `n`-th round).
    pub fn subsampled(n: u32) -> Self {
        Schedule {
            subsample: n.max(1),
            ..Default::default()
        }
    }

    /// Add a high-resolution window of `half_width` seconds on each side
    /// of every time in `times` (clamped to the schedule span) — the
    /// paper's intensified probing around change events, applied by the
    /// scenario engine at event boundaries. Windows are appended; overlap
    /// with existing windows is harmless since [`Schedule::interval_at`]
    /// takes any matching window.
    pub fn with_bursts_around(mut self, times: &[u32], half_width: u32) -> Self {
        for &t in times {
            let from = t.saturating_sub(half_width).max(self.start);
            let until = t.saturating_add(half_width).min(self.end);
            if from < until {
                self.burst_windows.push((from, until));
            }
        }
        self
    }

    /// The interval in force at `time`.
    pub fn interval_at(&self, time: u32) -> u32 {
        if self
            .burst_windows
            .iter()
            .any(|&(s, e)| time >= s && time < e)
        {
            self.burst_interval
        } else {
            self.base_interval
        }
    }

    /// Whether AXFR/ZONEMD queries run at `time`.
    pub fn axfr_active(&self, time: u32) -> bool {
        time >= self.axfr_from
    }

    /// Iterate all executed rounds.
    pub fn rounds(&self) -> ScheduleIter<'_> {
        ScheduleIter {
            schedule: self,
            next_time: self.start,
            emitted: 0,
        }
    }

    /// Total number of executed rounds.
    pub fn round_count(&self) -> usize {
        self.rounds().count()
    }
}

/// Iterator over scheduled rounds.
pub struct ScheduleIter<'a> {
    schedule: &'a Schedule,
    next_time: u32,
    emitted: u64,
}

impl Iterator for ScheduleIter<'_> {
    type Item = Round;

    fn next(&mut self) -> Option<Round> {
        while self.next_time < self.schedule.end {
            let time = self.next_time;
            let interval = self.schedule.interval_at(time);
            self.next_time = time + interval;
            let n = self.schedule.subsample as u64;
            // Stratified subsampling: keep one round per block of `n`, at a
            // deterministic per-block offset (SplitMix64 of the block id).
            // A fixed offset would pin every kept round to the same time of
            // day and systematically miss short events like the Table 2
            // stale-site windows.
            let block = self.emitted / n;
            let offset = if n == 1 { 0 } else { splitmix(block) % n };
            let take = self.emitted % n == offset;
            self.emitted += 1;
            if take {
                return Some(Round { time, interval });
            }
        }
        None
    }
}

/// SplitMix64 finalizer (for the per-block sampling offset).
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_174_days() {
        assert_eq!((MEASUREMENT_END - MEASUREMENT_START) / 86400, 174);
    }

    #[test]
    fn intervals_match_figure2() {
        let s = Schedule::default();
        // Base period.
        assert_eq!(
            s.interval_at(timestamp_from_ymd("20230801000000").unwrap()),
            1800
        );
        // First burst window.
        assert_eq!(
            s.interval_at(timestamp_from_ymd("20230915000000").unwrap()),
            900
        );
        // Between bursts.
        assert_eq!(
            s.interval_at(timestamp_from_ymd("20231015000000").unwrap()),
            1800
        );
        // Second burst window.
        assert_eq!(
            s.interval_at(timestamp_from_ymd("20231125000000").unwrap()),
            900
        );
        // After second burst.
        assert_eq!(
            s.interval_at(timestamp_from_ymd("20231210000000").unwrap()),
            1800
        );
    }

    #[test]
    fn axfr_starts_july_31() {
        let s = Schedule::default();
        assert!(!s.axfr_active(timestamp_from_ymd("20230730000000").unwrap()));
        assert!(s.axfr_active(timestamp_from_ymd("20230731000000").unwrap()));
    }

    #[test]
    fn rounds_are_monotone_and_in_window() {
        let s = Schedule::subsampled(48);
        let rounds: Vec<Round> = s.rounds().collect();
        assert!(!rounds.is_empty());
        for w in rounds.windows(2) {
            assert!(w[1].time > w[0].time);
        }
        assert!(rounds.first().unwrap().time >= s.start);
        assert!(rounds.last().unwrap().time < s.end);
    }

    #[test]
    fn full_round_count_magnitude() {
        // 174 days at 30 min ≈ 8,352 rounds; bursts add ~40 days' worth of
        // extra rounds (≈ 1,920). Expect roughly 10k.
        let n = Schedule::default().round_count();
        assert!((9_000..12_000).contains(&n), "rounds: {n}");
    }

    #[test]
    fn subsample_divides_count() {
        let full = Schedule::default().round_count();
        let sub = Schedule::subsampled(10).round_count();
        let ratio = full as f64 / sub as f64;
        assert!((ratio - 10.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn burst_rounds_are_denser() {
        let s = Schedule::default();
        let in_burst = s.rounds().filter(|r| r.interval == 900).count();
        assert!(in_burst > 1000, "burst rounds: {in_burst}");
    }
}
