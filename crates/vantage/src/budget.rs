//! Measurement budget accounting — the paper's Appendix B arithmetic.
//!
//! The script sends **47 DNS queries to each root-server IP** per round
//! (4 zone queries + 4 CHAOS identity queries + 13 × A/AAAA/TXT), plus one
//! AXFR and one traceroute per IP. With 27 service IPs (13 letters × v4+v6,
//! plus b.root's second address pair), that is 1,269 queries per VP per
//! round — "888,300 queries per measurement" across 675 VPs (privacy/load
//! math the paper uses to argue the footprint stays under 0.1% of root
//! traffic).

use crate::schedule::Schedule;

/// Queries per (VP, service IP) per round: the Appendix F set.
pub const QUERIES_PER_IP: u64 = 47;

/// Service IPs probed per round: 13 letters × 2 families + the extra
/// b.root address in both families.
pub const SERVICE_IPS: u64 = 28;

/// Estimated totals for a measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    pub rounds: u64,
    pub vps: u64,
    /// Plain DNS queries.
    pub dns_queries: u64,
    /// Zone transfers (one per service IP per round once AXFR is active).
    pub zone_transfers: u64,
    /// Traceroutes (one per service IP per round).
    pub traceroutes: u64,
}

impl Budget {
    /// Estimate for `schedule` over `vps` vantage points.
    ///
    /// AXFR only counts from its activation date (2023-07-31 in the paper).
    pub fn estimate(schedule: &Schedule, vps: u64) -> Budget {
        let mut rounds = 0u64;
        let mut axfr_rounds = 0u64;
        for round in schedule.rounds() {
            rounds += 1;
            if schedule.axfr_active(round.time) {
                axfr_rounds += 1;
            }
        }
        Budget {
            rounds,
            vps,
            dns_queries: rounds * vps * SERVICE_IPS * QUERIES_PER_IP,
            zone_transfers: axfr_rounds * vps * SERVICE_IPS,
            traceroutes: rounds * vps * SERVICE_IPS,
        }
    }

    /// Queries per measurement round across all VPs (the paper: 888,300).
    pub fn queries_per_round(&self) -> u64 {
        self.vps * SERVICE_IPS * QUERIES_PER_IP
    }

    /// Render a short summary.
    pub fn render(&self) -> String {
        format!(
            "{} rounds x {} VPs: {:.1}B DNS queries, {:.0}M zone transfers, {:.0}M traceroutes \
             ({} queries per round)",
            self.rounds,
            self.vps,
            self.dns_queries as f64 / 1e9,
            self.zone_transfers as f64 / 1e6,
            self.traceroutes as f64 / 1e6,
            self.queries_per_round(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_round_footprint_matches_appendix_b() {
        // Paper: "47 queries to each root-server IP in each measurement
        // interval ... a total of 888,300 queries per measurement".
        // 888,300 / 675 VPs / 47 = 28 service IPs.
        let b = Budget::estimate(&Schedule::subsampled(1000), 675);
        assert_eq!(b.queries_per_round(), 888_300);
    }

    #[test]
    fn full_campaign_magnitude_matches_dataset() {
        // Paper dataset: 7.7B queries, 78M transfers, 169M traceroutes.
        // The estimate is an upper bound (no VP downtime in the estimate),
        // so expect the same order of magnitude, somewhat above.
        let b = Budget::estimate(&Schedule::default(), 675);
        assert!(
            (6.0e9..1.5e10).contains(&(b.dns_queries as f64)),
            "queries {}",
            b.dns_queries
        );
        assert!(
            (5.0e7..3.0e8).contains(&(b.zone_transfers as f64)),
            "transfers {}",
            b.zone_transfers
        );
        assert!(
            (1.0e8..4.0e8).contains(&(b.traceroutes as f64)),
            "traceroutes {}",
            b.traceroutes
        );
    }

    #[test]
    fn axfr_only_after_activation() {
        let b = Budget::estimate(&Schedule::default(), 675);
        // AXFR started four weeks into the campaign: transfers < traceroutes.
        assert!(b.zone_transfers < b.traceroutes);
    }

    #[test]
    fn subsampling_scales_linearly() {
        let full = Budget::estimate(&Schedule::default(), 675);
        let sub = Budget::estimate(&Schedule::subsampled(10), 675);
        let ratio = full.dns_queries as f64 / sub.dns_queries as f64;
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn render_mentions_scale() {
        let b = Budget::estimate(&Schedule::default(), 675);
        let txt = b.render();
        assert!(txt.contains("B DNS queries"));
        assert!(txt.contains("888300 queries per round"));
    }
}
