//! Vantage points and the active measurement engine.
//!
//! Models the paper's NLNOG-RING-based measurement (§4.1): 675 vantage
//! points distributed per Table 3, probing every root server letter over
//! IPv4 and IPv6 on the Figure 2 schedule (30-minute rounds, reduced to
//! 15 minutes around the ZONEMD and b.root change windows), issuing per
//! round the Appendix F query set: traceroute, A/AAAA/TXT, NS, SOA/ZONEMD,
//! CHAOS identity, and a full AXFR.
//!
//! * [`population`] — VP synthesis matching Table 3's regional distribution,
//!   plus the fault assignments behind Table 2 (faulty-RAM VPs, skewed-clock
//!   VPs);
//! * [`schedule`] — the measurement timeline and round iterator;
//! * [`records`] — the compact observation records the analyses consume;
//! * [`engine`] — the driver that walks rounds × VPs × targets and streams
//!   records into a sink.

pub mod budget;
pub mod dataset;
pub mod engine;
pub mod population;
pub mod records;
pub mod schedule;

pub use engine::{
    EngineOverrides, EngineSession, LetterOverrides, MeasurementConfig, MeasurementEngine,
    MeasurementSink, VecSink, World, WorldBuildConfig,
};
pub use population::{Population, PopulationConfig, VantagePoint, VpFault, VpId};
pub use records::{ProbeRecord, Target, TransferFault, TransferRecord};
pub use schedule::{Round, Schedule, MEASUREMENT_END, MEASUREMENT_START};
