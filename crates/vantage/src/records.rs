//! Compact observation records.
//!
//! The paper's raw dataset is 7.7 B queries; storing every response body is
//! infeasible and unnecessary — each analysis needs a handful of fields per
//! probe. These records capture exactly those fields. Zone transfers are
//! recorded by *reference* (zone serial + fault tag): the validation
//! pipeline re-materializes the affected zone copies once per distinct
//! combination instead of per transfer, which is also how the paper's
//! pipeline deduplicated 75 M transfers into 15 distinct failing files.

use crate::population::VpId;
use netsim::anycast::SiteId;
use netsim::Family;
use rss::{BRootPhase, RootLetter};
use serde::{Deserialize, Serialize};

/// A probe target: a letter, with b.root split into old/new addresses
/// (the measurement script probes both during the transition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Target {
    pub letter: RootLetter,
    pub b_phase: BRootPhase,
}

impl Target {
    /// The 14 probe targets: a..m plus the second b.root address.
    pub fn all() -> Vec<Target> {
        let mut out = Vec::with_capacity(14);
        for letter in RootLetter::ALL {
            out.push(Target {
                letter,
                b_phase: BRootPhase::Old,
            });
            if letter == RootLetter::B {
                out.push(Target {
                    letter,
                    b_phase: BRootPhase::New,
                });
            }
        }
        out
    }

    /// Figure label, e.g. `b.root (new)` / `g.root`.
    pub fn label(&self) -> String {
        if self.letter == RootLetter::B {
            match self.b_phase {
                BRootPhase::Old => "b.root (old)".to_string(),
                BRootPhase::New => "b.root (new)".to_string(),
            }
        } else {
            self.letter.label()
        }
    }
}

/// One active probe observation (one VP, one target, one family, one round).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Round time (seconds since epoch).
    pub time: u32,
    pub vp: VpId,
    pub target: Target,
    pub family: Family,
    /// The anycast site that answered (None = unreachable/timeout).
    pub site: Option<SiteId>,
    /// Measured RTT in ms (None when unreachable).
    pub rtt_ms: Option<f64>,
    /// Second-to-last traceroute hop identity (None = hop missing).
    pub second_to_last_hop: Option<u64>,
    /// `hostname.bind`/`id.server` answer, as observed.
    pub identity: Option<String>,
}

/// Fault tags attached to a zone transfer observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TransferFault {
    /// Single-bit corruption on the receiving VP; the seed reproduces the
    /// exact flip.
    Bitflip { seed: u64 },
    /// The answering site served a stale zone with this serial.
    Stale { serial: u32 },
}

/// One zone-transfer observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// True (wall-clock) observation time.
    pub time: u32,
    /// The VP's *local* clock at observation time (differs under skew; this
    /// is the timestamp validation uses, reproducing the paper's
    /// clock-skew-induced errors).
    pub vp_clock: u32,
    pub vp: VpId,
    pub target: Target,
    pub family: Family,
    /// Serial of the zone copy received (None = transfer failed).
    pub serial: Option<u32>,
    pub fault: Option<TransferFault>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_targets() {
        let all = Target::all();
        assert_eq!(all.len(), 14);
        let b_targets: Vec<&Target> = all.iter().filter(|t| t.letter == RootLetter::B).collect();
        assert_eq!(b_targets.len(), 2);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(
            Target {
                letter: RootLetter::B,
                b_phase: BRootPhase::New
            }
            .label(),
            "b.root (new)"
        );
        assert_eq!(
            Target {
                letter: RootLetter::G,
                b_phase: BRootPhase::Old
            }
            .label(),
            "g.root"
        );
    }

    #[test]
    fn targets_unique() {
        let all = Target::all();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
