//! Dataset export/import.
//!
//! The paper open-sources its measurement data (Appendix A); a downstream
//! user of this library likewise wants record streams on disk. Records
//! serialize as JSON Lines — one record per line, stream-friendly, and
//! diff-able — with a small header line carrying the schema version and
//! counts so readers can validate integrity cheaply.

use crate::records::{ProbeRecord, TransferRecord};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// Schema version for the JSONL container.
pub const SCHEMA_VERSION: u32 = 1;

/// Header line of a dataset file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetHeader {
    pub schema: u32,
    /// "probes" or "transfers".
    pub kind: String,
    pub count: u64,
    /// Seed of the world that produced the records (for provenance).
    pub seed: u64,
}

/// Errors reading a dataset.
#[derive(Debug)]
pub enum DatasetError {
    Io(io::Error),
    /// First line missing or not a header.
    MissingHeader,
    /// Schema newer than this reader understands.
    UnsupportedSchema(u32),
    /// The header kind does not match what the caller asked to read.
    WrongKind {
        expected: String,
        found: String,
    },
    /// A record line failed to parse.
    BadRecord {
        line_no: u64,
        message: String,
    },
    /// Fewer/more records than the header promised.
    CountMismatch {
        expected: u64,
        found: u64,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "io: {e}"),
            DatasetError::MissingHeader => write!(f, "missing dataset header"),
            DatasetError::UnsupportedSchema(v) => write!(f, "unsupported schema {v}"),
            DatasetError::WrongKind { expected, found } => {
                write!(f, "expected {expected} dataset, found {found}")
            }
            DatasetError::BadRecord { line_no, message } => {
                write!(f, "line {line_no}: {message}")
            }
            DatasetError::CountMismatch { expected, found } => {
                write!(f, "header promised {expected} records, found {found}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

/// Write probes as JSONL.
pub fn write_probes<W: Write>(
    mut w: W,
    probes: &[ProbeRecord],
    seed: u64,
) -> Result<(), DatasetError> {
    let header = DatasetHeader {
        schema: SCHEMA_VERSION,
        kind: "probes".into(),
        count: probes.len() as u64,
        seed,
    };
    serde_json::to_writer(&mut w, &header).map_err(to_io)?;
    w.write_all(b"\n")?;
    for p in probes {
        serde_json::to_writer(&mut w, p).map_err(to_io)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Write transfers as JSONL.
pub fn write_transfers<W: Write>(
    mut w: W,
    transfers: &[TransferRecord],
    seed: u64,
) -> Result<(), DatasetError> {
    let header = DatasetHeader {
        schema: SCHEMA_VERSION,
        kind: "transfers".into(),
        count: transfers.len() as u64,
        seed,
    };
    serde_json::to_writer(&mut w, &header).map_err(to_io)?;
    w.write_all(b"\n")?;
    for t in transfers {
        serde_json::to_writer(&mut w, t).map_err(to_io)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Read a probes dataset.
pub fn read_probes<R: BufRead>(r: R) -> Result<(DatasetHeader, Vec<ProbeRecord>), DatasetError> {
    read_dataset(r, "probes")
}

/// Read a transfers dataset.
pub fn read_transfers<R: BufRead>(
    r: R,
) -> Result<(DatasetHeader, Vec<TransferRecord>), DatasetError> {
    read_dataset(r, "transfers")
}

fn read_dataset<R: BufRead, T: for<'de> Deserialize<'de>>(
    r: R,
    kind: &str,
) -> Result<(DatasetHeader, Vec<T>), DatasetError> {
    let mut lines = r.lines();
    let header_line = lines.next().ok_or(DatasetError::MissingHeader)??;
    let header: DatasetHeader =
        serde_json::from_str(&header_line).map_err(|_| DatasetError::MissingHeader)?;
    if header.schema > SCHEMA_VERSION {
        return Err(DatasetError::UnsupportedSchema(header.schema));
    }
    if header.kind != kind {
        return Err(DatasetError::WrongKind {
            expected: kind.into(),
            found: header.kind.clone(),
        });
    }
    let mut records = Vec::with_capacity(header.count.min(1 << 24) as usize);
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: T = serde_json::from_str(&line).map_err(|e| DatasetError::BadRecord {
            line_no: i as u64 + 2,
            message: e.to_string(),
        })?;
        records.push(rec);
    }
    if records.len() as u64 != header.count {
        return Err(DatasetError::CountMismatch {
            expected: header.count,
            found: records.len() as u64,
        });
    }
    Ok((header, records))
}

fn to_io(e: serde_json::Error) -> DatasetError {
    DatasetError::Io(io::Error::other(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MeasurementConfig, MeasurementEngine, Schedule, VecSink, World, WorldBuildConfig};

    fn records() -> VecSink {
        let world = World::build(&WorldBuildConfig::tiny());
        let engine = MeasurementEngine::new(
            &world,
            MeasurementConfig {
                schedule: Schedule::subsampled(2000),
                ..Default::default()
            },
        );
        let mut sink = VecSink::default();
        engine.run(&mut sink);
        sink
    }

    #[test]
    fn probes_round_trip() {
        let sink = records();
        let mut buf = Vec::new();
        write_probes(&mut buf, &sink.probes, 42).unwrap();
        let (header, back) = read_probes(buf.as_slice()).unwrap();
        assert_eq!(header.seed, 42);
        assert_eq!(header.count as usize, sink.probes.len());
        assert_eq!(back, sink.probes);
    }

    #[test]
    fn transfers_round_trip() {
        let sink = records();
        let mut buf = Vec::new();
        write_transfers(&mut buf, &sink.transfers, 7).unwrap();
        let (_, back) = read_transfers(buf.as_slice()).unwrap();
        assert_eq!(back, sink.transfers);
    }

    #[test]
    fn kind_mismatch_rejected() {
        let sink = records();
        let mut buf = Vec::new();
        write_probes(&mut buf, &sink.probes, 1).unwrap();
        assert!(matches!(
            read_transfers(buf.as_slice()),
            Err(DatasetError::WrongKind { .. })
        ));
    }

    #[test]
    fn truncated_file_detected() {
        let sink = records();
        let mut buf = Vec::new();
        write_probes(&mut buf, &sink.probes, 1).unwrap();
        // Drop the last line.
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            read_probes(truncated.as_bytes()),
            Err(DatasetError::CountMismatch { .. })
        ));
    }

    #[test]
    fn garbage_line_reported_with_number() {
        let sink = records();
        let mut buf = Vec::new();
        write_probes(&mut buf, &sink.probes[..1], 1).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("not json\n");
        match read_probes(text.as_bytes()) {
            Err(DatasetError::BadRecord { line_no, .. }) => assert_eq!(line_no, 3),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_header_detected() {
        assert!(matches!(
            read_probes(&b"{\"not\":\"a header\"}\n"[..]),
            Err(DatasetError::MissingHeader) | Err(DatasetError::WrongKind { .. })
        ));
        assert!(matches!(
            read_probes(&b""[..]),
            Err(DatasetError::MissingHeader)
        ));
    }
}
