//! Vantage point population.
//!
//! Synthesizes a VP set with the regional distribution of the paper's
//! Table 3 (675 VPs; Europe 435, North America 133, Asia 52, Oceania 32,
//! South America 13, Africa 10; 523 distinct networks), placing each VP in
//! a stub AS of the simulated topology. A few VPs carry the hardware/clock
//! faults that generate Table 2's validation errors.

use netgeo::{Coord, Region};
use netsim::{AsId, SimRng, Topology};
use serde::{Deserialize, Serialize};

/// Vantage point identifier (index into the population).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VpId(pub u32);

/// Fault assignment for a VP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VpFault {
    /// Healthy.
    None,
    /// Faulty RAM: each received zone transfer has `flip_prob` chance of a
    /// single-bit corruption.
    FaultyRam { flip_prob: f64 },
    /// Unreliable clock: during fault episodes the VP's clock is off by
    /// `offset_secs`.
    SkewedClock { offset_secs: i64 },
}

/// One vantage point.
#[derive(Debug, Clone)]
pub struct VantagePoint {
    pub id: VpId,
    /// Synthetic node name, NLNOG style (`vp042.ring.example`).
    pub name: String,
    /// The stub AS hosting this VP.
    pub asn: AsId,
    pub region: Region,
    /// VP coordinates (its AS's home city).
    pub coord: Coord,
    pub fault: VpFault,
    /// Whether the VP has working IPv6 (inherited from its AS).
    pub has_v6: bool,
}

/// Population synthesis parameters.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// VPs per region in Table 3 order
    /// (Africa, Asia, Europe, North America, South America, Oceania).
    pub per_region: [usize; 6],
    /// Number of VPs with faulty RAM (paper: bitflips on 3 VPs).
    pub faulty_ram_vps: usize,
    /// Per-transfer bitflip probability on a faulty VP.
    pub ram_flip_prob: f64,
    /// Number of VPs with skewed clocks (paper: 2 VPs).
    pub skewed_clock_vps: usize,
    /// Clock offset magnitude for skewed VPs (seconds behind).
    pub clock_offset_secs: i64,
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            // Table 3: Africa 10, Asia 52, Europe 435, NA 133, SA 13, Oceania 32.
            per_region: [10, 52, 435, 133, 13, 32],
            faulty_ram_vps: 3,
            ram_flip_prob: 2e-4,
            skewed_clock_vps: 2,
            clock_offset_secs: -5400, // 90 minutes behind
            seed: 0x2023_0703,
        }
    }
}

impl PopulationConfig {
    /// A small population for unit tests (same regional shape, ~1/10th).
    pub fn tiny() -> Self {
        PopulationConfig {
            per_region: [2, 5, 40, 13, 2, 3],
            ..Default::default()
        }
    }
}

/// The VP population.
#[derive(Debug, Clone)]
pub struct Population {
    vps: Vec<VantagePoint>,
}

impl Population {
    /// Synthesize VPs over the topology's stub ASes.
    ///
    /// Most VPs get their own AS (the paper: 675 VPs in 523 networks —
    /// ~77% unique); the rest share an AS with an earlier VP.
    pub fn synthesize(topology: &Topology, cfg: &PopulationConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed).derive("population");
        let mut vps = Vec::new();
        for region in Region::ALL {
            let stubs = topology.stubs_in(region);
            assert!(
                !stubs.is_empty(),
                "topology lacks stubs in {region}; cannot place VPs"
            );
            let want = cfg.per_region[region.index()];
            // Per-region unique-network ratios from Table 3 (networks/VPs):
            // Africa 9/10, Asia 31/52, Europe 386/435, NA 94/133, SA 12/13,
            // Oceania 22/32.
            let unique_ratio = [0.90, 0.60, 0.89, 0.71, 0.92, 0.69][region.index()];
            let mut shuffled = stubs.clone();
            rng.shuffle(&mut shuffled);
            for i in 0..want {
                let asn = if i < shuffled.len() && (i as f64) < want as f64 * unique_ratio {
                    shuffled[i]
                } else {
                    *rng.pick(&shuffled)
                };
                let node = topology.node(asn);
                let id = VpId(vps.len() as u32);
                vps.push(VantagePoint {
                    id,
                    name: format!("vp{:03}.ring.example", id.0),
                    asn,
                    region,
                    coord: node.coord(),
                    fault: VpFault::None,
                    has_v6: node.has_v6,
                });
            }
        }
        // Assign faults deterministically: spread across regions with many
        // VPs (faults were observed on European/NA VPs in practice).
        let mut fault_rng = SimRng::new(cfg.seed).derive("faults");
        let mut candidates: Vec<usize> = (0..vps.len()).collect();
        fault_rng.shuffle(&mut candidates);
        let mut it = candidates.into_iter();
        for _ in 0..cfg.faulty_ram_vps {
            if let Some(i) = it.next() {
                vps[i].fault = VpFault::FaultyRam {
                    flip_prob: cfg.ram_flip_prob,
                };
            }
        }
        for _ in 0..cfg.skewed_clock_vps {
            if let Some(i) = it.next() {
                vps[i].fault = VpFault::SkewedClock {
                    offset_secs: cfg.clock_offset_secs,
                };
            }
        }
        Population { vps }
    }

    /// All VPs.
    pub fn vps(&self) -> &[VantagePoint] {
        &self.vps
    }

    /// Number of VPs.
    pub fn len(&self) -> usize {
        self.vps.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.vps.is_empty()
    }

    /// VP by id.
    pub fn get(&self, id: VpId) -> &VantagePoint {
        &self.vps[id.0 as usize]
    }

    /// VPs in `region`.
    pub fn in_region(&self, region: Region) -> impl Iterator<Item = &VantagePoint> {
        self.vps.iter().filter(move |v| v.region == region)
    }

    /// Count of distinct ASes (the paper's "unique networks").
    pub fn unique_networks(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for vp in &self.vps {
            set.insert(vp.asn);
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TopologyConfig;

    fn pop() -> Population {
        let t = Topology::generate(&TopologyConfig::default());
        Population::synthesize(&t, &PopulationConfig::default())
    }

    #[test]
    fn total_is_675() {
        assert_eq!(pop().len(), 675);
    }

    #[test]
    fn regional_distribution_matches_table3() {
        let p = pop();
        assert_eq!(p.in_region(Region::Africa).count(), 10);
        assert_eq!(p.in_region(Region::Asia).count(), 52);
        assert_eq!(p.in_region(Region::Europe).count(), 435);
        assert_eq!(p.in_region(Region::NorthAmerica).count(), 133);
        assert_eq!(p.in_region(Region::SouthAmerica).count(), 13);
        assert_eq!(p.in_region(Region::Oceania).count(), 32);
    }

    #[test]
    fn many_unique_networks() {
        // Paper: 523 networks for 675 VPs. The exact count depends on the
        // topology's stub pool; require the same flavour (most VPs have
        // their own AS, some share).
        let p = pop();
        let unique = p.unique_networks();
        assert!(unique > 350, "unique networks: {unique}");
        assert!(unique < p.len(), "expected some sharing, got all-unique");
    }

    #[test]
    fn fault_assignments_match_config() {
        let p = pop();
        let ram = p
            .vps()
            .iter()
            .filter(|v| matches!(v.fault, VpFault::FaultyRam { .. }))
            .count();
        let clock = p
            .vps()
            .iter()
            .filter(|v| matches!(v.fault, VpFault::SkewedClock { .. }))
            .count();
        assert_eq!(ram, 3);
        assert_eq!(clock, 2);
    }

    #[test]
    fn deterministic_synthesis() {
        let t = Topology::generate(&TopologyConfig::default());
        let a = Population::synthesize(&t, &PopulationConfig::default());
        let b = Population::synthesize(&t, &PopulationConfig::default());
        for (x, y) in a.vps().iter().zip(b.vps()) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn vps_inherit_v6_from_as() {
        let t = Topology::generate(&TopologyConfig::default());
        let p = Population::synthesize(&t, &PopulationConfig::default());
        for vp in p.vps() {
            assert_eq!(vp.has_v6, t.node(vp.asn).has_v6);
        }
        // Some of each kind exist.
        assert!(p.vps().iter().any(|v| v.has_v6));
        assert!(p.vps().iter().any(|v| !v.has_v6));
    }

    #[test]
    fn tiny_population_keeps_shape() {
        let t = Topology::generate(&TopologyConfig::default());
        let p = Population::synthesize(&t, &PopulationConfig::tiny());
        assert!(p.in_region(Region::Europe).count() > p.in_region(Region::Africa).count());
    }
}
