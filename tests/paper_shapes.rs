//! Paper-shape assertions: the qualitative results the reproduction must
//! match (who wins, roughly by what factor, where the crossovers fall).
//! Runs on a mid-size configuration: full world, subsampled schedule.

use analysis::colocation::ColocationResult;
use analysis::distance::DistanceResult;
use analysis::stability::StabilityResult;
use analysis::traffic::BRootShift;
use dns_crypto::validity::timestamp_from_ymd as ts;
use netgeo::Region;
use netsim::Family;
use rss::{BRootPhase, RootLetter};
use std::sync::OnceLock;
use traces::flows::DayBucket;
use traces::gen::{generate_flows, ObservationWindow, TraceConfig};
use vantage::records::Target;
use vantage::{MeasurementConfig, MeasurementEngine, Schedule, VecSink, World, WorldBuildConfig};

struct Run {
    world: World,
    sink: VecSink,
}

fn run() -> &'static Run {
    static R: OnceLock<Run> = OnceLock::new();
    R.get_or_init(|| {
        let world = World::build(&WorldBuildConfig::default());
        let engine = MeasurementEngine::new(
            &world,
            MeasurementConfig {
                schedule: Schedule::subsampled(120),
                ..Default::default()
            },
        );
        let sink = engine.run_parallel(2);
        Run { world, sink }
    })
}

fn target(letter: RootLetter) -> Target {
    Target {
        letter,
        b_phase: BRootPhase::Old,
    }
}

#[test]
fn shape_sec5_colocation_prevalent() {
    // Paper: ~70% of VPs observe co-location of >=2 letters; max 12.
    let r = run();
    let coloc = ColocationResult::compute(&r.sink.probes);
    let frac = coloc.fraction_with_colocation(2);
    assert!(
        (0.5..=1.0).contains(&frac),
        "co-location fraction {frac} out of the paper's band"
    );
    assert!(
        coloc.max_reduced() >= 5,
        "max reduced {}",
        coloc.max_reduced()
    );
}

#[test]
fn shape_fig5_sparse_deployments_mostly_optimal() {
    // Paper: 78-82% of b.root/m.root requests reach closest-global-or-
    // closer.
    let r = run();
    for letter in [RootLetter::B, RootLetter::M] {
        let d = DistanceResult::compute(
            &r.world.catalog,
            &r.world.population,
            &r.sink.probes,
            target(letter),
            Family::V4,
        );
        let frac = d.optimal_fraction(300.0);
        assert!(frac > 0.6, "{letter}: {frac}");
        // Tail inflation reaches thousands of km (paper: up to ~15,000).
        assert!(d.max_inflation_km() > 3_000.0);
    }
}

#[test]
fn shape_fig6_deployment_size_wins_on_rtt() {
    // Larger deployments offer lower median RTT (paper §2, Koch et al.).
    let r = run();
    let rtt = analysis::rtt::RttByRegion::compute(&r.world.population, &r.sink.probes);
    let med = |letter: RootLetter| {
        rtt.get(Region::Europe, target(letter), Family::V4)
            .map(|s| s.median)
            .expect("data")
    };
    // f.root (345 sites) beats b.root (6 sites) in Europe.
    assert!(med(RootLetter::F) < med(RootLetter::B));
    // k.root (116) also beats b.root.
    assert!(med(RootLetter::K) < med(RootLetter::B));
}

#[test]
fn shape_fig3_small_letters_differ_in_stability() {
    // Paper: b.root and g.root both have 6 sites, yet their change counts
    // differ; the eCDFs must not be degenerate (some VPs see changes).
    let r = run();
    let stability = StabilityResult::compute(&r.sink.probes);
    let total_changes = |letter: RootLetter, family: Family| -> u64 {
        stability
            .series_for(target(letter), family)
            .map(|s| s.changes_per_vp.values().sum())
            .unwrap_or(0)
    };
    let any_changes: u64 = RootLetter::ALL
        .iter()
        .map(|l| total_changes(*l, Family::V4) + total_changes(*l, Family::V6))
        .sum();
    assert!(any_changes > 0, "no site changes at all — churn model dead");
}

#[test]
fn shape_fig7_isp_shift_v6_more_complete_than_v4() {
    // Paper: in-family shift at the ISP is 87.1% (v4) vs 96.3% (v6).
    let mut cfg = TraceConfig::isp(1);
    cfg.population.clients_per_family = 2000;
    let flows = generate_flows(&cfg, &[ObservationWindow::isp_windows()[1]]);
    let shift = BRootShift::compute(&flows);
    let from = DayBucket::of(ts("20240205000000").unwrap());
    let until = DayBucket::of(ts("20240304000000").unwrap());
    let v4 = shift.in_family_shift(Family::V4, from, until);
    let v6 = shift.in_family_shift(Family::V6, from, until);
    assert!(v6 > v4, "v6 {v6} <= v4 {v4}");
    assert!((0.75..0.95).contains(&v4), "v4 {v4}");
    assert!(v6 > 0.88, "v6 {v6}");
}

#[test]
fn shape_fig9_eu_eager_na_reluctant() {
    // Paper: 60.8% (EU) vs 16.5% (NA) of IXP v6 traffic shifts.
    let from = DayBucket::of(ts("20231128000000").unwrap());
    let until = DayBucket::of(ts("20231228000000").unwrap());
    let shift_of = |region: Region| {
        let mut cfg = TraceConfig::ixp(region, 2);
        cfg.population.clients_per_family = 2000;
        let flows = generate_flows(&cfg, &[ObservationWindow::ixp_windows()[0]]);
        BRootShift::compute(&flows).in_family_shift(Family::V6, from, until)
    };
    let eu = shift_of(Region::Europe);
    let na = shift_of(Region::NorthAmerica);
    assert!((0.45..0.8).contains(&eu), "eu {eu}");
    assert!((0.05..0.35).contains(&na), "na {na}");
}

#[test]
fn shape_fig4_redundancy_varies_by_region() {
    // Paper Figure 4: all regions show co-location; magnitudes differ.
    let r = run();
    let coloc = ColocationResult::compute(&r.sink.probes);
    let means = coloc.mean_by_region(&r.world.population);
    for region in Region::ALL {
        let v4 = means[region.index()][0];
        assert!(v4 < 6.0, "{region}: v4 mean {v4} absurdly high");
    }
    // Somewhere the mean is non-trivial.
    assert!(Region::ALL
        .iter()
        .any(|r| means[r.index()][0] > 0.3 || means[r.index()][1] > 0.3));
}

#[test]
fn shape_table1_small_letters_fully_covered() {
    // Paper Table 1: b, c, g, h global coverage is 100%; giant local
    // deployments (d, e, f) stay partially covered.
    let r = run();
    let report = analysis::coverage::CoverageReport::compute(&r.world.catalog, &r.sink.probes);
    for letter in [RootLetter::B, RootLetter::C, RootLetter::G, RootLetter::H] {
        let row = &report.worldwide[letter.index()];
        let pct = row.global_pct().unwrap();
        assert!(pct > 80.0, "{letter}: global coverage {pct}");
    }
    for letter in [RootLetter::D, RootLetter::E, RootLetter::F] {
        let row = &report.worldwide[letter.index()];
        let pct = row.local_pct().unwrap();
        assert!(pct < 90.0, "{letter}: local coverage {pct} too complete");
    }
}
