//! End-to-end local-root scenario: the RFC 7706/8806 service running
//! against the *simulated world's* own zone store and servers over many
//! days, crossing the ZONEMD roll-out boundary, with injected faults.

use dns_zone::corrupt::flip_rrsig_bit;
use localroot::{LocalRoot, RefreshOutcome, UpstreamSet, ValidationPolicy, ZonemdRequirement};
use rss::{RootLetter, RootServer, ServerBehavior};
use std::sync::Arc;
use vantage::{World, WorldBuildConfig};

const DAY: u32 = 86_400;

fn upstreams_for_day(world: &World, day_time: u32) -> UpstreamSet {
    let zone = world.zone_at(day_time);
    UpstreamSet {
        servers: [RootLetter::A, RootLetter::B, RootLetter::K]
            .into_iter()
            .map(|letter| {
                (
                    letter,
                    RootServer {
                        letter,
                        identity: Some(format!("{}1.sim", letter.ch())),
                        zone: zone.clone(),
                        behavior: ServerBehavior::default(),
                    },
                )
            })
            .collect(),
    }
}

#[test]
fn thirty_days_of_refreshes_against_the_world_zone_store() {
    let world = World::build(&WorldBuildConfig::tiny());
    let mut local = LocalRoot::new(ValidationPolicy::default());
    let start = vantage::schedule::MEASUREMENT_START;
    let mut updates = 0;
    for day in 0..30u32 {
        let now = start + day * DAY + 7200;
        let ups = upstreams_for_day(&world, now);
        match local.refresh(&ups, now).expect("refresh succeeds") {
            RefreshOutcome::Updated { serial, .. } => {
                updates += 1;
                assert_eq!(serial, vantage::engine::serial_of_day(now - now % DAY));
            }
            RefreshOutcome::AlreadyCurrent { .. } => {}
        }
        assert!(local.is_serving(now));
    }
    // The zone serial changes daily, so every day must update.
    assert_eq!(updates, 30);
    assert_eq!(local.metrics.transfers_rejected, 0);
}

#[test]
fn strict_policy_across_the_rollout_boundary() {
    // Before 2023-09-13 the zone has no ZONEMD: strict policy refuses.
    // After 2023-12-06 it validates: strict policy accepts.
    let world = World::build(&WorldBuildConfig::tiny());
    let mut strict = LocalRoot::new(ValidationPolicy::strict());

    let before = vantage::schedule::MEASUREMENT_START + 7200; // July: no record
    let ups = upstreams_for_day(&world, before);
    assert!(strict.refresh(&ups, before).is_err());

    let after = dns_crypto::validity::timestamp_from_ymd("20231210000000").unwrap() + 7200;
    let ups = upstreams_for_day(&world, after);
    assert!(strict.refresh(&ups, after).is_ok());
    assert!(strict.is_serving(after));
}

#[test]
fn opportunistic_policy_serves_through_all_phases() {
    let world = World::build(&WorldBuildConfig::tiny());
    let mut lr = LocalRoot::new(ValidationPolicy {
        zonemd: ZonemdRequirement::Opportunistic,
        require_rrsigs: true,
        max_age: 2 * DAY,
        serve_stale: true,
    });
    for date in ["20230710000000", "20230920000000", "20231210000000"] {
        let now = dns_crypto::validity::timestamp_from_ymd(date).unwrap() + 7200;
        let ups = upstreams_for_day(&world, now);
        lr.refresh(&ups, now)
            .expect("opportunistic accepts all phases");
        assert!(lr.is_serving(now), "{date}");
    }
}

#[test]
fn corrupted_primary_fallback_with_world_zones() {
    let world = World::build(&WorldBuildConfig::tiny());
    let now = dns_crypto::validity::timestamp_from_ymd("20231210000000").unwrap() + 7200;
    let zone = world.zone_at(now);
    let mut bad = (*zone).clone();
    flip_rrsig_bit(&mut bad, 5).unwrap();
    let ups = UpstreamSet {
        servers: vec![
            (
                RootLetter::A,
                RootServer {
                    letter: RootLetter::A,
                    identity: None,
                    zone: Arc::new(bad),
                    behavior: ServerBehavior::default(),
                },
            ),
            (
                RootLetter::K,
                RootServer {
                    letter: RootLetter::K,
                    identity: None,
                    zone: zone.clone(),
                    behavior: ServerBehavior::default(),
                },
            ),
        ],
    };
    let mut lr = LocalRoot::new(ValidationPolicy::strict());
    lr.set_primary(0);
    let out = lr.refresh(&ups, now).expect("fallback succeeds");
    assert!(matches!(
        out,
        RefreshOutcome::Updated {
            from_upstream: 1,
            attempts: 2,
            ..
        }
    ));
    assert_eq!(lr.metrics.fallbacks, 1);
    // Delegations answered from the validated copy.
    assert!(lr.delegation("com", now).is_some());
}
