//! Zone-integrity integration: zones built by `dns-zone` travel through
//! real wire-format AXFR messages (`dns-wire`) and come out byte-exact,
//! validating at every stage; every Table 2 fault class is reproducible end
//! to end.

use dns_crypto::DigestAlg;
use dns_wire::{Message, Name};
use dns_zone::axfr::{assemble_axfr, serve_axfr};
use dns_zone::corrupt::{flip_owner_label_bit, flip_rrsig_bit};
use dns_zone::masterfile::{parse_master_file, to_master_file};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use dns_zone::validate::{validate_zone, ValidationIssue};
use dns_zone::zonemd::{compute_zonemd, verify_zonemd};

fn zone_config() -> RootZoneConfig {
    RootZoneConfig {
        serial: 2023120600,
        tld_count: 30,
        inception: 1_701_820_800,
        expiration: 1_701_820_800 + 14 * 86400,
        rollout: RolloutPhase::Validating,
    }
}

#[test]
fn zone_survives_wire_axfr_and_validates() {
    let keys = ZoneKeys::from_seed(9);
    let zone = build_root_zone(&zone_config(), &keys);
    // Serve as messages, encode each to wire bytes, decode, reassemble.
    let messages = serve_axfr(&zone, 0xbeef, 64).unwrap();
    let wire_bytes: Vec<Vec<u8>> = messages.iter().map(|m| m.to_wire()).collect();
    let decoded: Vec<Message> = wire_bytes
        .iter()
        .map(|b| Message::from_wire(b).expect("decodes"))
        .collect();
    let received = assemble_axfr(&decoded, &Name::root()).unwrap();
    assert_eq!(verify_zonemd(&received), Ok(()));
    let report = validate_zone(&received, zone_config().inception + 60);
    assert!(report.is_valid(), "{:?}", report.issues);
    // Digest identical to the original zone's.
    assert_eq!(
        compute_zonemd(&zone, DigestAlg::Sha384).unwrap(),
        compute_zonemd(&received, DigestAlg::Sha384).unwrap()
    );
}

#[test]
fn zone_survives_master_file_round_trip() {
    let keys = ZoneKeys::from_seed(10);
    let zone = build_root_zone(&zone_config(), &keys);
    let text = to_master_file(&zone);
    let parsed = parse_master_file(&text, &Name::root()).unwrap();
    assert_eq!(verify_zonemd(&parsed), Ok(()));
    assert!(validate_zone(&parsed, zone_config().inception + 60).is_valid());
}

#[test]
fn every_table2_fault_class_reproducible() {
    let keys = ZoneKeys::from_seed(11);
    let cfg = zone_config();
    let zone = build_root_zone(&cfg, &keys);

    // Bogus Signature via bitflip.
    let mut flipped = zone.clone();
    flip_rrsig_bit(&mut flipped, 3).unwrap();
    let report = validate_zone(&flipped, cfg.inception + 60);
    assert!(report
        .issues
        .iter()
        .any(|i| matches!(i, ValidationIssue::BogusSignature { .. })));

    // Bogus via owner-label bitflip (the `.ruhr` case).
    let mut label_flipped = zone.clone();
    flip_owner_label_bit(&mut label_flipped, 4).unwrap();
    assert!(verify_zonemd(&label_flipped).is_err());

    // Signature expired via stale copy.
    let report = validate_zone(&zone, cfg.expiration + 1);
    assert!(report
        .issues
        .iter()
        .any(|i| matches!(i, ValidationIssue::SignatureExpired { .. })));

    // Sig. not incepted via skewed clock.
    let report = validate_zone(&zone, cfg.inception - 1);
    assert!(report
        .issues
        .iter()
        .any(|i| matches!(i, ValidationIssue::SignatureNotIncepted { .. })));
}

#[test]
fn rollout_phases_validate_as_observed_by_the_paper() {
    // CZDS/IANA behaviour: records appear 2023-09-21, validate from
    // 2023-12-06 — i.e. phase decides verifiability, content is intact
    // throughout.
    let keys = ZoneKeys::from_seed(12);
    for (phase, expect_ok) in [
        (RolloutPhase::NoRecord, false),
        (RolloutPhase::PrivateAlgorithm, false),
        (RolloutPhase::Validating, true),
    ] {
        let zone = build_root_zone(
            &RootZoneConfig {
                rollout: phase,
                ..zone_config()
            },
            &keys,
        );
        assert_eq!(verify_zonemd(&zone).is_ok(), expect_ok, "{phase:?}");
        // RRSIGs are valid in *every* phase — ZONEMD is additive.
        assert!(validate_zone(&zone, zone_config().inception + 60).is_valid());
    }
}

/// Property: no single bitflip anywhere in a serialized AXFR stream can
/// yield an *accepted* zone copy that differs from the original. Every
/// flipped stream either fails to decode, fails to reassemble, fails
/// ZONEMD/RRSIG validation — or (for flips in wire bits that don't feed
/// the assembled records, e.g. header flags) assembles back to the
/// bit-identical zone. This is the data-plane half of the chaos
/// harness's "corrupt copies never activate" invariant.
mod bitflip_property {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn frames() -> &'static (Vec<Vec<u8>>, Vec<u8>) {
        static FRAMES: OnceLock<(Vec<Vec<u8>>, Vec<u8>)> = OnceLock::new();
        FRAMES.get_or_init(|| {
            let zone = build_root_zone(&zone_config(), &ZoneKeys::from_seed(14));
            let wire = serve_axfr(&zone, 0xf00d, 64)
                .unwrap()
                .iter()
                .map(|m| m.to_wire())
                .collect();
            let digest = compute_zonemd(&zone, DigestAlg::Sha384).unwrap();
            (wire, digest)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn bitflipped_axfr_never_activates_a_differing_zone(
            frame_sel in any::<usize>(),
            byte_sel in any::<usize>(),
            bit in 0u8..8,
        ) {
            let (wire, want_digest) = frames();
            let mut flipped: Vec<Vec<u8>> = wire.clone();
            let fi = frame_sel % flipped.len();
            let bi = byte_sel % flipped[fi].len();
            flipped[fi][bi] ^= 1 << bit;

            let decoded: Result<Vec<Message>, _> =
                flipped.iter().map(|b| Message::from_wire(b)).collect();
            let Ok(messages) = decoded else { return Ok(()) };
            let Ok(received) = assemble_axfr(&messages, &Name::root()) else {
                return Ok(());
            };
            if verify_zonemd(&received).is_err() {
                return Ok(());
            }
            if !validate_zone(&received, zone_config().inception + 60).is_valid() {
                return Ok(());
            }
            // The copy passed every gate the refresh client applies —
            // then it must be bit-identical to the original zone.
            prop_assert_eq!(
                &compute_zonemd(&received, DigestAlg::Sha384).unwrap(),
                want_digest
            );
        }
    }
}

#[test]
fn server_transfers_match_direct_transfers() {
    use rss::{RootLetter, RootServer, ServerBehavior};
    use std::sync::Arc;
    let keys = ZoneKeys::from_seed(13);
    let zone = Arc::new(build_root_zone(&zone_config(), &keys));
    let server = RootServer {
        letter: RootLetter::K,
        identity: Some("ns1.fra.k.ripe.net".into()),
        zone: zone.clone(),
        behavior: ServerBehavior::default(),
    };
    let messages = server.serve_transfer(7).unwrap();
    let received = assemble_axfr(&messages, &Name::root()).unwrap();
    assert_eq!(
        compute_zonemd(&received, DigestAlg::Sha384).unwrap(),
        compute_zonemd(&zone, DigestAlg::Sha384).unwrap()
    );
}
