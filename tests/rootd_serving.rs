//! The serving-layer contract, end to end:
//!
//! 1. the in-proc and UDP/TCP loopback transports return **byte-identical**
//!    responses for the same query stream (the engine is deterministic and
//!    transports move raw bytes);
//! 2. the EDNS/TC matrix — a response larger than the advertised UDP
//!    payload size is truncated at a record boundary with TC set, and the
//!    same query over TCP yields the full, untruncated answer;
//! 3. the precompiled answer cache — cached responses are byte-identical
//!    to the fallback encode path across the whole matrix, and a zone
//!    reload (resign, or a scenario epoch boundary) bumps the cache
//!    generation and changes the served bytes in lockstep with an
//!    uncached engine.

use dns_wire::edns::{edns_of, set_edns, Edns};
use dns_wire::{Message, Name, Question, Rcode, RrType};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use dns_zone::Zone;
use rootd::{
    InprocTransport, LoopbackServer, Rootd, ServeOutcome, SiteIdentity, Transport, ZoneIndex,
};
use std::sync::Arc;

fn test_zone(serial: u32) -> Arc<Zone> {
    Arc::new(build_root_zone(
        &RootZoneConfig {
            serial,
            tld_count: 20,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        },
        &ZoneKeys::from_seed(42),
    ))
}

fn engine_for(zone: Arc<Zone>) -> Rootd {
    Rootd::new(
        Arc::new(ZoneIndex::build(zone)),
        SiteIdentity::named("iad7b"),
    )
}

fn engine() -> Arc<Rootd> {
    Arc::new(engine_for(test_zone(2023112000)))
}

/// A deterministic stream exercising every answer shape: apex data,
/// referrals, NXDOMAIN, NODATA, CHAOS identity, DNSSEC on and off,
/// several payload sizes, and the oversized priming response.
fn query_stream() -> Vec<Vec<u8>> {
    let mut queries = Vec::new();
    let mut id: u16 = 1;
    let mut push = |q: Message| queries.push(q.to_wire());
    for (name, rr_type) in [
        (".", RrType::Soa),
        (".", RrType::Ns),
        (".", RrType::Dnskey),
        (".", RrType::Txt),
        ("com.", RrType::A),
        ("com.", RrType::Ds),
        ("www.net.", RrType::Aaaa),
        ("org.", RrType::Ns),
        ("nosuchtld0000.", RrType::A),
        ("nosuchtld0001.", RrType::Mx),
        ("ns0.com.", RrType::A),
    ] {
        for dnssec in [false, true] {
            let mut q = Message::query(id, Question::new(Name::parse(name).unwrap(), rr_type));
            id += 1;
            if dnssec {
                set_edns(&mut q, &Edns::dnssec());
            }
            push(q);
        }
    }
    for chaos in ["hostname.bind.", "id.server.", "version.bind.", "whoami."] {
        push(Message::query(
            id,
            Question::chaos_txt(Name::parse(chaos).unwrap()),
        ));
        id += 1;
    }
    // Payload-size spread over the big priming response.
    for payload in [512u16, 700, 1232, 4096] {
        let mut q = Message::query(id, Question::new(Name::root(), RrType::Ns));
        id += 1;
        set_edns(
            &mut q,
            &Edns {
                udp_payload_size: payload,
                dnssec_ok: true,
                ..Default::default()
            },
        );
        push(q);
    }
    // NSID request.
    let mut q = Message::query(id, Question::new(Name::root(), RrType::Soa));
    set_edns(&mut q, &Edns::dnssec().with_nsid_request());
    push(q);
    queries
}

#[test]
fn inproc_and_loopback_transports_are_byte_identical() {
    let engine = engine();
    let server = LoopbackServer::spawn(Arc::clone(&engine)).expect("loopback binds");
    let mut inproc = InprocTransport::new(Arc::clone(&engine));
    let mut loopback = server.transport();
    for (i, wire) in query_stream().iter().enumerate() {
        let a = inproc.exchange_udp(wire).expect("in-proc never fails");
        let b = loopback.exchange_udp(wire).expect("loopback exchange");
        assert_eq!(a, b, "UDP response {i} differs between transports");
        let a = inproc.exchange_tcp(wire).expect("in-proc never fails");
        let b = loopback.exchange_tcp(wire).expect("loopback exchange");
        assert_eq!(a, b, "TCP response {i} differs between transports");
    }
}

#[test]
fn axfr_is_byte_identical_across_transports() {
    let engine = engine();
    let server = LoopbackServer::spawn(Arc::clone(&engine)).expect("loopback binds");
    let q = Message::query(77, Question::new(Name::root(), RrType::Axfr)).to_wire();
    let a = InprocTransport::new(Arc::clone(&engine))
        .exchange_tcp(&q)
        .unwrap();
    let b = server.transport().exchange_tcp(&q).unwrap();
    assert!(a.len() > 1, "AXFR streams multiple messages");
    assert_eq!(a, b);
}

#[test]
fn edns_tc_matrix() {
    let engine = engine();
    // The signed priming response overflows small budgets.
    let full_len = {
        let mut q = Message::query(0, Question::new(Name::root(), RrType::Ns));
        set_edns(&mut q, &Edns::dnssec());
        engine.serve_tcp(&q.to_wire())[0].len()
    };
    assert!(full_len > 512, "priming response is {full_len} bytes");

    for payload in [512u16, 700, 1232, 4096] {
        let mut q = Message::query(9, Question::new(Name::root(), RrType::Ns));
        set_edns(
            &mut q,
            &Edns {
                udp_payload_size: payload,
                dnssec_ok: true,
                ..Default::default()
            },
        );
        let wire = q.to_wire();
        let udp = engine.serve_udp(&wire).expect("answered");
        let limit = payload as usize;
        assert!(
            udp.len() <= limit,
            "udp response {} exceeds advertised {}",
            udp.len(),
            limit
        );
        // Record-boundary truncation: the datagram must still parse, with
        // section counts consistent with its contents.
        let parsed = Message::from_wire(&udp).expect("truncated response reparses");
        assert_eq!(parsed.header.rcode, Rcode::NoError);
        if (full_len) > limit {
            assert!(parsed.header.flags.truncated, "TC unset at {payload}");
        } else {
            assert!(!parsed.header.flags.truncated, "TC set at {payload}");
            assert_eq!(udp.len(), full_len);
        }
        // EDNS survives truncation: the OPT record is never dropped.
        assert!(edns_of(&parsed).is_some(), "OPT dropped at {payload}");

        // The TCP retry returns the complete answer.
        let tcp = engine.serve_tcp(&wire);
        assert_eq!(tcp.len(), 1);
        let full = Message::from_wire(&tcp[0]).expect("tcp response parses");
        assert!(!full.header.flags.truncated);
        assert_eq!(tcp[0].len(), full_len);
        assert_eq!(
            full.answers
                .iter()
                .filter(|r| r.rr_type == RrType::Ns)
                .count(),
            13
        );
        assert!(full.answers.iter().any(|r| r.rr_type == RrType::Rrsig));
        assert!(full.additionals.iter().any(|r| r.rr_type == RrType::Aaaa));
    }
}

/// Serve `wire` through both engines and assert the bytes agree; returns
/// whether the cached engine answered from the precompiled cache.
fn assert_cache_agrees(cached: &Rootd, plain: &Rootd, wire: &[u8], ctx: &str) -> bool {
    let expected = plain.serve_udp(wire);
    let mut out = Vec::new();
    match cached.serve_udp_into(wire, &mut out) {
        ServeOutcome::Dropped => {
            assert!(expected.is_none(), "{ctx}: cached dropped, plain answered");
            false
        }
        outcome => {
            assert_eq!(Some(out), expected, "{ctx}: cached bytes differ");
            outcome == ServeOutcome::CacheHit
        }
    }
}

#[test]
fn cached_responses_match_the_fallback_path_across_the_matrix() {
    let zone = test_zone(2023112000);
    let plain = engine_for(Arc::clone(&zone));
    let cached = engine_for(zone).with_answer_cache();
    assert!(cached.has_answer_cache() && !plain.has_answer_cache());

    let stream = query_stream();
    let hits = stream
        .iter()
        .enumerate()
        .filter(|(i, wire)| assert_cache_agrees(&cached, &plain, wire, &format!("query {i}")))
        .count();
    // Most of the matrix is servable from the cache; only the shapes the
    // fast path cannot prove (odd payload budgets, NSID, sub-delegation
    // names, unknown CHAOS names) fall back.
    assert!(
        hits * 2 > stream.len(),
        "only {hits}/{} queries hit the cache",
        stream.len()
    );
}

#[test]
fn zone_resign_bumps_the_generation_and_the_served_bytes() {
    let cached = engine_for(test_zone(2023112000)).with_answer_cache();
    let plain = engine_for(test_zone(2023112000));
    assert_eq!(cached.generation(), 0);

    let mut q = Message::query(7, Question::new(Name::root(), RrType::Soa));
    set_edns(&mut q, &Edns::dnssec());
    let wire = q.to_wire();
    let before = cached.serve_udp(&wire).expect("answered");

    // Mid-session resign: a new serial re-signs the zone. Both engines
    // swap state; the cached one must also rebuild its precompiled
    // answers — a stale cache would keep serving the old serial.
    let resigned = test_zone(2023112100);
    cached.reload(Arc::clone(&resigned));
    plain.reload(resigned);
    assert_eq!(cached.generation(), 1);
    assert_eq!(cached.index().serial(), 2023112100);

    let mut out = Vec::new();
    assert_eq!(
        cached.serve_udp_into(&wire, &mut out),
        ServeOutcome::CacheHit
    );
    assert_ne!(out, before, "resigned SOA must serve new bytes");
    for (i, wire) in query_stream().iter().enumerate() {
        assert_cache_agrees(&cached, &plain, wire, &format!("post-resign query {i}"));
    }
}

#[test]
fn scenario_epochs_swap_the_cache_and_stay_byte_identical() {
    let mut world = vantage::World::build(&vantage::WorldBuildConfig::tiny());
    let scenario = scenario::catalog::broot_renumbering();
    let engine = scenario::ScenarioEngine::new(scenario::ScenarioConfig::default());
    let epochs = engine.epoch_zones(&mut world, &scenario);
    assert!(epochs.len() >= 2, "renumbering cuts the timeline");
    assert!(epochs[0].active.is_empty() && !epochs[1].active.is_empty());

    let cached = engine_for(Arc::clone(&epochs[0].zone)).with_answer_cache();
    let plain = engine_for(Arc::clone(&epochs[0].zone));
    let stream = query_stream();
    let mut serials = Vec::new();
    for (i, epoch) in epochs.iter().enumerate() {
        if i > 0 {
            cached.reload(Arc::clone(&epoch.zone));
            plain.reload(Arc::clone(&epoch.zone));
        }
        assert_eq!(cached.generation(), i as u64, "one swap per epoch");
        serials.push(cached.index().serial());
        for (j, wire) in stream.iter().enumerate() {
            assert_cache_agrees(&cached, &plain, wire, &format!("epoch {i} query {j}"));
        }
    }
    // The epochs publish different zone days, so the cache demonstrably
    // changed its answers mid-session rather than serving one build.
    serials.dedup();
    assert!(
        serials.len() >= 2,
        "epoch zones share a serial: {serials:?}"
    );
}

#[test]
fn no_edns_means_512_and_tc() {
    let engine = engine();
    let q = Message::query(5, Question::new(Name::root(), RrType::Ns)).to_wire();
    let udp = engine.serve_udp(&q).expect("answered");
    assert!(udp.len() <= 512);
    let parsed = Message::from_wire(&udp).unwrap();
    // The plain (unsigned) priming response with glue still overflows 512:
    // 13 NS + 13 A + 13 AAAA.
    assert!(parsed.header.flags.truncated);
    // And no OPT appears in the response when the query had none.
    assert!(edns_of(&parsed).is_none());
}
