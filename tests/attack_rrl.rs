//! Wire-level RRL behavior: a slipped TC=1 response must drive the
//! stub's TCP-fallback retry, and the TCP answer must be the full,
//! DNSSEC-validatable response — rate limiting degrades the *transport*,
//! never the *data* a validating client ends up with.

use dns_crypto::SimKeyPair;
use dns_wire::edns::{set_edns, Edns};
use dns_wire::rdata::Rdata;
use dns_wire::{Message, Name, Question, Record, RrType};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::{verify_signature, ZoneKeys};
use rootd::{Rootd, RrlConfig, ServeVerdict, SiteIdentity, ZoneIndex};
use std::sync::Arc;

fn engines() -> (Rootd, Rootd) {
    let zone = Arc::new(build_root_zone(
        &RootZoneConfig {
            tld_count: 10,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        },
        &ZoneKeys::from_seed(5),
    ));
    let index = Arc::new(ZoneIndex::build(zone));
    let limited =
        Rootd::new(Arc::clone(&index), SiteIdentity::named("lax1r")).with_rrl(RrlConfig {
            responses_limit: 2,
            slip: 2,
            ..Default::default()
        });
    let unlimited = Rootd::new(index, SiteIdentity::named("lax1r"));
    (limited, unlimited)
}

#[test]
fn slipped_tc_response_recovers_the_validated_answer_over_tcp() {
    let (limited, unlimited) = engines();
    let mut q = Message::query(4660, Question::new(Name::root(), RrType::Dnskey));
    set_edns(&mut q, &Edns::dnssec());
    let wire = q.to_wire();

    // Hammer one source inside one window until the limiter slips.
    let mut out = Vec::new();
    let mut slipped_at = None;
    for i in 0..10u64 {
        match limited.serve_udp_from(7, i, &wire, &mut out) {
            ServeVerdict::Slipped => {
                slipped_at = Some(i);
                break;
            }
            ServeVerdict::Answered(_) => {}
            v => panic!("unexpected verdict before the first slip: {v:?}"),
        }
    }
    assert_eq!(slipped_at, Some(2), "budget of 2, then the first slip");

    // The slip is the minimal TC=1 nudge: id echoed, question echoed,
    // no records at all — nothing a validator could mistake for data.
    let slip = Message::from_wire(&out).expect("slip parses");
    assert_eq!(slip.header.id, 4660);
    assert!(slip.header.flags.truncated);
    assert!(slip.header.flags.authoritative);
    assert_eq!(slip.questions, q.questions);
    assert!(slip.answers.is_empty());
    assert!(slip.authorities.is_empty());
    assert!(slip.additionals.is_empty());

    // The TC bit drives the stub to TCP, which RRL never limits — and
    // the limited engine's TCP bytes are the unlimited engine's bytes.
    let frames = limited.serve_tcp(&wire);
    assert_eq!(frames, unlimited.serve_tcp(&wire));
    let full = Message::from_wire(&frames[0]).expect("TCP answer parses");
    assert_eq!(full.header.id, 4660);
    assert!(!full.header.flags.truncated);
    assert!(full.header.flags.authoritative);

    // The recovered answer is complete and validates: the RRSIG over the
    // apex DNSKEY RRset verifies under the matching key in the answer.
    let dnskeys: Vec<Record> = full
        .answers
        .iter()
        .filter(|r| r.rr_type == RrType::Dnskey)
        .cloned()
        .collect();
    assert!(!dnskeys.is_empty(), "full answer carries the DNSKEY RRset");
    let sig = full
        .answers
        .iter()
        .find_map(|r| match &r.rdata {
            Rdata::Rrsig(s) if s.type_covered == RrType::Dnskey => Some(s.clone()),
            _ => None,
        })
        .expect("full answer carries the covering RRSIG");
    let key = dnskeys
        .iter()
        .find_map(|r| match &r.rdata {
            Rdata::Dnskey(k) if k.key_tag() == sig.key_tag => {
                Some(SimKeyPair::from_public(&k.public_key))
            }
            _ => None,
        })
        .expect("signing key is present in the answer");
    assert!(
        verify_signature(&sig, &dnskeys, &key),
        "the TCP-recovered DNSKEY RRset validates"
    );

    // The slip consumed no answer budget beyond its cadence: the same
    // source keeps alternating slip/drop inside the window, while a
    // fresh source still gets its full budget.
    assert_eq!(
        limited.serve_udp_from(7, 3, &wire, &mut out),
        ServeVerdict::Limited
    );
    assert!(matches!(
        limited.serve_udp_from(8, 3, &wire, &mut out),
        ServeVerdict::Answered(_)
    ));
}
