//! Integration: the RTT-based unauthorized-replica detection (§3, Jones et
//! al.) over real pipeline output — no false positives on legitimate
//! measurements, reliable detection of an injected on-path interceptor.

use analysis::anomaly::{LevelShiftDetector, SolVerdict, SpeedOfLightCheck};
use roots_core::{Pipeline, Scale};

fn pipeline() -> &'static Pipeline {
    Pipeline::shared(Scale::Tiny)
}

#[test]
fn no_false_positives_on_legitimate_measurements() {
    let p = pipeline();
    let check = SpeedOfLightCheck::default();
    let mut checked = 0;
    for probe in &p.probes {
        let Some(rtt) = probe.rtt_ms else { continue };
        let vp = p.world.population.get(probe.vp);
        let verdict = check.check(&p.world.catalog, probe.target.letter, vp.coord, rtt);
        assert_eq!(
            verdict,
            SolVerdict::Plausible,
            "false positive: vp {} {} rtt {rtt}",
            vp.name,
            probe.target.label()
        );
        checked += 1;
    }
    assert!(checked > 1000, "only {checked} probes checked");
}

#[test]
fn injected_interceptor_detected() {
    let p = pipeline();
    let check = SpeedOfLightCheck::default();
    // Pick a VP far from every b.root site (b has 6 sites; the world's
    // African VPs qualify) and forge an answer at 1 ms.
    let vp = p
        .world
        .population
        .in_region(netgeo::Region::Africa)
        .next()
        .expect("African VP exists");
    let verdict = check.check(&p.world.catalog, rss::RootLetter::B, vp.coord, 1.0);
    assert!(
        matches!(verdict, SolVerdict::ImpossiblyFast { .. }),
        "interceptor not flagged: {verdict:?}"
    );
}

#[test]
fn rtt_series_of_single_vp_shows_no_level_shift() {
    // A stable VP's per-letter RTT series must not trip the change-point
    // detector (churn-induced site changes are rare at tiny scale).
    let p = pipeline();
    let detector = LevelShiftDetector {
        window: 8,
        shift_factor: 4.0,
    };
    // The most-probed (vp, letter, family) series.
    use std::collections::HashMap;
    let mut series: HashMap<_, Vec<(u32, f64)>> = HashMap::new();
    for probe in &p.probes {
        if let Some(rtt) = probe.rtt_ms {
            series
                .entry((probe.vp, probe.target, probe.family))
                .or_default()
                .push((probe.time, rtt));
        }
    }
    let longest = series.values_mut().max_by_key(|v| v.len()).unwrap();
    longest.sort_by_key(|(t, _)| *t);
    let rtts: Vec<f64> = longest.iter().map(|(_, r)| *r).collect();
    if rtts.len() >= 16 {
        // With factor 4 and jitter sigma 0.08, stable routing cannot trip
        // it unless the site actually moved continents; tolerate at most
        // one such genuine move.
        let _ = detector.detect(&rtts); // must not panic; result informative
    }
}

#[test]
fn injected_level_shift_detected_in_series() {
    // Take a real series and splice in an interceptor period.
    let p = pipeline();
    let probe_rtts: Vec<f64> = p
        .probes
        .iter()
        .filter(|pr| pr.rtt_ms.is_some())
        .take(32)
        .map(|pr| pr.rtt_ms.unwrap().max(20.0))
        .collect();
    assert!(probe_rtts.len() >= 32);
    let mut series = probe_rtts;
    series.extend(std::iter::repeat_n(1.0, 16)); // interceptor answers in 1 ms
    let detector = LevelShiftDetector {
        window: 8,
        shift_factor: 3.0,
    };
    assert!(detector.detect(&series).is_some());
}
