//! Routing invariants over the *full* built world: every deployment, both
//! families, all VPs.

use netsim::types::LearnedFrom;
use netsim::Family;
use rss::RootLetter;
use std::sync::OnceLock;
use vantage::{World, WorldBuildConfig};

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| World::build(&WorldBuildConfig::default()))
}

#[test]
fn every_vp_reaches_every_letter_v4() {
    let w = world();
    for letter in RootLetter::ALL {
        let table = w.routes(letter, Family::V4);
        for vp in w.population.vps() {
            assert!(
                table.reachable(vp.asn),
                "{} cannot reach {letter} over IPv4",
                vp.name
            );
        }
    }
}

#[test]
fn v6_vps_reach_every_letter_v6() {
    let w = world();
    for letter in RootLetter::ALL {
        let table = w.routes(letter, Family::V6);
        for vp in w.population.vps() {
            if vp.has_v6 {
                assert!(
                    table.reachable(vp.asn),
                    "{} cannot reach {letter} over IPv6",
                    vp.name
                );
            }
        }
    }
}

#[test]
fn selected_paths_are_loop_free() {
    let w = world();
    for letter in RootLetter::ALL {
        for family in Family::BOTH {
            let table = w.routes(letter, family);
            for vp in w.population.vps() {
                if let Some(best) = table.best(vp.asn) {
                    let mut seen = std::collections::HashSet::new();
                    for hop in &best.path {
                        assert!(seen.insert(*hop), "loop in {letter} path for {}", vp.name);
                    }
                }
            }
        }
    }
}

#[test]
fn candidate_lists_sorted_best_first() {
    let w = world();
    let table = w.routes(RootLetter::K, Family::V4);
    for vp in w.population.vps() {
        let cands = table.candidates(vp.asn);
        for pair in cands.windows(2) {
            assert!(
                pair[0].learned_from <= pair[1].learned_from
                    || pair[0].path_len() <= pair[1].path_len()
            );
        }
    }
}

#[test]
fn local_sites_have_limited_catchment() {
    // Over the whole world: the fraction of (vp, letter) selections landing
    // on local sites must be well below the local share of sites — local
    // scope limits the audience.
    let w = world();
    let mut local_selected = 0usize;
    let mut total = 0usize;
    for letter in RootLetter::ALL {
        let table = w.routes(letter, Family::V4);
        let d = w.catalog.deployment(letter);
        for vp in w.population.vps() {
            if let Some(best) = table.best(vp.asn) {
                total += 1;
                if d.site(best.site).scope == netsim::anycast::SiteScope::Local {
                    local_selected += 1;
                }
            }
        }
    }
    let local_sites: usize = RootLetter::ALL
        .iter()
        .map(|l| w.catalog.deployment(*l).local_count())
        .sum();
    let all_sites: usize = RootLetter::ALL
        .iter()
        .map(|l| w.catalog.deployment(*l).sites.len())
        .sum();
    let selection_share = local_selected as f64 / total as f64;
    let site_share = local_sites as f64 / all_sites as f64;
    assert!(
        selection_share < site_share,
        "local selections {selection_share:.2} vs site share {site_share:.2}"
    );
}

#[test]
fn origin_routes_rank_first_at_origins() {
    let w = world();
    let table = w.routes(RootLetter::B, Family::V4);
    for site in &w.catalog.deployment(RootLetter::B).sites {
        if let Some(best) = table.best(site.origin_as) {
            assert_eq!(best.learned_from, LearnedFrom::Origin);
        }
    }
}

#[test]
fn world_build_is_deterministic() {
    let a = World::build(&WorldBuildConfig::default());
    let b = World::build(&WorldBuildConfig::default());
    assert_eq!(a.topology.len(), b.topology.len());
    assert_eq!(a.catalog.sites.len(), b.catalog.sites.len());
    for letter in RootLetter::ALL {
        let ta = a.routes(letter, Family::V6);
        let tb = b.routes(letter, Family::V6);
        for vp in a.population.vps() {
            assert_eq!(ta.best(vp.asn), tb.best(vp.asn));
        }
    }
}
