//! Chaos harness: fault matrices swept against the resilient refresh
//! loop, asserting the invariants the paper's RQ3 fallback argument
//! rests on:
//!
//! 1. an invalid (bitflipped / truncated) zone copy is **never**
//!    activated — every accepted copy is bit-correct;
//! 2. refresh converges to the correct serial whenever at least one
//!    upstream is reachable;
//! 3. staleness never exceeds the zone's SOA expire bound;
//! 4. a zero-fault `FaultyTransport` is byte-identical to the bare
//!    transport;
//! 5. the whole chaos run is deterministic: same plan seed ⇒ same fault
//!    counters, same metrics, same outcome.

use dns_wire::{Message, Name, Question, Rcode, RrType};
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use dns_zone::Zone;
use localroot::{upstream_transport, LocalRoot, RefreshOutcome, ServingState, ValidationPolicy};
use rootd::{
    FaultCounters, FaultPlan, FaultSpec, FaultyTransport, InprocTransport, Protocol, Transport,
};
use rss::{RootLetter, RootServer};
use std::sync::Arc;

const T0: u32 = 1_701_820_800; // 2023-12-06: ZONEMD validates
const SERIAL: u32 = 2023120600;
const SOA_EXPIRE: u32 = 604_800; // the built zone's SOA expire field

fn fresh_zone(serial: u32) -> Zone {
    build_root_zone(
        &RootZoneConfig {
            serial,
            tld_count: 10,
            inception: T0,
            expiration: T0 + 14 * 86_400,
            rollout: RolloutPhase::Validating,
        },
        &ZoneKeys::from_seed(1),
    )
}

fn upstream_servers() -> Vec<(RootLetter, RootServer)> {
    [RootLetter::A, RootLetter::B, RootLetter::C]
        .into_iter()
        .map(|letter| {
            (
                letter,
                RootServer {
                    letter,
                    identity: Some(format!("{}1.chaos", letter.ch())),
                    zone: Arc::new(fresh_zone(SERIAL)),
                    behavior: Default::default(),
                },
            )
        })
        .collect()
}

/// Wrap every upstream in a FaultyTransport driven by `plan`.
fn wired(
    servers: &[(RootLetter, RootServer)],
    plan: &Arc<FaultPlan>,
) -> Vec<(RootLetter, FaultyTransport<InprocTransport>)> {
    servers
        .iter()
        .enumerate()
        .map(|(i, (letter, server))| {
            (
                *letter,
                FaultyTransport::new(upstream_transport(server), Arc::clone(plan), i as u64),
            )
        })
        .collect()
}

/// The probe queries used to compare an activated copy against the
/// fault-free baseline.
fn probes() -> Vec<Message> {
    vec![
        Message::query(1, Question::new(Name::root(), RrType::Soa)),
        Message::query(2, Question::new(Name::root(), RrType::Ns)),
        Message::query(3, Question::new(Name::parse("com.").unwrap(), RrType::Ns)),
        Message::query(
            4,
            Question::new(Name::parse("nxd-tld.").unwrap(), RrType::A),
        ),
    ]
}

/// Invariants 1 + 2 + 5 over a loss × bitflip × truncation matrix.
#[test]
fn fault_matrix_never_activates_a_corrupt_copy() {
    let servers = upstream_servers();

    // Fault-free baseline answers to compare activated copies against.
    let mut baseline = LocalRoot::new(ValidationPolicy::default());
    let clean = Arc::new(FaultPlan::clean(0));
    baseline
        .refresh_wire(&mut wired(&servers, &clean), T0 + 60)
        .unwrap();
    let baseline_answers: Vec<Vec<u8>> = probes()
        .iter()
        .map(|q| baseline.answer(q, T0 + 120).to_wire())
        .collect();

    let mut cells = 0u32;
    let mut activated = 0u32;
    for (ci, &loss) in [0.0, 0.1, 0.25, 0.5].iter().enumerate() {
        for (cj, &flip) in [0.0, 0.05, 0.25].iter().enumerate() {
            for (ck, &trunc) in [0.0, 0.3].iter().enumerate() {
                cells += 1;
                let seed = 0xc0de + (ci as u64) * 100 + (cj as u64) * 10 + ck as u64;
                let spec = FaultSpec {
                    drop_prob: loss,
                    bitflip_prob: flip,
                    truncate_stream_prob: trunc,
                    ..FaultSpec::clean()
                };
                let run = || {
                    let plan = Arc::new(FaultPlan::clean(seed).with_default(spec.clone()));
                    let mut up = wired(&servers, &plan);
                    let mut lr = LocalRoot::new(ValidationPolicy::default());
                    let out = lr.refresh_wire(&mut up, T0 + 60);
                    let counters: Vec<FaultCounters> =
                        up.iter().map(|(_, t)| t.counters()).collect();
                    // Snapshot refresh metrics before any probe queries
                    // perturb the serving counters.
                    let metrics = lr.metrics;
                    (out, metrics, lr, counters)
                };
                let (out, metrics, mut lr, counters) = run();
                match out {
                    Ok(RefreshOutcome::Updated { serial, .. }) => {
                        activated += 1;
                        // Invariant 2: bit-correct serial...
                        assert_eq!(serial, SERIAL, "cell loss={loss} flip={flip}");
                        // ...and invariant 1: the activated copy answers
                        // byte-identically to the fault-free baseline —
                        // no corrupt copy survives validation.
                        for (q, want) in probes().iter().zip(&baseline_answers) {
                            assert_eq!(&lr.answer(q, T0 + 120).to_wire(), want);
                        }
                    }
                    Ok(RefreshOutcome::AlreadyCurrent { .. }) => {
                        unreachable!("first refresh cannot be current")
                    }
                    Err(_) => {
                        // Heavy fault mixes may defeat the retry budget —
                        // but then nothing may have been activated.
                        assert_eq!(lr.current_serial(), None);
                        assert_eq!(lr.metrics.transfers_accepted, 0);
                        assert_eq!(lr.serving_state(T0 + 60), ServingState::Empty);
                    }
                }
                // Invariant 5: the cell replays bit-identically.
                let (out2, metrics2, _, counters2) = run();
                assert_eq!(out, out2, "outcome not deterministic");
                assert_eq!(metrics, metrics2, "metrics not deterministic");
                assert_eq!(counters, counters2, "fault counters not deterministic");
            }
        }
    }
    // The clean cells (and most light-fault cells) must converge.
    assert!(activated >= cells / 2, "{activated}/{cells} converged");
}

/// Invariant 2: one reachable upstream (behind heavy loss) is enough,
/// even with every other letter blackholed.
#[test]
fn converges_when_a_single_lossy_upstream_survives() {
    let servers = upstream_servers();
    let mut plan = FaultPlan::clean(99);
    plan.set_both(0, FaultSpec::blackhole());
    plan.set_both(1, FaultSpec::blackhole());
    plan.set_both(2, FaultSpec::loss(0.3));
    let plan = Arc::new(plan);
    let mut lr = LocalRoot::new(ValidationPolicy::default());
    let mut up = wired(&servers, &plan);
    let out = lr.refresh_wire(&mut up, T0 + 60).unwrap();
    assert!(matches!(
        out,
        RefreshOutcome::Updated {
            serial: SERIAL,
            from_upstream: 2,
            ..
        }
    ));
    assert!(lr.metrics.timeouts > 0, "blackholes cost timeouts first");
}

/// A letter whose UDP path is dead but whose TCP path works is still
/// usable: the SOA poll times out, the AXFR (TCP) lands the copy.
#[test]
fn udp_dead_tcp_alive_still_converges() {
    let servers = upstream_servers();
    let mut plan = FaultPlan::clean(3);
    for u in 0..3 {
        plan.set(u, Protocol::Udp, FaultSpec::loss(1.0));
    }
    let plan = Arc::new(plan);
    let mut lr = LocalRoot::new(ValidationPolicy::default());
    let out = lr
        .refresh_wire(&mut wired(&servers, &plan), T0 + 60)
        .unwrap();
    assert!(matches!(
        out,
        RefreshOutcome::Updated { serial: SERIAL, .. }
    ));
    assert_eq!(lr.metrics.timeouts as u32, lr.retry.attempts * 3);
}

/// Invariant 3: with every upstream dark after the first sync, stale
/// serving is bounded by the zone's own SOA expire field — never beyond.
#[test]
fn staleness_never_exceeds_the_soa_expire_bound() {
    let servers = upstream_servers();
    let clean = Arc::new(FaultPlan::clean(0));
    let dark = Arc::new(FaultPlan::clean(1).with_default(FaultSpec::blackhole()));
    let mut lr = LocalRoot::new(ValidationPolicy {
        max_age: 3_600,
        ..Default::default()
    });
    lr.refresh_wire(&mut wired(&servers, &clean), T0).unwrap();

    let q = Message::query(9, Question::new(Name::root(), RrType::Soa));
    // Sample the whole degradation window, refreshing (and failing)
    // along the way.
    for age in [1_800u32, 3_600, 3_601, 86_400, SOA_EXPIRE, SOA_EXPIRE + 1] {
        let now = T0 + age;
        if age > 3_600 {
            assert!(
                lr.refresh_wire(&mut wired(&servers, &dark), now).is_err(),
                "dark upstreams cannot refresh"
            );
        }
        let rcode = lr.answer(&q, now).header.rcode;
        if age <= SOA_EXPIRE {
            assert_eq!(rcode, Rcode::NoError, "age={age} must still answer");
        } else {
            assert_eq!(rcode, Rcode::ServFail, "age={age} exceeds SOA expire");
        }
    }
    assert!(lr.metrics.served_stale > 0);
    assert!(lr.metrics.refused_expired > 0);
    // The breaker opened while we hammered dark upstreams.
    assert!(lr.metrics.breaker_opened > 0);
}

/// Invariant 4: a clean-plan FaultyTransport is byte-identical to the
/// bare transport, on both protocols.
#[test]
fn zero_fault_wrapper_is_byte_identical_to_bare() {
    let servers = upstream_servers();
    let plan = Arc::new(FaultPlan::clean(7));
    let (_, server) = &servers[0];
    let mut bare = upstream_transport(server);
    let mut wrapped = FaultyTransport::new(upstream_transport(server), Arc::clone(&plan), 0);
    for q in probes() {
        let wire = q.to_wire();
        assert_eq!(
            bare.exchange_udp(&wire).unwrap(),
            wrapped.exchange_udp(&wire).unwrap()
        );
    }
    let axfr = Message::query(5, Question::new(Name::root(), RrType::Axfr)).to_wire();
    assert_eq!(
        bare.exchange_tcp(&axfr).unwrap(),
        wrapped.exchange_tcp(&axfr).unwrap()
    );
    let c = wrapped.counters();
    assert_eq!(c.clean, c.exchanges, "every exchange took the fast path");
    assert_eq!(c.total_faults(), 0);
}

/// Mid-AXFR truncation alone (the RQ3 scenario): the client retries the
/// stream, and a truncated transfer never yields an activated zone
/// unless a later attempt completes.
#[test]
fn mid_axfr_truncation_is_survived_or_refused() {
    let servers = upstream_servers();
    for seed in 0..8u64 {
        let plan = Arc::new(FaultPlan::clean(seed).with_default(FaultSpec {
            truncate_stream_prob: 0.6,
            ..FaultSpec::clean()
        }));
        let mut lr = LocalRoot::new(ValidationPolicy::default());
        match lr.refresh_wire(&mut wired(&servers, &plan), T0 + 60) {
            Ok(RefreshOutcome::Updated { serial, .. }) => assert_eq!(serial, SERIAL),
            Ok(RefreshOutcome::AlreadyCurrent { .. }) => unreachable!(),
            Err(_) => assert_eq!(lr.current_serial(), None),
        }
    }
}
