//! Constellation dispatch, end to end: the serving farm's per-family
//! steering tables must agree with a fresh Gao-Rexford catchment
//! computation over the same deployments, and must survive a
//! `broot_renumbering` zone-epoch swap — the paper's renumbering is an
//! *identity* change (new service addresses, same sites, same routing),
//! so every site engine of the letter flips to the new zone atomically
//! while dispatch stays put.

use netsim::routing::propagate;
use netsim::types::Family;
use rootd::{Farm, FarmConfig};
use rss::RootLetter;
use scenario::{catalog, ScenarioEngine};
use std::sync::Arc;
use vantage::{World, WorldBuildConfig};

/// Assert the farm's steering equals `propagate()` on its own deployment,
/// for every client and both address families.
fn assert_steering_matches(world: &World, farm: &Farm, letters: &[RootLetter]) {
    for &letter in letters {
        let deployment = farm.deployment(letter).expect("farm serves letter");
        let default_site = world
            .catalog
            .sites_of(letter)
            .next()
            .expect("letter has sites")
            .site_id
            .0;
        for family in [Family::V4, Family::V6] {
            let routes = propagate(&world.topology, deployment, family);
            for (pos, &asn) in farm.clients().iter().enumerate() {
                let got = farm.site_for(letter, family, pos).unwrap();
                let want = routes.best(asn).map(|c| c.site.0).unwrap_or(default_site);
                assert_eq!(got, want, "{letter:?} {family:?} client {pos}");
            }
        }
    }
}

#[test]
fn dispatch_follows_catchments_across_a_renumbering_epoch_swap() {
    let mut world = World::build(&WorldBuildConfig::tiny());
    let scenario = catalog::broot_renumbering();
    let zones = ScenarioEngine::default().epoch_zones(&mut world, &scenario);
    assert!(zones.len() >= 2, "renumbering cuts at least one epoch");
    assert!(zones[1].active.contains(&"renumber(b)".to_string()));

    let letters = [RootLetter::A, RootLetter::B];
    let farm = Farm::build(
        &world.topology,
        &world.catalog,
        Arc::clone(&zones[0].zone),
        &letters,
        usize::MAX,
    );

    // Pre-swap: steering is the catchment computation, both families.
    assert_steering_matches(&world, &farm, &letters);
    let mut cfg = FarmConfig::tiny(17);
    cfg.queries = 4_000;
    let before = farm.run(&cfg);
    assert_eq!(before.violations(), Vec::<String>::new());
    assert!(before.responses > 0);

    // The swap: letter B flips to the post-renumbering epoch zone; every
    // one of its site engines sees the new generation, letter A none.
    // The validated reload path accepts it — the epoch zone's RRSIGs are
    // in force at the epoch's own start instant.
    assert_eq!(
        farm.reload_letter(RootLetter::B, Arc::clone(&zones[1].zone), zones[1].start),
        Ok(1)
    );
    assert_eq!(farm.generation(RootLetter::B), Some(1));
    assert_eq!(farm.generation(RootLetter::A), Some(0));
    for site in &farm.deployment(RootLetter::B).unwrap().sites {
        let engine = farm.engine_at(RootLetter::B, site.id.0).unwrap();
        assert_eq!(engine.generation(), 1, "site {} stale", site.id.0);
    }

    // Post-swap: dispatch unchanged (renumbering does not move routes),
    // and the farm serves the new epoch with the same invariants.
    assert_steering_matches(&world, &farm, &letters);
    let after = farm.run(&cfg);
    assert_eq!(after.violations(), Vec::<String>::new());
    assert_eq!(
        after.fingerprint(),
        before.fingerprint(),
        "same seed, same steering, same zone bytes served either side of \
         an identity-only renumbering"
    );
}
