//! Wire-format interop: the measurement script's full query set, rendered
//! as real DNS messages, answered by the simulated servers, decoded back —
//! the Appendix F loop at the protocol level.

use dns_wire::{Class, Message, Name, Question, Rcode, RrType};
use dns_zone::axfr::assemble_axfr;
use dns_zone::corrupt::flip_rrsig_bit;
use dns_zone::rollout::RolloutPhase;
use dns_zone::rootzone::{build_root_zone, RootZoneConfig};
use dns_zone::signer::ZoneKeys;
use dns_zone::validate::validate_zone;
use dns_zone::zonemd::verify_zonemd;
use dns_zone::Zone;
use rootd::{Rootd, SiteIdentity, ZoneIndex};
use rss::{BRootPhase, RootLetter, RootServer, ServerBehavior};
use std::sync::Arc;

fn server() -> RootServer {
    let zone = build_root_zone(
        &RootZoneConfig {
            tld_count: 12,
            rollout: RolloutPhase::Validating,
            ..Default::default()
        },
        &ZoneKeys::from_seed(77),
    );
    RootServer {
        letter: RootLetter::K,
        identity: Some("ns1.fra.k.ripe.net".into()),
        zone: Arc::new(zone),
        behavior: ServerBehavior::default(),
    }
}

/// The per-IP query set from the measurement script (Appendix F).
fn script_queries() -> Vec<Question> {
    // ZONEMD, NS ., NS root-servers.net, SOA.
    let mut qs = vec![
        Question::new(Name::root(), RrType::Zonemd),
        Question::new(Name::root(), RrType::Ns),
        Question::new(Name::parse("root-servers.net.").unwrap(), RrType::Ns),
        Question::new(Name::root(), RrType::Soa),
    ];
    // CHAOS identity.
    for name in [
        "hostname.bind.",
        "id.server.",
        "version.bind.",
        "version.server.",
    ] {
        qs.push(Question::chaos_txt(Name::parse(name).unwrap()));
    }
    // A/AAAA/TXT for all 13 letters.
    for letter in RootLetter::ALL {
        let host = Name::parse(&letter.host_name()).unwrap();
        qs.push(Question::new(host.clone(), RrType::A));
        qs.push(Question::new(host.clone(), RrType::Aaaa));
        qs.push(Question::new(host, RrType::Txt));
    }
    qs
}

#[test]
fn script_query_set_has_47_queries() {
    // 4 zone queries + 4 CHAOS + 13×3 address/TXT = 47, matching the
    // paper's "47 queries to each root-server IP" (Appendix B).
    assert_eq!(script_queries().len(), 47);
}

#[test]
fn all_script_queries_answered_over_wire() {
    let s = server();
    for (i, q) in script_queries().into_iter().enumerate() {
        let query = Message::query(i as u16, q.clone());
        // Encode the query, decode it (what the server's socket sees).
        let decoded_query = Message::from_wire(&query.to_wire()).unwrap();
        let response = s.answer(&decoded_query, BRootPhase::Old);
        // Encode the response, decode it (what the VP sees).
        let wire = response.to_wire();
        let decoded = Message::from_wire(&wire).unwrap();
        assert_eq!(decoded.header.id, i as u16);
        assert!(decoded.header.flags.response);
        assert_ne!(
            decoded.header.rcode,
            Rcode::ServFail,
            "query {i} ({:?}) failed",
            q
        );
    }
}

#[test]
fn identity_answers_are_chaos_class() {
    let s = server();
    let q = Message::query(1, Question::chaos_txt(Name::parse("id.server.").unwrap()));
    let resp = Message::from_wire(&s.answer(&q, BRootPhase::Old).to_wire()).unwrap();
    assert_eq!(resp.answers[0].class, Class::Ch);
}

#[test]
fn response_sizes_fit_udp_with_compression() {
    // Responses to the script's non-AXFR queries fit in 4096-byte EDNS0
    // budgets thanks to name compression.
    let s = server();
    for q in script_queries() {
        let query = Message::query(0, q);
        let wire = s.answer(&query, BRootPhase::Old).to_wire();
        assert!(wire.len() < 4096, "{} bytes", wire.len());
    }
}

#[test]
fn compression_saves_space_on_ns_answers() {
    let s = server();
    let q = Message::query(
        0,
        Question::new(Name::parse("root-servers.net.").unwrap(), RrType::Ns),
    );
    let resp = s.answer(&q, BRootPhase::Old);
    assert!(resp.to_wire().len() < resp.to_wire_uncompressed().len());
}

/// Serve `zone` as a wire-level AXFR stream through a `rootd` engine and
/// reassemble it from the re-parsed frames — the full transfer loop a
/// local-root instance performs, at the byte level.
fn axfr_round_trip(zone: Zone) -> Zone {
    let engine = Rootd::new(
        Arc::new(ZoneIndex::build(Arc::new(zone))),
        SiteIdentity::named("fra1k"),
    )
    // A small batch forces a genuinely multi-message stream.
    .with_axfr_batch(25);
    let q = Message::query(0x5454, Question::new(Name::root(), RrType::Axfr));
    let frames = engine.serve_tcp(&q.to_wire());
    assert!(frames.len() > 1, "AXFR must span multiple messages");
    let messages: Vec<Message> = frames
        .iter()
        .map(|f| Message::from_wire(f).expect("AXFR frame reparses"))
        .collect();
    assemble_axfr(&messages, &Name::root()).expect("stream assembles")
}

#[test]
fn axfr_over_wire_round_trips_and_validates() {
    let cfg = RootZoneConfig {
        tld_count: 12,
        rollout: RolloutPhase::Validating,
        ..Default::default()
    };
    let zone = build_root_zone(&cfg, &ZoneKeys::from_seed(77));
    let expected_len = zone.len();
    let expected_serial = zone.serial().unwrap();

    let transferred = axfr_round_trip(zone);
    assert_eq!(transferred.len(), expected_len);
    assert_eq!(transferred.serial().unwrap(), expected_serial);
    verify_zonemd(&transferred).expect("ZONEMD survives the wire");
    let report = validate_zone(&transferred, cfg.inception + 86400);
    assert!(report.is_valid(), "issues: {:?}", report.issues);
}

#[test]
fn axfr_over_wire_rejects_bitflipped_zone() {
    let cfg = RootZoneConfig {
        tld_count: 12,
        rollout: RolloutPhase::Validating,
        ..Default::default()
    };
    let mut zone = build_root_zone(&cfg, &ZoneKeys::from_seed(77));
    flip_rrsig_bit(&mut zone, 9).expect("zone has an RRSIG to corrupt");

    // The wire layer moves the corrupted bytes faithfully; only validation
    // catches the damage (§7's bitflip case, now over a real transfer).
    let transferred = axfr_round_trip(zone);
    let report = validate_zone(&transferred, cfg.inception + 86400);
    assert!(!report.is_valid(), "bitflip must not validate");
}

#[test]
fn b_root_phase_affects_only_b() {
    let s = server();
    for letter in RootLetter::ALL {
        let q = Message::query(
            0,
            Question::new(Name::parse(&letter.host_name()).unwrap(), RrType::A),
        );
        let old = s.answer(&q, BRootPhase::Old);
        let new = s.answer(&q, BRootPhase::New);
        if letter == RootLetter::B {
            assert_ne!(old.answers, new.answers);
        } else {
            assert_eq!(old.answers, new.answers);
        }
    }
}
