//! End-to-end integration: the full pipeline at tiny scale, with
//! cross-crate consistency checks between the world, the record streams
//! and every analysis.

use analysis::colocation::ColocationResult;
use analysis::coverage::CoverageReport;
use analysis::rtt::RttByRegion;
use analysis::stability::StabilityResult;
use analysis::zonemd_pipeline::validate_transfers;
use netsim::Family;
use roots_core::{experiments, Pipeline, Scale};

fn pipeline() -> &'static Pipeline {
    Pipeline::shared(Scale::Tiny)
}

#[test]
fn probes_reference_valid_catalog_sites() {
    let p = pipeline();
    for probe in &p.probes {
        if let Some(site) = probe.site {
            // site() panics if unknown — this is the consistency check.
            let row = p.world.catalog.site(probe.target.letter, site);
            assert_eq!(row.letter, probe.target.letter);
        }
    }
}

#[test]
fn probe_times_respect_schedule_window() {
    let p = pipeline();
    let schedule = p.scale.schedule();
    for probe in &p.probes {
        assert!(probe.time >= schedule.start && probe.time < schedule.end);
    }
}

#[test]
fn transfers_only_from_reachable_probes() {
    let p = pipeline();
    // Every transfer must have a serial (site answered).
    for t in &p.transfers {
        assert!(t.serial.is_some());
    }
}

#[test]
fn v6_probes_only_from_v6_vps() {
    let p = pipeline();
    for probe in &p.probes {
        if probe.family == Family::V6 {
            assert!(p.world.population.get(probe.vp).has_v6);
        }
    }
}

#[test]
fn all_experiments_nonempty() {
    let p = pipeline();
    let all = experiments::run_all(p);
    for id in [
        "table1", "table2", "table3", "table4", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11", "fig12", "fig13",
    ] {
        assert!(all.contains(&format!("==== {id} ")), "missing {id}");
    }
}

#[test]
fn coverage_never_exceeds_catalog() {
    let p = pipeline();
    let report = CoverageReport::compute(&p.world.catalog, &p.probes);
    let covered: u32 = report.worldwide.iter().map(|r| r.total_covered()).sum();
    let total: u32 = report.worldwide.iter().map(|r| r.total_sites()).sum();
    assert!(covered <= total);
    assert_eq!(total as usize, p.world.catalog.sites.len());
}

#[test]
fn stability_counts_bounded_by_rounds() {
    let p = pipeline();
    let rounds = p.scale.schedule().round_count() as u64;
    let result = StabilityResult::compute(&p.probes);
    for series in &result.series {
        for &changes in series.changes_per_vp.values() {
            assert!(changes < rounds, "{changes} changes in {rounds} rounds");
        }
    }
}

#[test]
fn colocation_bounded_by_letter_count() {
    let p = pipeline();
    let result = ColocationResult::compute(&p.probes);
    for r in &result.per_vp {
        assert!(r.letters_observed <= 13);
        assert!(r.reduced <= 12);
    }
}

#[test]
fn rtt_regions_only_have_their_own_vps() {
    let p = pipeline();
    let rtt = RttByRegion::compute(&p.world.population, &p.probes);
    // Total samples across regions equals reachable probes.
    let mut total = 0usize;
    for r in netgeo::Region::ALL {
        for t in &rtt.targets {
            for f in Family::BOTH {
                if let Some(s) = rtt.get(r, *t, f) {
                    total += s.n;
                }
            }
        }
    }
    let reachable = p.probes.iter().filter(|p| p.rtt_ms.is_some()).count();
    assert_eq!(total, reachable);
}

#[test]
fn table2_transfers_match_stream() {
    let p = pipeline();
    let table = validate_transfers(&p.world, &p.transfers);
    assert_eq!(table.total_transfers as usize, p.transfers.len());
    // Every failing class the engine injected appears.
    let has_bitflip = p.transfers.iter().any(|t| {
        matches!(
            t.fault,
            Some(vantage::records::TransferFault::Bitflip { .. })
        )
    });
    if has_bitflip {
        assert!(table
            .rows
            .iter()
            .any(|r| r.reason == analysis::zonemd_pipeline::FailureReason::BogusSignature));
    }
}

#[test]
fn deterministic_pipeline() {
    // Two tiny pipelines agree on the record counts and the first records.
    let a = Pipeline::run(Scale::Tiny);
    let b = Pipeline::run(Scale::Tiny);
    assert_eq!(a.probes.len(), b.probes.len());
    assert_eq!(a.transfers.len(), b.transfers.len());
    assert_eq!(a.probes.first(), b.probes.first());
    assert_eq!(a.isp_flows.len(), b.isp_flows.len());
}
